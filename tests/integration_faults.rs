//! Integration tests: deterministic fault injection end to end.
//!
//! The contract under test, from the top of the stack: (1) with faults off
//! (or never configured) results are bit-identical to a build that has no
//! fault layer at all; (2) a fixed fault seed replays byte-identically;
//! (3) injected rendezvous timeouts never hang the tuner — they surface as
//! candidate demotions in the outcome, the audit log and the metrics
//! registry.
//!
//! The fault override is process-global (like the trace switch), so every
//! test here takes one lock; the suite still runs in parallel with the
//! other integration binaries (separate processes).

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use mpisim::fault::{self, FaultConfig};
use simcore::trace;
use std::sync::Mutex;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn spec(iters: usize) -> MicrobenchSpec {
    MicrobenchSpec {
        platform: Platform::whale(),
        nprocs: 8,
        op: CollectiveOp::Ialltoall,
        msg_bytes: 64 * 1024, // rendezvous on whale
        iters,
        compute_total: SimTime::from_millis(iters as u64),
        num_progress: 3,
        noise: NoiseConfig::none(),
        reps: 2,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    }
}

/// Fingerprint of everything a figure binary would print about a run.
fn fingerprint(out: &autonbc::driver::MicrobenchOutcome) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{}|{:?}",
        out.total, out.history, out.winner, out.converged_at, out.sim_events, out.demoted
    )
}

#[test]
fn faults_off_is_identical_to_never_configured() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear_override();
    let unset = spec(12).run(SelectionLogic::BruteForce);
    fault::set_override(Some(FaultConfig::off()));
    let off = spec(12).run(SelectionLogic::BruteForce);
    fault::clear_override();
    assert_eq!(
        fingerprint(&unset),
        fingerprint(&off),
        "NBC_FAULTS=off must be bit-identical to no fault layer"
    );
    assert!(unset.demoted.is_empty());
}

#[test]
fn fault_seed_replays_byte_identically() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run = |cfg: FaultConfig| {
        fault::set_override(Some(cfg));
        let out = spec(12).run(SelectionLogic::BruteForce);
        fault::clear_override();
        fingerprint(&out)
    };
    let a = run(FaultConfig::light(42));
    let b = run(FaultConfig::light(42));
    assert_eq!(a, b, "same fault seed must replay byte-identically");
    let c = run(FaultConfig::light(43));
    assert_ne!(a, c, "a different fault seed should perturb the run");
    let off = run(FaultConfig::off());
    assert_ne!(a, off, "light faults must actually perturb timing");
}

#[test]
fn total_loss_demotes_instead_of_hanging() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(true); // demotions are audited under the trace gate
    adcl::audit::clear();
    let timeouts_before = simcore::metrics::counter("mpisim.fault.timeouts").get();
    fault::set_override(Some(FaultConfig {
        drop_prob: 1.0,
        retry_timeout: SimTime::from_micros(200),
        max_retries: 2,
        arm_timeouts: true,
        ..FaultConfig::off()
    }));
    let out = spec(6).run(SelectionLogic::BruteForce);
    fault::clear_override();
    let demotions = adcl::audit::demotions();
    let timeouts_after = simcore::metrics::counter("mpisim.fault.timeouts").get();
    trace::clear_enabled_override();
    adcl::audit::clear();
    let _ = trace::take_all();

    // Every candidate timed out; the driver must have walked the whole set.
    assert_eq!(out.winner, None);
    assert_eq!(out.converged_at, None);
    assert_eq!(out.demoted.len(), 3, "all ialltoall candidates demoted");
    assert!(
        out.total.is_infinite(),
        "degraded outcome has no finite time"
    );
    // The audit log saw the same demotions, with the timeout as reason.
    assert_eq!(demotions.len(), 3);
    assert!(demotions.iter().all(|d| d.op == "ialltoall"));
    assert!(demotions.iter().all(|d| d.reason.contains("timeout")));
    assert_eq!(demotions[0].name, out.demoted[0]);
    // And the metrics registry counted the surfaced timeouts.
    assert!(
        timeouts_after >= timeouts_before + 3,
        "each demotion implies at least one counted timeout"
    );
}

#[test]
fn fixed_logic_degrades_without_retry_loop() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::set_override(Some(FaultConfig {
        drop_prob: 1.0,
        retry_timeout: SimTime::from_micros(200),
        max_retries: 1,
        arm_timeouts: true,
        ..FaultConfig::off()
    }));
    let out = spec(4).run(SelectionLogic::Fixed(0));
    fault::clear_override();
    // A pinned run has nothing to fall back to: one demotion, then report.
    assert_eq!(out.winner, None);
    assert_eq!(out.demoted.len(), 1);
    assert!(out.total.is_infinite());
}

#[test]
fn memo_key_captures_fault_config() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let s = spec(12);
    fault::clear_override();
    let k_unset = s.memo_key(SelectionLogic::BruteForce);
    fault::set_override(Some(FaultConfig::off()));
    let k_off = s.memo_key(SelectionLogic::BruteForce);
    fault::set_override(Some(FaultConfig::light(42)));
    let k_light = s.memo_key(SelectionLogic::BruteForce);
    fault::set_override(Some(FaultConfig::light(43)));
    let k_light2 = s.memo_key(SelectionLogic::BruteForce);
    fault::clear_override();
    assert_eq!(k_unset, k_off, "explicit off is the same simulation");
    assert_ne!(k_off, k_light, "fault config must split the memo space");
    assert_ne!(k_light, k_light2, "the fault seed is part of the key");
}
