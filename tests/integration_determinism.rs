//! Integration tests: the whole stack is deterministic — identical
//! configurations and seeds reproduce identical simulated timelines.

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;

fn spec(seed: u64) -> MicrobenchSpec {
    MicrobenchSpec {
        platform: Platform::crill(),
        nprocs: 24,
        op: CollectiveOp::Ialltoall,
        msg_bytes: 64 * 1024,
        iters: 18,
        compute_total: SimTime::from_millis(36),
        num_progress: 4,
        noise: NoiseConfig::light(seed),
        reps: 3,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    }
}

#[test]
fn microbench_bitwise_reproducible() {
    let a = spec(42).run(SelectionLogic::BruteForce);
    let b = spec(42).run(SelectionLogic::BruteForce);
    assert_eq!(a.history, b.history, "identical seeds, identical timelines");
    assert_eq!(a.winner, b.winner);
    assert_eq!(a.converged_at, b.converged_at);
}

#[test]
fn different_seeds_differ() {
    let a = spec(1).run(SelectionLogic::Fixed(0));
    let b = spec(2).run(SelectionLogic::Fixed(0));
    assert_ne!(a.history, b.history, "noise seeds must matter");
}

#[test]
fn noiseless_runs_are_identical_regardless_of_seed() {
    let mut s1 = spec(1);
    s1.noise = NoiseConfig::none();
    let mut s2 = spec(999);
    s2.noise = NoiseConfig::none();
    let a = s1.run(SelectionLogic::Fixed(1));
    let b = s2.run(SelectionLogic::Fixed(1));
    assert_eq!(a.history, b.history);
}

#[test]
fn fft_kernel_reproducible() {
    let cfg = FftKernelConfig {
        n: 64,
        planes_per_rank: 4,
        iters: 10,
        tile: 2,
        progress_per_tile: 2,
        reps: 2,
        placement: Placement::Block,
    };
    let run = || {
        run_fft_kernel(
            &Platform::whale(),
            8,
            &cfg,
            FftPattern::WindowTiled,
            FftMode::Adcl(SelectionLogic::BruteForce),
            NoiseConfig::light(7),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.history, b.history);
    assert_eq!(a.winner, b.winner);
}

#[test]
fn verification_oracle_is_stable() {
    // The fixed-implementation reference data (used to judge ADCL's
    // decisions) must itself be reproducible.
    let rows1 = spec(5).run_all_fixed();
    let rows2 = spec(5).run_all_fixed();
    assert_eq!(rows1, rows2);
}
