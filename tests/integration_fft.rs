//! Integration tests: the 3-D FFT application kernel (§IV-B).

use autonbc::prelude::*;

fn cfg() -> FftKernelConfig {
    FftKernelConfig {
        n: 128,
        planes_per_rank: 8,
        iters: 20,
        tile: 4,
        progress_per_tile: 2,
        reps: 3,
        placement: Placement::Block,
    }
}

#[test]
fn all_patterns_all_modes_complete() {
    let platform = Platform::whale();
    for pattern in FftPattern::all() {
        for mode in [
            FftMode::LibNbc,
            FftMode::BlockingMpi,
            FftMode::Adcl(SelectionLogic::BruteForce),
        ] {
            let r = run_fft_kernel(&platform, 8, &cfg(), pattern, mode, NoiseConfig::none());
            assert_eq!(r.history.len(), 20, "{pattern:?} {mode:?}");
            assert!(r.total_time > 0.0);
        }
    }
}

#[test]
fn adcl_not_worse_than_libnbc_steady_state() {
    // The paper: ADCL outperforms LibNBC in 74% of 393 tests, and when
    // LibNBC wins it is only by the learning-phase overhead. In steady
    // state ADCL can never be meaningfully worse, because LibNBC's linear
    // algorithm is in ADCL's candidate pool.
    let platform = Platform::whale();
    let c = cfg();
    for pattern in FftPattern::all() {
        let nbc = run_fft_kernel(
            &platform,
            16,
            &c,
            pattern,
            FftMode::LibNbc,
            NoiseConfig::none(),
        );
        let tuned = run_fft_kernel(
            &platform,
            16,
            &c,
            pattern,
            FftMode::Adcl(SelectionLogic::BruteForce),
            NoiseConfig::none(),
        );
        let learn = tuned.converged_at.unwrap_or(0);
        let steady_iters = (c.iters - learn) as f64;
        let tuned_rate = tuned.post_learning_time / steady_iters;
        let nbc_rate = nbc.total_time / c.iters as f64;
        assert!(
            tuned_rate <= nbc_rate * 1.05,
            "{pattern:?}: tuned steady rate {tuned_rate} vs libnbc {nbc_rate}"
        );
    }
}

#[test]
fn overlap_pays_when_there_is_compute() {
    // With substantial per-tile compute, the non-blocking kernel beats the
    // blocking one on at least one pattern (usually all).
    let platform = Platform::whale();
    let c = cfg();
    let mut wins = 0;
    for pattern in FftPattern::all() {
        let nb = run_fft_kernel(
            &platform,
            16,
            &c,
            pattern,
            FftMode::LibNbc,
            NoiseConfig::none(),
        );
        let bl = run_fft_kernel(
            &platform,
            16,
            &c,
            pattern,
            FftMode::BlockingMpi,
            NoiseConfig::none(),
        );
        if nb.total_time < bl.total_time {
            wins += 1;
        }
    }
    assert!(wins >= 2, "non-blocking won only {wins}/4 patterns");
}

#[test]
fn extended_function_set_decides_blocking_vs_nonblocking() {
    // §IV-B: with the extended function-set ADCL itself decides whether a
    // code sequence benefits from a non-blocking operation. The paper
    // notes blocking MPI_Alltoall still beats the extended set in some
    // instances (Fig. 11), so the requirement is that the tuned
    // steady-state rate is *close to* the best pure baseline — and never
    // as bad as the worst.
    let platform = Platform::whale();
    let mut c = cfg();
    c.iters = 32; // leave real steady-state room after 6 x 3 learning iters
    let pattern = FftPattern::WindowTiled;
    let ext = run_fft_kernel(
        &platform,
        16,
        &c,
        pattern,
        FftMode::AdclExtended(SelectionLogic::BruteForce),
        NoiseConfig::none(),
    );
    let winner = ext.winner.clone().expect("converged");
    let nb = run_fft_kernel(
        &platform,
        16,
        &c,
        pattern,
        FftMode::LibNbc,
        NoiseConfig::none(),
    );
    let bl = run_fft_kernel(
        &platform,
        16,
        &c,
        pattern,
        FftMode::BlockingMpi,
        NoiseConfig::none(),
    );
    let learn = ext.converged_at.unwrap();
    let ext_rate = ext.post_learning_time / (c.iters - learn) as f64;
    let nb_rate = nb.total_time / c.iters as f64;
    let bl_rate = bl.total_time / c.iters as f64;
    let best_rate = nb_rate.min(bl_rate);
    let worst_rate = nb_rate.max(bl_rate);
    assert!(
        ext_rate <= best_rate * 1.20,
        "extended set winner {winner}: {ext_rate} vs best baseline {best_rate}"
    );
    assert!(
        ext_rate <= worst_rate * 1.02 || worst_rate <= best_rate * 1.02,
        "tuning must at least avoid the worst baseline: {ext_rate} vs {worst_rate}"
    );
}

#[test]
fn bluegene_platform_runs_kernel() {
    let mut c = cfg();
    c.iters = 10;
    c.n = 64;
    let r = run_fft_kernel(
        &Platform::bluegene_p(),
        64,
        &c,
        FftPattern::Pipelined,
        FftMode::Adcl(SelectionLogic::BruteForce),
        NoiseConfig::none(),
    );
    assert_eq!(r.history.len(), 10);
}
