//! Integration tests for the zero-copy payload engine and the
//! simulation-result memo cache: neither layer may change *what* the
//! simulator computes, only how fast the host gets there.
//!
//! Payload mode and memo enablement are process-global toggles, so every
//! test here serializes on one mutex and restores the defaults before
//! releasing it.

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use nbc::PayloadMode;
use std::sync::Mutex;

static GLOBAL_TOGGLES: Mutex<()> = Mutex::new(());

fn spec() -> MicrobenchSpec {
    MicrobenchSpec {
        platform: Platform::whale(),
        nprocs: 16,
        op: CollectiveOp::Ibcast,
        msg_bytes: 256 * 1024,
        iters: 12,
        compute_total: SimTime::from_millis(12),
        num_progress: 5,
        noise: NoiseConfig::light(2015),
        reps: 2,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    }
}

/// The verification-table rows with every float reduced to its exact bit
/// pattern — the figure binaries print these with fixed formatting, so
/// bit equality here implies byte-identical table output.
fn table_rows_bits(s: &MicrobenchSpec) -> Vec<(String, u64)> {
    s.run_all_fixed()
        .into_iter()
        .map(|(name, total)| (name, total.to_bits()))
        .collect()
}

#[test]
fn payload_modes_produce_byte_identical_tables() {
    let _g = GLOBAL_TOGGLES.lock().unwrap_or_else(|p| p.into_inner());
    adcl::simmemo::set_enabled(false);
    let s = spec();
    nbc::set_default_payload_mode(PayloadMode::Off);
    let off = table_rows_bits(&s);
    nbc::set_default_payload_mode(PayloadMode::Naive);
    let naive = table_rows_bits(&s);
    nbc::set_default_payload_mode(PayloadMode::Pooled);
    let pooled = table_rows_bits(&s);
    nbc::clear_default_payload_mode();
    adcl::simmemo::clear_enabled_override();
    assert_eq!(off, naive, "naive payload staging changed simulated times");
    assert_eq!(
        off, pooled,
        "pooled payload staging changed simulated times"
    );
    assert!(!off.is_empty());
}

#[test]
fn memoized_table_is_byte_identical_to_fresh() {
    let _g = GLOBAL_TOGGLES.lock().unwrap_or_else(|p| p.into_inner());
    let mut s = spec();
    // A distinct configuration so entries primed by other tests in this
    // binary cannot mask a fresh-vs-replay difference.
    s.msg_bytes = 384 * 1024;
    adcl::simmemo::set_enabled(false);
    let fresh = table_rows_bits(&s);
    adcl::simmemo::set_enabled(true);
    let primed = table_rows_bits(&s); // misses: runs and caches
    let stats_before = adcl::simmemo::stats();
    let replayed = table_rows_bits(&s); // hits: pure replay
    let stats_after = adcl::simmemo::stats();
    adcl::simmemo::clear_enabled_override();
    assert_eq!(fresh, primed, "priming pass diverged from fresh run");
    assert_eq!(fresh, replayed, "replayed table diverged from fresh run");
    assert!(
        stats_after.hits >= stats_before.hits + fresh.len() as u64,
        "third pass should have replayed every row ({stats_before:?} -> {stats_after:?})"
    );
    assert!(
        stats_after.replayed_events > stats_before.replayed_events,
        "replays must credit avoided events"
    );
}

#[test]
fn pooled_sweep_allocates_far_less_than_naive() {
    let _g = GLOBAL_TOGGLES.lock().unwrap_or_else(|p| p.into_inner());
    adcl::simmemo::set_enabled(false);
    let s = spec();
    nbc::set_default_payload_mode(PayloadMode::Naive);
    let a0 = simcore::stats::payload_allocs();
    s.run_all_fixed();
    let naive_allocs = simcore::stats::payload_allocs() - a0;
    nbc::set_default_payload_mode(PayloadMode::Pooled);
    let a1 = simcore::stats::payload_allocs();
    s.run_all_fixed();
    let pooled_allocs = simcore::stats::payload_allocs() - a1;
    nbc::clear_default_payload_mode();
    adcl::simmemo::clear_enabled_override();
    assert!(
        pooled_allocs * 4 < naive_allocs,
        "pooled {pooled_allocs} allocs vs naive {naive_allocs}: pool is not recycling"
    );
}

#[test]
fn memo_disabled_runs_do_not_populate_cache() {
    let _g = GLOBAL_TOGGLES.lock().unwrap_or_else(|p| p.into_inner());
    adcl::simmemo::set_enabled(false);
    let mut s = spec();
    s.msg_bytes = 320 * 1024;
    s.nprocs = 8;
    let key = s.memo_key(SelectionLogic::Fixed(0));
    let before = adcl::simmemo::len();
    let out = s.run_memo(SelectionLogic::Fixed(0));
    assert!(out.total > 0.0);
    assert_eq!(
        adcl::simmemo::len(),
        before,
        "disabled memo must not cache (key {key})"
    );
    adcl::simmemo::clear_enabled_override();
}
