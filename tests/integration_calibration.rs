//! Integration tests: the simulated world reproduces the analytic
//! calibration predictions of `netmodel::calibrate` in uncontended
//! conditions — tying the discrete-event machinery to the closed-form
//! LogGP model.

use autonbc::prelude::*;
use mpisim::{RankBehavior, RankId, RecvHandle, SendHandle, Step, Tag};
use netmodel::calibrate;

/// One uncontended message rank 0 → rank 1; both sides wait immediately.
struct OneMessage {
    bytes: usize,
    sent: bool,
    send: Option<SendHandle>,
    recv: Option<RecvHandle>,
    recv_done_at: SimTime,
}

impl RankBehavior for OneMessage {
    fn step(&mut self, w: &mut World, r: RankId) -> Step {
        if !self.sent {
            self.sent = true;
            // Post both sides at t=0 (+ the posting overheads the model
            // already includes via o_send/o_recv in `at`).
            let s = w.isend(0, 1, Tag(0), self.bytes, w.o_send(0, 1));
            let rv = w.irecv(1, 0, Tag(0), self.bytes, w.o_recv(1, 0));
            self.send = Some(s);
            self.recv = Some(rv);
            if r == 0 {
                return Step::Busy(w.o_send(0, 1));
            }
            return Step::Busy(w.o_recv(1, 0));
        }
        let now = w.rank_now(r);
        w.poll(r, now);
        let done = match r {
            0 => w.send_done(self.send.unwrap(), now),
            _ => w.recv_done(self.recv.unwrap(), now),
        };
        if done {
            if r == 1 {
                self.recv_done_at = w.recv_complete_time(self.recv.unwrap()).unwrap();
            }
            Step::Done
        } else {
            Step::Block
        }
    }
}

/// Measure the simulated one-way time for `bytes` on `platform`
/// (rank 0 and 1 on different nodes).
fn simulate_oneway(platform: &Platform, bytes: usize) -> SimTime {
    let mut w = World::new(
        platform.clone(),
        2,
        Placement::RoundRobin,
        NoiseConfig::none(),
    );
    let mut b = OneMessage {
        bytes,
        sent: false,
        send: None,
        recv: None,
        recv_done_at: SimTime::ZERO,
    };
    w.run(&mut b).expect("single message completes");
    b.recv_done_at
}

#[test]
fn eager_oneway_matches_prediction() {
    for name in ["whale", "crill", "whale-tcp"] {
        let platform = Platform::by_name(name).unwrap();
        for bytes in [64usize, 1024, 8 * 1024] {
            if !platform.inter.is_eager(bytes) {
                continue;
            }
            let predicted = calibrate::predict(&platform.inter, bytes).one_way;
            let simulated = simulate_oneway(&platform, bytes);
            // The analytic prediction counts o_send + serialize + L +
            // o_recv; the simulation should agree within a few percent
            // (it orders the components slightly differently).
            let ratio = simulated.as_secs_f64() / predicted.as_secs_f64();
            assert!(
                (0.8..1.2).contains(&ratio),
                "{name} {bytes} B: simulated {simulated} vs predicted {predicted}"
            );
        }
    }
}

#[test]
fn rendezvous_oneway_close_to_prediction() {
    // Rendezvous adds handshake round trips; both sides poll continuously
    // (blocked in wait), which is the best case the prediction models.
    for name in ["whale", "crill"] {
        let platform = Platform::by_name(name).unwrap();
        for bytes in [64 * 1024usize, 1 << 20] {
            assert!(!platform.inter.is_eager(bytes));
            let predicted = calibrate::predict(&platform.inter, bytes).one_way;
            let simulated = simulate_oneway(&platform, bytes);
            let ratio = simulated.as_secs_f64() / predicted.as_secs_f64();
            assert!(
                (0.8..1.3).contains(&ratio),
                "{name} {bytes} B: simulated {simulated} vs predicted {predicted} (x{ratio:.2})"
            );
        }
    }
}

#[test]
fn simulated_bandwidth_approaches_peak() {
    let platform = Platform::whale();
    let bytes = 8 << 20;
    let t = simulate_oneway(&platform, bytes);
    let gbps = bytes as f64 / t.as_secs_f64() / 1e9;
    let peak = calibrate::peak_bandwidth_gbps(&platform.inter);
    assert!(
        gbps > peak * 0.9,
        "large-message bandwidth {gbps} GB/s should approach peak {peak}"
    );
}

#[test]
fn latency_dominates_small_messages() {
    let platform = Platform::whale();
    let t64 = simulate_oneway(&platform, 64);
    let t1k = simulate_oneway(&platform, 1024);
    // In the latency-bound regime, 16x the bytes costs < 1.5x the time.
    assert!(
        t1k.as_secs_f64() / t64.as_secs_f64() < 1.5,
        "{t64} -> {t1k}"
    );
}
