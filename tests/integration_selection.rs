//! Integration tests: correctness of the runtime selection logic under
//! realistic conditions — the scaled-down analogue of the paper's
//! verification-run study (§IV-A), including its correct-decision-rate
//! criterion.

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;

/// A decision counts as correct if the chosen implementation is within 5%
/// of the best fixed implementation (the paper's definition).
fn decision_is_correct(spec: &MicrobenchSpec, logic: SelectionLogic) -> bool {
    let rows = spec.run_all_fixed();
    let best = rows.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);
    let tuned = spec.run(logic);
    let Some(winner) = tuned.winner else {
        return false;
    };
    let winner_time = rows.iter().find(|(n, _)| *n == winner).unwrap().1;
    winner_time <= best * 1.05
}

fn scenarios() -> Vec<MicrobenchSpec> {
    let mut v = Vec::new();
    for platform in [Platform::whale(), Platform::crill()] {
        for nprocs in [8usize, 24] {
            for msg in [1024usize, 128 * 1024] {
                v.push(MicrobenchSpec {
                    platform: platform.clone(),
                    nprocs,
                    op: CollectiveOp::Ialltoall,
                    msg_bytes: msg,
                    iters: 30,
                    compute_total: SimTime::from_millis(60),
                    num_progress: 5,
                    noise: NoiseConfig::light(13),
                    reps: 5,
                    placement: Placement::Block,
                    imbalance: Imbalance::None,
                });
            }
        }
    }
    v
}

#[test]
fn brute_force_verification_rate() {
    // Paper: 90% correct decisions over 324 runs. We run a scaled-down
    // sweep under light noise and require at least 7 of 8 correct.
    let scenarios = scenarios();
    let n = scenarios.len();
    let correct = scenarios
        .iter()
        .filter(|s| decision_is_correct(s, SelectionLogic::BruteForce))
        .count();
    assert!(
        correct * 8 >= n * 7,
        "brute force correct in only {correct}/{n} scenarios"
    );
}

#[test]
fn heuristic_verification_rate() {
    // Paper: 92% for the attribute heuristic. The alltoall set has a
    // single attribute, so the heuristic degenerates to brute force there;
    // this still validates the full code path under noise.
    let scenarios = scenarios();
    let n = scenarios.len();
    let correct = scenarios
        .iter()
        .filter(|s| decision_is_correct(s, SelectionLogic::AttributeHeuristic))
        .count();
    assert!(
        correct * 8 >= n * 7,
        "heuristic correct in only {correct}/{n} scenarios"
    );
}

#[test]
fn selection_robust_to_heavy_noise() {
    // Under heavy OS-noise injection, the IQR filter must still find a
    // near-best implementation most of the time.
    let mut s = MicrobenchSpec {
        platform: Platform::whale(),
        nprocs: 16,
        op: CollectiveOp::Ialltoall,
        msg_bytes: 1024,
        iters: 40,
        compute_total: SimTime::from_millis(80),
        num_progress: 5,
        noise: NoiseConfig::heavy(99),
        reps: 8,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    };
    let rows = s.run_all_fixed();
    let best = rows.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);
    let mut hits = 0;
    for seed in 0..5 {
        s.noise = NoiseConfig::heavy(seed);
        let tuned = s.run(SelectionLogic::BruteForce);
        if let Some(w) = tuned.winner {
            let t = rows.iter().find(|(n, _)| *n == w).unwrap().1;
            if t <= best * 1.10 {
                hits += 1;
            }
        }
    }
    assert!(
        hits >= 3,
        "only {hits}/5 noisy runs picked a near-best impl"
    );
}

#[test]
fn learning_cost_is_bounded() {
    // The ADCL run is slower than the oracle only by the learning phase;
    // afterwards the per-iteration cost matches the winner's.
    let s = MicrobenchSpec {
        platform: Platform::crill(),
        nprocs: 32,
        op: CollectiveOp::Ialltoall,
        msg_bytes: 128 * 1024,
        iters: 40,
        compute_total: SimTime::from_millis(400),
        num_progress: 5,
        noise: NoiseConfig::none(),
        reps: 3,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    };
    let tuned = s.run(SelectionLogic::BruteForce);
    let learn_end = tuned.converged_at.unwrap();
    assert!(
        (9..=12).contains(&learn_end),
        "3 fns x 3 reps + lag, got {learn_end}"
    );
    let steady: f64 = tuned.history[learn_end..].iter().sum::<f64>() / (s.iters - learn_end) as f64;
    let (_, oracle_total) = s.oracle();
    let oracle_rate = oracle_total / s.iters as f64;
    assert!(
        steady <= oracle_rate * 1.05,
        "steady-state {steady} vs oracle rate {oracle_rate}"
    );
}

#[test]
fn history_store_skips_learning_phase() {
    // Historic learning (§IV-B): a second run that knows the winner pays
    // no learning cost at all.
    let s = MicrobenchSpec {
        platform: Platform::whale(),
        nprocs: 16,
        op: CollectiveOp::Ialltoall,
        msg_bytes: 128 * 1024,
        iters: 24,
        compute_total: SimTime::from_millis(120),
        num_progress: 5,
        noise: NoiseConfig::none(),
        reps: 3,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    };
    // First execution: learn and store.
    let first = s.run(SelectionLogic::BruteForce);
    let winner = first.winner.clone().unwrap();
    let mut store = HistoryStore::new();
    let key = HistoryKey {
        op: "ialltoall".into(),
        platform: s.platform.name.clone(),
        nprocs: s.nprocs,
        msg_bytes: s.msg_bytes,
    };
    store.put(key.clone(), &winner, 0.0).expect("clean key");
    // Second execution: look up and pin.
    let text = store.to_string_repr();
    let reloaded = HistoryStore::from_string_repr(&text);
    let stored = reloaded.get(&key).expect("stored decision").winner.clone();
    let fnset = FunctionSet::ialltoall_default(CollSpec::new(s.nprocs, s.msg_bytes));
    let idx = fnset.index_of(&stored).expect("known function");
    let second = s.run(SelectionLogic::Fixed(idx));
    assert!(
        second.total <= first.total,
        "reusing history ({}) must not be slower: {} vs {}",
        stored,
        second.total,
        first.total
    );
}
