//! Integration tests: the observability layer (span traces, metrics
//! registry, tuner audit log).
//!
//! The core contract: with tracing off, instrumentation is invisible —
//! simulated results are bit-identical to a traced run; with tracing on,
//! the exported document is well-formed Chrome trace_event JSON whose rank
//! state spans nest sanely, and the audit log agrees with the tuner.
//!
//! The trace-enabled override is process-global, so every test here takes
//! one lock; the suite still runs in parallel with the other integration
//! binaries (separate processes).

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use simcore::json::{self, Json};
use simcore::trace;
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn spec() -> MicrobenchSpec {
    MicrobenchSpec {
        platform: Platform::whale(),
        nprocs: 8,
        op: CollectiveOp::Ialltoall,
        msg_bytes: 64 * 1024,
        iters: 15,
        compute_total: SimTime::from_millis(15),
        num_progress: 3,
        noise: NoiseConfig::light(7),
        reps: 3,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    }
}

/// Fingerprint of everything a figure binary would print about a run.
fn outcome_fingerprint(out: &autonbc::driver::MicrobenchOutcome) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{}",
        out.total, out.history, out.winner, out.converged_at, out.sim_events
    )
}

#[test]
fn tracing_does_not_change_results() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let s = spec();

    trace::set_enabled(false);
    let off = s.run(SelectionLogic::BruteForce);

    trace::set_enabled(true);
    adcl::audit::clear();
    let on = s.run(SelectionLogic::BruteForce);
    let traced_runs = trace::take_all();

    trace::clear_enabled_override();

    assert_eq!(
        outcome_fingerprint(&off),
        outcome_fingerprint(&on),
        "tracing must not perturb simulated results"
    );
    // And the traced run actually produced a timeline.
    assert!(!traced_runs.is_empty(), "no trace published");
    assert!(traced_runs.iter().map(|t| t.len()).sum::<usize>() > 0);
}

#[test]
fn disabled_by_default_collects_nothing() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(false);
    let before = trace::collected_runs();
    let _ = spec().run(SelectionLogic::Fixed(0));
    assert_eq!(
        trace::collected_runs(),
        before,
        "worlds must not publish traces while tracing is off"
    );
    trace::clear_enabled_override();
}

fn f64_of(e: &Json, key: &str) -> f64 {
    e.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

fn str_of<'a>(e: &'a Json, key: &str) -> &'a str {
    e.get(key).and_then(|v| v.as_str()).unwrap_or("")
}

#[test]
fn exported_document_is_wellformed_chrome_json() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(true);
    adcl::audit::clear();
    let _ = trace::take_all(); // start from an empty collector
    let _ = spec().run(SelectionLogic::BruteForce);
    let doc_text = autonbc::traceout::render_combined();
    trace::clear_enabled_override();
    adcl::audit::clear();

    let doc = json::parse(&doc_text).expect("combined document parses");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut saw_metadata = false;
    let mut saw_rank_span = false;
    // Rank state spans (compute/library/blocked) tile each rank's
    // timeline: per (pid, tid) they must be non-overlapping in time order.
    let mut last_end: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
    for e in events {
        match str_of(e, "ph") {
            "M" => {
                saw_metadata = true;
                assert_eq!(str_of(e, "name"), "process_name");
            }
            "X" => {
                let dur = f64_of(e, "dur");
                assert!(dur >= 0.0, "negative span duration");
                if str_of(e, "cat") == "rank" {
                    saw_rank_span = true;
                    assert!(matches!(
                        str_of(e, "name"),
                        "compute" | "library" | "blocked"
                    ));
                    let key = (f64_of(e, "pid") as u64, f64_of(e, "tid") as u64);
                    let ts = f64_of(e, "ts");
                    let end = last_end.entry(key).or_insert(0.0);
                    // Events are exported in per-rank recording order;
                    // allow exact abutment (floating-point-identical µs).
                    assert!(
                        ts >= *end - 1e-9,
                        "rank span overlaps its predecessor: ts {ts} < end {end}"
                    );
                    *end = ts + dur;
                }
            }
            "i" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(saw_metadata, "no process_name metadata record");
    assert!(saw_rank_span, "no rank state spans");
    assert!(doc.get("adclAudit").and_then(|v| v.as_arr()).is_some());
}

#[test]
fn audit_winner_matches_tuner_winner() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(true);
    adcl::audit::clear();
    let s = spec();
    let out = s.run(SelectionLogic::BruteForce);
    let records = adcl::audit::records();
    trace::clear_enabled_override();
    adcl::audit::clear();
    let _ = trace::take_all();

    let tuner_winner = out.winner.expect("brute force converges in 15 iters");
    let rec = records
        .iter()
        .find(|r| r.op == "ialltoall")
        .expect("one audit record for the tuned op");
    assert_eq!(rec.winner_name, tuner_winner);
    assert_eq!(rec.strategy, out.strategy);
    // Convergence point agrees with the tuner's report.
    assert_eq!(Some(rec.decided_at_iter), out.converged_at);
    // The winner's evidence is present: it was measured, and no candidate
    // kept more samples than it took.
    let w = &rec.candidates[rec.winner];
    assert!(w.samples > 0);
    assert!(w.kept <= w.samples);
    assert!(w.score.is_finite());
    // Margin is non-negative: the winner scored at or below the runner-up.
    assert!(rec.margin >= 0.0, "margin {}", rec.margin);
}

#[test]
fn audit_not_recorded_for_historic_learning() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(true);
    adcl::audit::clear();
    // A tuner seeded with a known winner skips the learning phase and must
    // not claim a live decision.
    let fnset = FunctionSet::ialltoall_default(CollSpec::new(8, 1024));
    let mut t = Tuner::with_known_winner(&fnset, 1);
    for i in 0..10 {
        assert_eq!(t.function_for_iter(i), 1);
    }
    assert_eq!(adcl::audit::len(), 0, "historic tuner emitted an audit");
    trace::clear_enabled_override();
    let _ = trace::take_all();
}
