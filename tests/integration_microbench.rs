//! Integration tests: the §IV-A micro-benchmark across the full stack
//! (netmodel → mpisim → nbc → adcl).

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;

fn spec(platform: Platform, nprocs: usize, msg: usize) -> MicrobenchSpec {
    MicrobenchSpec {
        platform,
        nprocs,
        op: CollectiveOp::Ialltoall,
        msg_bytes: msg,
        iters: 24,
        compute_total: SimTime::from_millis(48),
        num_progress: 5,
        noise: NoiseConfig::none(),
        reps: 3,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    }
}

#[test]
fn loop_time_never_beats_compute_floor() {
    for platform in [Platform::whale(), Platform::crill()] {
        let s = spec(platform, 16, 1024);
        for (name, total) in s.run_all_fixed() {
            assert!(
                total >= s.compute_total.as_secs_f64(),
                "{name}: {total} < compute floor"
            );
        }
    }
}

#[test]
fn small_messages_overlap_nearly_fully() {
    // 1 KiB eager messages with plenty of compute: the loop should cost
    // barely more than the compute itself for the best implementation.
    let s = spec(Platform::whale(), 16, 1024);
    let (name, best) = s.oracle();
    let floor = s.compute_total.as_secs_f64();
    assert!(
        best < floor * 1.25,
        "best impl {name} should mostly overlap: {best} vs floor {floor}"
    );
}

#[test]
fn rendezvous_without_progress_calls_exposes_communication() {
    // Large messages and a single progress call: overlap is poor, the loop
    // takes clearly longer than with many progress calls.
    let mut few = spec(Platform::whale(), 16, 256 * 1024);
    few.compute_total = SimTime::from_millis(200);
    few.num_progress = 1;
    let mut many = few.clone();
    many.num_progress = 20;
    let (_, t_few) = few.oracle();
    let (_, t_many) = many.oracle();
    assert!(
        t_few > t_many,
        "more progress calls must help rendezvous overlap: {t_few} vs {t_many}"
    );
}

#[test]
fn excessive_progress_calls_cost_time() {
    // Past full overlap, additional progress calls are pure overhead
    // (paper Fig. 6).
    let mut some = spec(Platform::whale(), 8, 1024);
    some.num_progress = 5;
    let mut excessive = some.clone();
    excessive.num_progress = 2000;
    let t_some = some.run(SelectionLogic::Fixed(0)).total;
    let t_exc = excessive.run(SelectionLogic::Fixed(0)).total;
    assert!(
        t_exc > t_some,
        "2000 progress calls should cost more than 5: {t_exc} vs {t_some}"
    );
}

#[test]
fn adcl_brute_force_picks_near_oracle_on_each_platform() {
    for platform in [Platform::whale(), Platform::whale_tcp(), Platform::crill()] {
        let name = platform.name.clone();
        let mut s = spec(platform, 16, 32 * 1024);
        if name == "whale-tcp" {
            s.compute_total = SimTime::from_secs(2);
        }
        let rows = s.run_all_fixed();
        let tuned = s.run(SelectionLogic::BruteForce);
        let winner = tuned.winner.expect("converged");
        let winner_time = rows.iter().find(|(n, _)| *n == winner).unwrap().1;
        let best = rows.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);
        // The paper's correctness criterion: the chosen implementation is
        // within 5% of the best; allow 10% for the simulated substrate.
        assert!(
            winner_time <= best * 1.10,
            "{name}: winner {winner} at {winner_time}, best {best}"
        );
    }
}

#[test]
fn ibcast_heuristic_converges_faster_than_brute_force() {
    let mut s = spec(Platform::whale(), 16, 2 * 1024 * 1024);
    s.op = CollectiveOp::Ibcast;
    s.iters = 70;
    s.reps = 2;
    s.compute_total = SimTime::from_millis(700);
    let brute = s.run(SelectionLogic::BruteForce);
    let heur = s.run(SelectionLogic::AttributeHeuristic);
    let b = brute.converged_at.expect("brute converged");
    let h = heur.converged_at.expect("heuristic converged");
    assert!(
        h < b,
        "heuristic {h} should converge before brute force {b}"
    );
    // 21 functions x 2 reps for brute force, plus at most a few
    // provisional iterations while lagging ranks report.
    assert!((42..=45).contains(&b), "brute force converged at {b}");
}

#[test]
fn factorial_design_converges_fastest() {
    let mut s = spec(Platform::whale(), 16, 512 * 1024);
    s.op = CollectiveOp::Ibcast;
    s.iters = 60;
    s.reps = 2;
    s.compute_total = SimTime::from_millis(600);
    let fact = s.run(SelectionLogic::TwoKFactorial);
    let heur = s.run(SelectionLogic::AttributeHeuristic);
    let f = fact.converged_at.expect("factorial converged");
    let h = heur.converged_at.expect("heuristic converged");
    // 2 attributes -> at most 4 corners x 2 reps = 8 learning iterations
    // (plus the decision lag of a couple of provisional iterations).
    assert!(f <= 11, "factorial learning took {f}");
    assert!(f <= h);
}

#[test]
fn extended_set_can_choose_blocking_when_overlap_is_useless() {
    // No compute at all: overlapping buys nothing, so blocking variants
    // (which skip progress-engine overhead) are legitimate winners. The
    // tuned result must not be worse than the plain non-blocking set.
    let mut s = spec(Platform::whale(), 16, 64 * 1024);
    s.iters = 40;
    s.compute_total = SimTime::from_micros(40); // ~1 us per iteration
    s.op = CollectiveOp::IalltoallExtended;
    let ext = s.run(SelectionLogic::BruteForce);
    let mut plain = s.clone();
    plain.op = CollectiveOp::Ialltoall;
    let nb = plain.run(SelectionLogic::BruteForce);
    assert!(
        ext.post_learning <= nb.post_learning * 1.15,
        "extended {0} vs non-blocking {1}",
        ext.post_learning,
        nb.post_learning
    );
}
