//! Integration tests for the parallel sweep engine: sweeps executed on
//! worker threads produce bit-identical results to the serial baseline,
//! and the global schedule cache never changes simulated outcomes.

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use nbc::bcast::{build_bcast, BcastAlgo};
use nbc::cache;
use nbc::schedule::CollSpec;

fn spec(op: CollectiveOp, msg_bytes: usize) -> MicrobenchSpec {
    MicrobenchSpec {
        platform: Platform::whale(),
        nprocs: 8,
        op,
        msg_bytes,
        iters: 15,
        compute_total: SimTime::from_millis(15),
        num_progress: 4,
        noise: NoiseConfig::light(77),
        reps: 3,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    }
}

#[test]
fn fixed_sweep_invariant_under_jobs() {
    let s = spec(CollectiveOp::Ialltoall, 32 * 1024);
    let serial = s.run_all_fixed_jobs(1);
    for jobs in [2, 4, 8] {
        let par = s.run_all_fixed_jobs(jobs);
        assert_eq!(serial.len(), par.len(), "jobs={jobs}");
        for ((n1, t1), (n2, t2)) in serial.iter().zip(&par) {
            assert_eq!(n1, n2, "jobs={jobs}");
            // Bit-identical, not approximately equal: the simulations are
            // integer-time and own their seeds, so threading must not
            // perturb them at all.
            assert_eq!(t1.to_bits(), t2.to_bits(), "jobs={jobs} impl {n1}");
        }
    }
}

#[test]
fn tuned_runs_invariant_under_parallel_fanout() {
    // Whole tuned runs (learning phase included) fanned out across
    // threads match the same runs executed one by one.
    let specs = [
        spec(CollectiveOp::Ialltoall, 1024),
        spec(CollectiveOp::Iallgather, 4096),
        spec(CollectiveOp::Ireduce, 64 * 1024),
    ];
    let serial: Vec<_> = specs
        .iter()
        .map(|s| s.run(SelectionLogic::BruteForce))
        .collect();
    let par = simcore::par::par_map(3, &specs, |_, s| s.run(SelectionLogic::BruteForce));
    for (a, b) in serial.iter().zip(&par) {
        assert_eq!(a.history, b.history);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.converged_at, b.converged_at);
    }
}

#[test]
fn par_map_merges_in_input_order() {
    let items: Vec<usize> = (0..32).collect();
    let out = simcore::par::par_map(4, &items, |i, &x| {
        assert_eq!(i, x);
        x * 10
    });
    assert_eq!(out, items.iter().map(|x| x * 10).collect::<Vec<_>>());
}

#[test]
fn schedule_cache_matches_fresh_builds_end_to_end() {
    // The runtime routes every builder through the cache; a cached
    // schedule must render identically to a fresh build for shapes the
    // microbenchmark actually uses.
    let s = spec(CollectiveOp::Ibcast, 256 * 1024);
    let _ = s.run(SelectionLogic::Fixed(0));
    let coll = CollSpec::new(s.nprocs, s.msg_bytes);
    for algo in BcastAlgo::all() {
        for seg in [32 * 1024, 64 * 1024, 128 * 1024] {
            for rank in 0..s.nprocs {
                let cached = cache::cached_bcast(algo, seg, rank, &coll);
                let fresh = build_bcast(algo, seg, rank, &coll);
                assert_eq!(
                    cached.render(),
                    fresh.render(),
                    "{algo:?} seg={seg} rank={rank}"
                );
            }
        }
    }
}

#[test]
fn cached_run_equals_cold_run() {
    // A run against a warm cache must time out identically to the first
    // (cache-cold) run of the same scenario.
    let s = spec(CollectiveOp::Iallreduce, 16 * 1024);
    let cold = s.run(SelectionLogic::BruteForce);
    let warm = s.run(SelectionLogic::BruteForce);
    assert_eq!(cold.history, warm.history);
    assert_eq!(cold.winner, warm.winner);
}
