//! Integration tests for the parallel sweep engine: sweeps executed on
//! worker threads produce bit-identical results to the serial baseline,
//! and the global schedule cache never changes simulated outcomes.

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use nbc::bcast::{build_bcast, BcastAlgo};
use nbc::cache;
use nbc::schedule::CollSpec;
use std::sync::{Mutex, MutexGuard};

/// Every test in this binary runs simulations, and simulations flush into
/// the process-global metrics registry. Tests that compare registry deltas
/// need an exclusive window, so all tests serialize on this lock.
static REG_LOCK: Mutex<()> = Mutex::new(());

fn reg_lock() -> MutexGuard<'static, ()> {
    REG_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn spec(op: CollectiveOp, msg_bytes: usize) -> MicrobenchSpec {
    MicrobenchSpec {
        platform: Platform::whale(),
        nprocs: 8,
        op,
        msg_bytes,
        iters: 15,
        compute_total: SimTime::from_millis(15),
        num_progress: 4,
        noise: NoiseConfig::light(77),
        reps: 3,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    }
}

#[test]
fn fixed_sweep_invariant_under_jobs() {
    let _g = reg_lock();
    let s = spec(CollectiveOp::Ialltoall, 32 * 1024);
    let serial = s.run_all_fixed_jobs(1);
    for jobs in [2, 4, 8] {
        let par = s.run_all_fixed_jobs(jobs);
        assert_eq!(serial.len(), par.len(), "jobs={jobs}");
        for ((n1, t1), (n2, t2)) in serial.iter().zip(&par) {
            assert_eq!(n1, n2, "jobs={jobs}");
            // Bit-identical, not approximately equal: the simulations are
            // integer-time and own their seeds, so threading must not
            // perturb them at all.
            assert_eq!(t1.to_bits(), t2.to_bits(), "jobs={jobs} impl {n1}");
        }
    }
}

#[test]
fn tuned_runs_invariant_under_parallel_fanout() {
    let _g = reg_lock();
    // Whole tuned runs (learning phase included) fanned out across
    // threads match the same runs executed one by one.
    let specs = [
        spec(CollectiveOp::Ialltoall, 1024),
        spec(CollectiveOp::Iallgather, 4096),
        spec(CollectiveOp::Ireduce, 64 * 1024),
    ];
    let serial: Vec<_> = specs
        .iter()
        .map(|s| s.run(SelectionLogic::BruteForce))
        .collect();
    let par = simcore::par::par_map(3, &specs, |_, s| s.run(SelectionLogic::BruteForce));
    for (a, b) in serial.iter().zip(&par) {
        assert_eq!(a.history, b.history);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.converged_at, b.converged_at);
    }
}

#[test]
fn par_map_merges_in_input_order() {
    let _g = reg_lock();
    let items: Vec<usize> = (0..32).collect();
    let out = simcore::par::par_map(4, &items, |i, &x| {
        assert_eq!(i, x);
        x * 10
    });
    assert_eq!(out, items.iter().map(|x| x * 10).collect::<Vec<_>>());
}

#[test]
fn schedule_cache_matches_fresh_builds_end_to_end() {
    // The runtime routes every builder through the cache; a cached
    // schedule must render identically to a fresh build for shapes the
    // microbenchmark actually uses.
    let _g = reg_lock();
    let s = spec(CollectiveOp::Ibcast, 256 * 1024);
    let _ = s.run(SelectionLogic::Fixed(0));
    let coll = CollSpec::new(s.nprocs, s.msg_bytes);
    for algo in BcastAlgo::all() {
        for seg in [32 * 1024, 64 * 1024, 128 * 1024] {
            for rank in 0..s.nprocs {
                let cached = cache::cached_bcast(algo, seg, rank, &coll);
                let fresh = build_bcast(algo, seg, rank, &coll);
                assert_eq!(
                    cached.render(),
                    fresh.render(),
                    "{algo:?} seg={seg} rank={rank}"
                );
            }
        }
    }
}

#[test]
fn cached_run_equals_cold_run() {
    // A run against a warm cache must time out identically to the first
    // (cache-cold) run of the same scenario.
    let _g = reg_lock();
    let s = spec(CollectiveOp::Iallreduce, 16 * 1024);
    let cold = s.run(SelectionLogic::BruteForce);
    let warm = s.run(SelectionLogic::BruteForce);
    assert_eq!(cold.history, warm.history);
    assert_eq!(cold.winner, warm.winner);
}

/// The registry metrics whose per-sweep deltas must be identical for every
/// `jobs` value: they count simulation events, and the simulations are
/// bit-identical under threading. (Cache hit/miss splits and payload-pool
/// allocations are deliberately excluded — warm caches and per-thread pools
/// shift *where* work lands without changing simulated outcomes.)
const JOBS_INVARIANT_METRICS: &[&str] = &[
    "mpisim.polls",
    "mpisim.rdv_stall_ns",
    "mpisim.rdv_stalls",
    "mpisim.sim_events",
    "mpisim.unexpected_msgs",
];

/// Read the jobs-invariant metrics as `(name, values)` rows. Counters yield
/// one value; histograms yield `[count, sum, max]`. `max` is monotone and
/// workload-determined, so comparing absolute values across identical
/// back-to-back sweeps is sound even without resetting the registry.
fn registry_probe() -> Vec<(&'static str, Vec<u64>)> {
    simcore::metrics::snapshot()
        .into_iter()
        .filter(|(name, _)| JOBS_INVARIANT_METRICS.contains(name))
        .map(|(name, r)| match r {
            simcore::metrics::Reading::Counter(v) | simcore::metrics::Reading::Gauge(v) => {
                (name, vec![v])
            }
            simcore::metrics::Reading::Histogram { count, sum, max } => {
                (name, vec![count, sum, max])
            }
        })
        .collect()
}

/// Per-metric deltas between two probes (histogram `max` carried absolute).
fn probe_delta(
    before: &[(&'static str, Vec<u64>)],
    after: &[(&'static str, Vec<u64>)],
) -> Vec<(&'static str, Vec<u64>)> {
    after
        .iter()
        .map(|(name, vals)| {
            let base = before
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.as_slice())
                .unwrap_or(&[]);
            let d = vals
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    // Index 2 is a histogram max: monotone, not a flow.
                    if i == 2 {
                        v
                    } else {
                        v - base.get(i).copied().unwrap_or(0)
                    }
                })
                .collect();
            (*name, d)
        })
        .collect()
}

fn metrics_probe_points() -> Vec<MicrobenchSpec> {
    let sizes = [8 * 1024, 32 * 1024, 128 * 1024, 512 * 1024];
    (0..8)
        .map(|k| {
            let mut s = spec(CollectiveOp::Ibcast, sizes[k % sizes.len()]);
            s.iters = 6;
            s.reps = 2;
            s.noise = NoiseConfig::light(simcore::par::derive_seed(500, k as u64));
            s
        })
        .collect()
}

#[test]
fn metrics_registry_flush_is_jobs_invariant() {
    // Worker threads accumulate per-world metric state locally and flush at
    // sweep boundaries; after the flush, the registry deltas for one sweep
    // must be byte-identical no matter how the sweep was threaded.
    let _g = reg_lock();
    adcl::simmemo::set_enabled(false);
    let points = metrics_probe_points();
    let nfuncs = CollectiveOp::Ibcast
        .fnset(CollSpec::new(8, 128 * 1024))
        .len();
    let run_sweep = |jobs: usize| {
        let before = registry_probe();
        let totals = simcore::par::par_map(jobs, &points, |i, s| {
            s.run(SelectionLogic::Fixed(i % nfuncs)).total.to_bits()
        });
        (probe_delta(&before, &registry_probe()), totals)
    };
    let (serial_delta, serial_totals) = run_sweep(1);
    assert!(
        serial_delta
            .iter()
            .any(|(n, v)| *n == "mpisim.sim_events" && v[0] > 0),
        "probe sweep produced no simulation events: {serial_delta:?}"
    );
    for jobs in [2, 8] {
        let (delta, totals) = run_sweep(jobs);
        assert_eq!(serial_totals, totals, "jobs={jobs}");
        assert_eq!(serial_delta, delta, "jobs={jobs}");
    }
    adcl::simmemo::clear_enabled_override();
}

/// FNV-1a over result bit patterns: order-sensitive digest for the
/// cross-`jobs` byte-identity checks below.
fn digest64(totals: &[u64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &t in totals {
        for b in t.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[test]
fn front_caches_jobs_invariant_after_clear() {
    // The schedule cache keeps per-thread front caches invalidated by a
    // global epoch. Clearing between sweeps bumps the epoch, so every
    // worker's front cache must drop its stale entries and repopulate from
    // the shared map — and the sweep results must stay byte-identical at
    // every jobs value regardless.
    let _g = reg_lock();
    adcl::simmemo::set_enabled(false);
    let points = metrics_probe_points();
    let nfuncs = CollectiveOp::Ibcast
        .fnset(CollSpec::new(8, 128 * 1024))
        .len();
    let sweep_digest = |jobs: usize| -> u64 {
        cache::clear();
        let totals = simcore::par::par_map(jobs, &points, |i, s| {
            s.run(SelectionLogic::Fixed(i % nfuncs)).total.to_bits()
        });
        digest64(&totals)
    };
    let serial = sweep_digest(1);
    for jobs in [2, 8] {
        assert_eq!(sweep_digest(jobs), serial, "jobs={jobs}");
    }
    adcl::simmemo::clear_enabled_override();
}

#[test]
fn memoized_replay_is_jobs_invariant() {
    // The sim-memo front cache replays outcomes from thread-local state on
    // repeat passes. Priming on one thread layout and replaying on another
    // must produce the same digests as the serial prime/replay pair.
    let _g = reg_lock();
    adcl::simmemo::set_enabled(true);
    let points = metrics_probe_points();
    let nfuncs = CollectiveOp::Ibcast
        .fnset(CollSpec::new(8, 128 * 1024))
        .len();
    let pass = |jobs: usize| -> u64 {
        let totals = simcore::par::par_map(jobs, &points, |i, s| {
            s.run(SelectionLogic::Fixed(i % nfuncs)).total.to_bits()
        });
        digest64(&totals)
    };
    let run = |jobs: usize| -> (u64, u64) {
        adcl::simmemo::clear();
        (pass(jobs), pass(jobs)) // prime, then replay from the memo
    };
    let (serial_prime, serial_replay) = run(1);
    assert_eq!(serial_prime, serial_replay, "replay changed outcomes");
    for jobs in [2, 8] {
        let (prime, replay) = run(jobs);
        assert_eq!(prime, serial_prime, "jobs={jobs} prime");
        assert_eq!(replay, serial_prime, "jobs={jobs} replay");
    }
    adcl::simmemo::clear_enabled_override();
}

#[test]
fn concurrent_sweeps_share_caches_without_corruption() {
    // Stress the shared-map + front-cache paths through the full driver:
    // eight OS threads race identical sweeps against a cold schedule cache.
    // Every thread must see the same results as an uncontended reference
    // run — lost inserts or cross-thread corruption would perturb some
    // thread's totals.
    let _g = reg_lock();
    adcl::simmemo::set_enabled(false);
    let points = metrics_probe_points();
    let run_all = || -> Vec<u64> {
        points
            .iter()
            .map(|s| s.run(SelectionLogic::Fixed(0)).total.to_bits())
            .collect()
    };
    let reference = run_all();
    cache::clear();
    let outs: Vec<Vec<u64>> = std::thread::scope(|sc| {
        let handles: Vec<_> = (0..8).map(|_| sc.spawn(run_all)).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, o) in outs.iter().enumerate() {
        assert_eq!(o, &reference, "thread {i} diverged");
    }
    adcl::simmemo::clear_enabled_override();
}

#[test]
fn worker_reuse_flushes_every_sweep_fully() {
    // The worker pool keeps threads (and their cached worlds) alive across
    // sweeps. Thread-local metric state must be flushed completely at every
    // sweep boundary: two identical back-to-back sweeps must each add the
    // same registry delta, with nothing retained or dropped between them.
    let _g = reg_lock();
    adcl::simmemo::set_enabled(false);
    let points = metrics_probe_points();
    let sweep = || {
        let before = registry_probe();
        simcore::par::par_map(4, &points, |i, s| {
            s.run(SelectionLogic::Fixed(i % 3)).total.to_bits()
        });
        probe_delta(&before, &registry_probe())
    };
    let first = sweep();
    let second = sweep();
    assert!(
        first
            .iter()
            .any(|(n, v)| *n == "mpisim.sim_events" && v[0] > 0),
        "probe sweep produced no simulation events: {first:?}"
    );
    assert_eq!(first, second);
    adcl::simmemo::clear_enabled_override();
}
