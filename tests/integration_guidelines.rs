//! Integration tests for the decision-quality observatory
//! (`adcl::guidelines` + the `guidelineFlags` audit-export section).
//!
//! The contracts under test:
//!
//! 1. a guideline sweep is a pure function of its grid — the rendered
//!    `BENCH_guidelines.json` document is byte-identical for any `jobs`
//!    value and across warm-cache reruns;
//! 2. the audit cross-check flags a committed winner that clean
//!    fixed-schedule probes prove dominated, and leaves the true best
//!    implementation unflagged;
//! 3. the combined trace document exports the flags under
//!    `guidelineFlags` when `NBC_GUIDELINES` is active and an empty array
//!    when off.
//!
//! Tests in this binary share process-wide state (audit log, trace
//! switch, guideline mode, sim-memo cache), so each one holds `GUARD`.

use adcl::audit::{self, DecisionAudit};
use adcl::guidelines::{self, Mode, ProbeOp, SweepConfig};
use adcl::simmemo;
use simcore::trace;
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn tiny_grid() -> SweepConfig {
    let mut cfg = SweepConfig::quick();
    // Shrink the verify-gate grid so the debug-profile test stays fast
    // while still exercising ≥ 3 platforms and every guideline kind.
    cfg.mode = "custom";
    cfg.ranks = vec![2, 4];
    cfg.msgs = vec![256, 1024];
    cfg
}

#[test]
fn sweep_is_jobs_invariant_and_rerun_identical() {
    let _g = lock();
    let cfg = tiny_grid();

    simmemo::clear();
    let serial = guidelines::run_sweep(&cfg, 1);
    let serial_json = serial.to_json();

    simmemo::clear();
    let parallel = guidelines::run_sweep(&cfg, 4);
    assert_eq!(
        serial_json,
        parallel.to_json(),
        "guideline sweep must be byte-identical for any jobs value"
    );

    // Warm-cache rerun: every probe replays from the sim-memo cache and
    // the document still comes out byte-identical.
    let replayed = guidelines::run_sweep(&cfg, 4);
    assert_eq!(serial_json, replayed.to_json());
    assert_eq!(
        replayed.probe_replays, replayed.probes,
        "a warm-cache sweep must answer every probe from the memo"
    );

    // The acceptance-criteria shape: ≥ 8 distinct guidelines over ≥ 3
    // platforms, and the document carries the schema tag.
    assert!(serial.distinct_guidelines() >= 8);
    assert!(cfg.platforms.len() >= 3);
    assert!(serial_json.contains("\"schema\": \"adcl-guidelines-v1\""));
    let parsed = simcore::json::parse(&serial_json).expect("report is valid JSON");
    assert!(parsed.get("summary").is_some());
    assert!(parsed.get("rollup").and_then(|v| v.as_arr()).is_some());
    assert!(parsed.get("violations").and_then(|v| v.as_arr()).is_some());
}

/// Fabricate a committed decision for `winner_name` at a real probe
/// config (the label format is the autonbc driver's).
fn decision(winner_name: &str) -> DecisionAudit {
    DecisionAudit {
        label: "whale/ibcast/p8/m65536/g4/BruteForce".into(),
        op: "ibcast".into(),
        strategy: "brute-force",
        filter: "iqr(1.5)".into(),
        decided_at_iter: 5,
        winner: 0,
        winner_name: winner_name.into(),
        margin: 0.02,
        candidates: Vec::new(),
    }
}

#[test]
fn cross_check_flags_dominated_winner_and_clears_best() {
    let _g = lock();
    let plat = netmodel::Platform::whale();
    let times = guidelines::op_probe_times(&plat, ProbeOp::Ibcast, 8, 65536);
    let best = times
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty set")
        .clone();
    let worst = times
        .iter()
        .filter(|(_, t)| t.is_finite())
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty set")
        .clone();
    assert!(
        worst.1 > best.1 * 1.5,
        "broadcast set must spread enough to dominate ({} vs {})",
        worst.1,
        best.1
    );

    // A decision that committed the worst implementation is flagged …
    let flags = guidelines::cross_check_audit(&[decision(&worst.0)], guidelines::FLAG_TOLERANCE, 8);
    assert_eq!(flags.len(), 1, "dominated winner must be flagged");
    let f = &flags[0];
    assert_eq!(f.winner, worst.0);
    assert_eq!(f.best, format!("ibcast/{}", best.0));
    assert!(f.advantage > guidelines::FLAG_TOLERANCE);
    assert_eq!(f.label, "whale/ibcast/p8/m65536/g4/BruteForce");

    // … the true best is not …
    let flags = guidelines::cross_check_audit(&[decision(&best.0)], guidelines::FLAG_TOLERANCE, 8);
    assert!(flags.is_empty(), "the fastest winner must not be flagged");

    // … and records the probe library cannot parse are skipped, not
    // mis-flagged.
    let mut bare = decision(&worst.0);
    bare.label = "ibcast".into();
    let mut unknown = decision(&worst.0);
    unknown.label = "whale/ineighbor/p8/m65536/g4/BruteForce".into();
    let flags = guidelines::cross_check_audit(&[bare, unknown], guidelines::FLAG_TOLERANCE, 8);
    assert!(flags.is_empty());
}

#[test]
fn cross_check_respects_record_cap() {
    let _g = lock();
    let plat = netmodel::Platform::whale();
    let times = guidelines::op_probe_times(&plat, ProbeOp::Ibcast, 8, 65536);
    let worst = times
        .iter()
        .filter(|(_, t)| t.is_finite())
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap()
        .clone();
    let recs = vec![decision(&worst.0), decision(&worst.0)];
    assert_eq!(
        guidelines::cross_check_audit(&recs, guidelines::FLAG_TOLERANCE, 1).len(),
        1,
        "cap must bound the records considered"
    );
    assert_eq!(Mode::Off.cap(), 0);
    assert!(Mode::Quick.cap() >= 2);
}

#[test]
fn combined_export_carries_guideline_flags() {
    let _g = lock();
    let plat = netmodel::Platform::whale();
    let times = guidelines::op_probe_times(&plat, ProbeOp::Ibcast, 8, 65536);
    let worst = times
        .iter()
        .filter(|(_, t)| t.is_finite())
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap()
        .clone();

    trace::set_enabled(true);
    audit::clear();
    audit::record(decision(&worst.0));
    guidelines::set_mode_override(Some(Mode::Full));
    let doc = autonbc::traceout::render_combined();
    guidelines::set_mode_override(Some(Mode::Off));
    let doc_off = autonbc::traceout::render_combined();
    guidelines::set_mode_override(None);
    audit::clear();
    trace::clear_enabled_override();

    let parsed = simcore::json::parse(&doc).expect("combined doc parses");
    let flags = parsed
        .get("guidelineFlags")
        .and_then(|v| v.as_arr())
        .expect("guidelineFlags array present");
    assert_eq!(flags.len(), 1, "the dominated decision must surface");
    let f = &flags[0];
    assert_eq!(
        f.get("winner").and_then(|v| v.as_str()),
        Some(worst.0.as_str())
    );
    assert_eq!(
        f.get("label").and_then(|v| v.as_str()),
        Some("whale/ibcast/p8/m65536/g4/BruteForce")
    );
    assert!(f.get("advantage").and_then(|v| v.as_f64()).unwrap() > 0.1);
    assert!(f.get("best").and_then(|v| v.as_str()).is_some());

    // With the observatory off, the same audit state exports an empty
    // array — the section is always present, never populated.
    let parsed_off = simcore::json::parse(&doc_off).expect("off doc parses");
    assert!(parsed_off
        .get("guidelineFlags")
        .and_then(|v| v.as_arr())
        .unwrap()
        .is_empty());
}
