//! End-to-end tests for the `adcld` tuning daemon: protocol robustness,
//! in-flight query coalescing, and checkpoint/restart durability.

use adcld::service::{Query, Service, ServiceConfig};
use adcld::Server;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

/// One persistent connection: send every line, collect one response per
/// line. The connection must survive the whole exchange.
fn send_lines(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut out = Vec::new();
    for line in lines {
        writer.write_all(line.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
        writer.flush().expect("flush");
        let mut resp = String::new();
        let n = reader.read_line(&mut resp).expect("read");
        assert!(n > 0, "daemon dropped the connection after {line:?}");
        out.push(resp.trim_end().to_string());
    }
    out
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adcld-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn malformed_lines_get_typed_errors_on_a_surviving_connection() {
    let server = Server::spawn(ServiceConfig::default(), "127.0.0.1:0").expect("spawn");
    let responses = send_lines(
        server.addr(),
        &[
            "garbage",
            "[1,2,3]",
            r#"{"op":"ibcast"}"#,
            r#"{"op":"ibcast","platform":"whale","nprocs":"many","msg_bytes":64}"#,
            r#"{"op":"warp","platform":"whale","nprocs":4,"msg_bytes":64}"#,
            r#"{"op":"ialltoall","platform":"whale","nprocs":4,"msg_bytes":1536}"#,
            r#"{"cmd":"ping"}"#,
        ],
    );
    let kinds: Vec<Option<String>> = responses
        .iter()
        .map(|r| {
            let doc = simcore::json::parse(r).expect("every response is valid JSON");
            doc.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(|k| k.as_str().map(str::to_string))
        })
        .collect();
    assert_eq!(kinds[0].as_deref(), Some("parse"));
    assert_eq!(kinds[1].as_deref(), Some("parse"));
    assert_eq!(kinds[2].as_deref(), Some("bad-request"));
    assert_eq!(kinds[3].as_deref(), Some("bad-request"));
    assert_eq!(kinds[4].as_deref(), Some("bad-request"), "unknown op");
    // After all that abuse the same connection still serves real queries.
    let ok = simcore::json::parse(&responses[5]).unwrap();
    assert_eq!(ok.get("status").and_then(|v| v.as_str()), Some("ok"));
    assert!(ok.get("decision").is_some(), "{}", responses[5]);
    let pong = simcore::json::parse(&responses[6]).unwrap();
    assert_eq!(pong.get("pong"), Some(&simcore::json::Json::Bool(true)));
    server.shutdown();
}

#[test]
fn duplicate_concurrent_queries_coalesce_to_one_sweep() {
    let svc = Service::start(ServiceConfig::default()).expect("start");
    let query = Query {
        op: "ialltoall".into(),
        platform: "whale".into(),
        nprocs: 4,
        msg_bytes: 3072,
    };
    const N: usize = 8;
    let barrier = Arc::new(Barrier::new(N));
    let mut handles = Vec::new();
    for _ in 0..N {
        let svc = Arc::clone(&svc);
        let query = query.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            svc.submit(&query)
                .recv()
                .expect("response")
                .expect("served")
        }));
    }
    let served: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Exactly one sweep ran; everyone else coalesced onto it or hit the
    // freshly stored history entry — and all N decisions are identical.
    let stats = svc.stats();
    assert_eq!(
        stats.fresh_sweeps + stats.memo_replays,
        1,
        "duplicate queries must share one sweep: {stats:?}"
    );
    assert_eq!(
        stats.coalesced + stats.history_hits,
        (N - 1) as u64,
        "{stats:?}"
    );
    assert_eq!(stats.requests, N as u64);
    for s in &served[1..] {
        assert_eq!(s.decision, served[0].decision);
    }
    svc.shutdown(false);
}

#[test]
fn concurrent_distinct_cold_queries_share_few_pool_admissions() {
    let svc = Service::start(ServiceConfig::default()).expect("start");
    // Primer (served first, leaving the scheduler idle), then 8 distinct
    // cold keys enqueued atomically with submit_batch: one wakeup must
    // drain them into a single batched admission (at most two total).
    let query = |msg_bytes: usize| Query {
        op: "ialltoall".into(),
        platform: "whale".into(),
        nprocs: 4,
        msg_bytes,
    };
    svc.submit(&query(320))
        .recv()
        .expect("primer response")
        .expect("primer served");
    let sizes = [640usize, 1280, 1792, 2304, 2816, 3328, 3840, 4352];
    let queries: Vec<Query> = sizes.iter().map(|&b| query(b)).collect();
    for rx in svc.submit_batch(&queries) {
        rx.recv().expect("response").expect("served");
    }
    let stats = svc.stats();
    assert!(
        stats.sweep_admissions <= 2,
        "8 distinct cold queries must batch into <= 2 pool admissions: {stats:?}"
    );
    assert_eq!(
        stats.fresh_sweeps + stats.memo_replays,
        1 + sizes.len() as u64,
        "every distinct key still gets its own decision: {stats:?}"
    );
    svc.shutdown(false);
}

#[test]
fn kill_and_restart_resumes_from_checkpoint_with_byte_identical_responses() {
    let dir = tmp_dir("restart");
    let history = dir.join("history.tsv");
    let _ = std::fs::remove_file(&history);
    let cfg = || ServiceConfig {
        history_path: Some(history.clone()),
        checkpoint_every: 1, // checkpoint after every decision
        ..ServiceConfig::default()
    };
    let query = r#"{"id":41,"op":"ialltoall","platform":"whale","nprocs":4,"msg_bytes":2560}"#;

    let server_a = Server::spawn(cfg(), "127.0.0.1:0").expect("spawn A");
    let responses = send_lines(server_a.addr(), &[query, query]);
    let (cold, warm_a) = (&responses[0], &responses[1]);
    let source = |r: &str| {
        simcore::json::parse(r)
            .unwrap()
            .get("source")
            .and_then(|s| s.as_str().map(str::to_string))
    };
    assert_eq!(source(cold).as_deref(), Some("fresh-sweep"), "{cold}");
    assert_eq!(source(warm_a).as_deref(), Some("history-hit"), "{warm_a}");
    // Same decision whether swept or replayed from history.
    let decision = |r: &str| {
        simcore::json::parse(r)
            .unwrap()
            .get("decision")
            .cloned()
            .expect("decision present")
    };
    assert_eq!(decision(cold), decision(warm_a));
    // Simulated kill: no graceful final save — only the periodic
    // checkpoint (checkpoint_every = 1) persisted the decision.
    server_a.abort();
    assert!(history.exists(), "checkpoint file must exist after kill");

    let server_b = Server::spawn(cfg(), "127.0.0.1:0").expect("spawn B");
    assert_eq!(server_b.service().history_len(), 1, "warm start");
    let warm_b = &send_lines(server_b.addr(), &[query])[0];
    assert_eq!(
        warm_b, warm_a,
        "restarted daemon must serve the identical bytes"
    );
    server_b.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_command_stops_the_daemon_and_checkpoints() {
    let dir = tmp_dir("shutdown");
    let history = dir.join("history.tsv");
    let _ = std::fs::remove_file(&history);
    let server = Server::spawn(
        ServiceConfig {
            history_path: Some(history.clone()),
            checkpoint_every: 0, // only the shutdown checkpoint persists
            ..ServiceConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("spawn");
    let responses = send_lines(
        server.addr(),
        &[
            r#"{"op":"ialltoall","platform":"whale","nprocs":4,"msg_bytes":3584}"#,
            r#"{"cmd":"stats"}"#,
            r#"{"cmd":"shutdown"}"#,
        ],
    );
    let stats = simcore::json::parse(&responses[1]).unwrap();
    assert_eq!(
        stats
            .get("stats")
            .and_then(|s| s.get("requests"))
            .and_then(|v| v.as_u64()),
        Some(1)
    );
    let ack = simcore::json::parse(&responses[2]).unwrap();
    assert_eq!(ack.get("shutdown"), Some(&simcore::json::Json::Bool(true)));
    server.wait(); // returns once the remote shutdown completes
    assert!(
        history.exists(),
        "graceful shutdown must write the final checkpoint"
    );
    let store = adcl::history::HistoryStore::load(&history).unwrap();
    assert_eq!(store.len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}
