//! `adcld` — tuning-as-a-service for the ADCL runtime.
//!
//! The paper's runtime selection (§III–IV) and historic learning (§IV-B)
//! are strictly per-process: every application run re-learns or re-loads
//! winners itself. This crate provides the production shape — a
//! long-running daemon that answers *"which implementation for
//! (collective, platform, nprocs, msgsize)?"* for many concurrent clients
//! (ROADMAP open item 2, in the spirit of MPI Advance's reusable
//! optimization layer):
//!
//! * [`protocol`] — the newline-delimited JSON wire format, parsed and
//!   rendered with `simcore::json` (the workspace stays dependency-free).
//! * [`service`] — the scheduler: coalesces duplicate in-flight queries
//!   onto one sweep, consults the persistent [`adcl::history`] store and
//!   the `adcl::simmemo` replay cache before simulating, and runs missing
//!   points on the `simcore::par` worker pool via
//!   `autonbc::driver::MicrobenchSpec`.
//! * [`server`] — TCP (localhost) transport: thread-per-connection framing
//!   over the service, plus graceful / abortive shutdown for tests.
//! * [`loadgen`] — the `adcld_bench` load generator: N concurrent clients,
//!   cold/warm/mixed phases, requests/sec and p50/p99 latency.
//!
//! Every served decision carries a `source` tag — `history-hit`,
//! `memo-replay`, `fresh-sweep` or `guideline-flagged` — so clients (and
//! the `adclServed` trace section) can tell a warm O(1) answer from a
//! fresh measurement, and durability comes from the hardened
//! `HistoryStore` (atomic renames, periodic checkpoints, context-stamped
//! staleness).

pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod service;

pub use protocol::{Decision, Request, RequestError};
pub use server::{Server, ServerHandle};
pub use service::{Query, Served, Service, ServiceConfig, ServiceStats};
