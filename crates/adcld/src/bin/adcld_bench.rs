//! `adcld_bench` — load generator and one-shot client for `adcld`.
//!
//! Bench mode (default): spawn an in-process daemon and drive the
//! cold/warm/mixed scenario, printing requests/sec and p50/p99 latency
//! per phase. Exits non-zero if warm traffic required any fresh
//! simulation — repeat queries must be history/memo hits only.
//!
//! ```text
//! adcld_bench [--quick|--full] [--jobs N] [--clients N]
//! ```
//!
//! Admission-gate mode (used by `scripts/verify.sh`): spawn an
//! in-process service, submit 8 *distinct* cold queries before reading
//! any response, and exit non-zero unless they were admitted to the
//! worker pool in at most 2 batched sweeps (`adcld.sweep_admissions`).
//!
//! ```text
//! adcld_bench --admission-gate [--jobs N]
//! ```
//!
//! Client mode: talk to a running daemon (used by `scripts/verify.sh`).
//!
//! ```text
//! adcld_bench --connect ADDR --query '{"id":1,"op":...}'   # one request
//! adcld_bench --connect ADDR --shutdown                    # stop daemon
//! ```

use adcld::loadgen;
use adcld::protocol;
use adcld::service::{Query, Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::exit;

/// Queue-wait vs sweep-execution split (satellite of the racing PR):
/// `adcld.queue_wait_ms` is admission latency (submit → pool admission),
/// `adcld.sweep_ms` is per-key compute time inside the admission.
fn print_latency_split() {
    for name in ["adcld.queue_wait_ms", "adcld.sweep_ms"] {
        let h = simcore::metrics::histogram(name);
        println!(
            "{name}: count={} mean={:.1}ms max={}ms",
            h.count(),
            h.mean(),
            h.max()
        );
    }
}

/// Concurrent-cold admission gate: 8 distinct cold keys submitted
/// before any response is read must coalesce into at most 2 pool
/// admissions (a primer key absorbs the scheduler-wakeup race; the
/// remaining 8 queue up behind it and drain as one batch).
fn admission_gate(jobs: usize) {
    let svc = match Service::start(ServiceConfig {
        jobs,
        ..ServiceConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("adcld_bench: admission gate: {e}");
            exit(1);
        }
    };
    let query = |msg_bytes: usize| Query {
        op: "ialltoall".into(),
        platform: "whale".into(),
        nprocs: 4,
        msg_bytes,
    };
    // Primer (served to completion first, so the scheduler is idle), then
    // 8 distinct gate keys enqueued atomically via submit_batch: all 8
    // are cold-concurrent and must drain as one pool admission.
    if let Err(e) = svc.submit(&query(256)).recv().expect("primer response") {
        eprintln!("adcld_bench: admission gate primer failed: {}", e.message);
        exit(1);
    }
    let sizes = [512usize, 1024, 2048, 4096, 8192, 16384, 32768, 65536];
    let queries: Vec<Query> = sizes.iter().map(|&b| query(b)).collect();
    for rx in svc.submit_batch(&queries) {
        if let Err(e) = rx.recv().expect("one response per query") {
            eprintln!("adcld_bench: admission gate query failed: {}", e.message);
            exit(1);
        }
    }
    let delta = svc.stats().sweep_admissions;
    svc.shutdown(false);
    print_latency_split();
    // Primer included: one admission for it, at most one for the batch.
    if delta > 2 {
        eprintln!(
            "adcld_bench: FAIL: 8 distinct cold queries took {delta} pool admissions \
             (expected <= 2 including the primer)"
        );
        exit(1);
    }
    println!(
        "adcld_admission: 8 distinct cold queries admitted in {delta} pool admission(s) (<= 2) OK"
    );
}

fn one_shot(addr: &str, line: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut resp = String::new();
    reader.read_line(&mut resp)?;
    Ok(resp.trim_end().to_string())
}

fn main() {
    let mut quick = true;
    let mut jobs = 0usize;
    let mut clients = 4usize;
    let mut connect: Option<String> = None;
    let mut query: Option<String> = None;
    let mut shutdown = false;
    let mut gate = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("adcld_bench: {flag} needs a value");
                exit(2);
            })
        };
        match a.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--jobs" => {
                jobs = value("--jobs").parse().unwrap_or_else(|_| {
                    eprintln!("adcld_bench: --jobs needs an integer");
                    exit(2);
                })
            }
            "--clients" => {
                clients = value("--clients").parse().unwrap_or_else(|_| {
                    eprintln!("adcld_bench: --clients needs an integer");
                    exit(2);
                })
            }
            "--connect" => connect = Some(value("--connect")),
            "--query" => query = Some(value("--query")),
            "--shutdown" => shutdown = true,
            "--admission-gate" => gate = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: adcld_bench [--quick|--full] [--jobs N] [--clients N]\n\
                     \x20      adcld_bench --admission-gate [--jobs N]\n\
                     \x20      adcld_bench --connect ADDR (--query JSON | --shutdown)"
                );
                exit(2);
            }
            other => {
                eprintln!("adcld_bench: unknown argument {other:?}");
                exit(2);
            }
        }
    }

    if let Some(addr) = connect {
        let line = if shutdown {
            protocol::render_command("shutdown")
        } else if let Some(q) = query {
            q
        } else {
            eprintln!("adcld_bench: --connect needs --query or --shutdown");
            exit(2);
        };
        match one_shot(&addr, &line) {
            Ok(resp) => println!("{resp}"),
            Err(e) => {
                eprintln!("adcld_bench: {addr}: {e}");
                exit(1);
            }
        }
        return;
    }

    if gate {
        admission_gate(jobs);
        return;
    }

    let summary = match loadgen::bench_serve(quick, jobs, clients) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("adcld_bench: {e}");
            exit(1);
        }
    };
    println!(
        "{:<7} {:>9} {:>10} {:>10} {:>10} {:>6} {:>6} {:>6} {:>5}",
        "phase", "requests", "req/s", "p50_us", "p99_us", "hist", "memo", "fresh", "err"
    );
    for p in &summary.phases {
        println!(
            "{:<7} {:>9} {:>10.1} {:>10} {:>10} {:>6} {:>6} {:>6} {:>5}",
            p.name,
            p.requests,
            p.rps,
            p.p50_us,
            p.p99_us,
            p.history_hits,
            p.memo_replays,
            p.fresh_sweeps + p.guideline_flagged,
            p.errors
        );
    }
    let warm = summary.phase("warm").expect("warm phase present");
    if warm.errors > 0 || warm.warm_served() != warm.requests {
        eprintln!(
            "adcld_bench: FAIL: warm traffic re-simulated {} of {} requests \
             (expected history/memo hits only)",
            warm.requests - warm.warm_served(),
            warm.requests
        );
        exit(1);
    }
    print_latency_split();
    println!(
        "adcld_serve: warm traffic served from history/memo only ({} requests)",
        warm.requests
    );
}
