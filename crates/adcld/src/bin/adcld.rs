//! `adcld` — the tuning daemon.
//!
//! ```text
//! adcld [--listen ADDR] [--history PATH] [--checkpoint-every N]
//!       [--jobs N] [--guidelines] [--faults SPEC] [--addr-file PATH]
//! ```
//!
//! Listens on localhost (default `127.0.0.1:7411`; use port `0` for an
//! ephemeral port) and serves newline-delimited JSON tuning queries until
//! a client sends `{"cmd":"shutdown"}`. The history file defaults to the
//! `NBC_HISTORY_PATH` environment variable; without either, decisions are
//! kept in memory only. `--addr-file` writes the bound address to a file
//! so scripts can discover an ephemeral port.

use adcld::service::ServiceConfig;
use adcld::Server;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::exit;

struct Args {
    listen: String,
    cfg: ServiceConfig,
    faults: Option<String>,
    addr_file: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: adcld [--listen ADDR] [--history PATH] [--checkpoint-every N] \
         [--jobs N] [--guidelines] [--faults SPEC] [--addr-file PATH]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:7411".into(),
        cfg: ServiceConfig {
            history_path: std::env::var_os("NBC_HISTORY_PATH").map(PathBuf::from),
            ..ServiceConfig::default()
        },
        faults: None,
        addr_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("adcld: {flag} needs a value");
                exit(2);
            })
        };
        match a.as_str() {
            "--listen" => args.listen = value("--listen"),
            "--history" => args.cfg.history_path = Some(PathBuf::from(value("--history"))),
            "--checkpoint-every" => {
                args.cfg.checkpoint_every =
                    value("--checkpoint-every").parse().unwrap_or_else(|_| {
                        eprintln!("adcld: --checkpoint-every needs an integer");
                        exit(2);
                    })
            }
            "--jobs" => {
                args.cfg.jobs = value("--jobs").parse().unwrap_or_else(|_| {
                    eprintln!("adcld: --jobs needs an integer");
                    exit(2);
                })
            }
            "--guidelines" => args.cfg.guidelines = true,
            "--faults" => args.faults = Some(value("--faults")),
            "--addr-file" => args.addr_file = Some(PathBuf::from(value("--addr-file"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("adcld: unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    if let Some(spec) = &args.faults {
        match mpisim::fault::FaultConfig::parse(spec) {
            Ok(cfg) => mpisim::fault::set_override(Some(cfg)),
            Err(e) => {
                eprintln!("adcld: --faults {spec:?}: {e}");
                exit(2);
            }
        }
    }
    let server = match Server::spawn(args.cfg, &args.listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("adcld: cannot start on {}: {e}", args.listen);
            exit(1);
        }
    };
    let svc = server.service();
    if svc.stale_dropped() > 0 {
        eprintln!(
            "adcld: dropped {} stale history entr{} (context changed)",
            svc.stale_dropped(),
            if svc.stale_dropped() == 1 { "y" } else { "ies" }
        );
    }
    if let Some(path) = &args.addr_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", server.addr())) {
            eprintln!("adcld: cannot write {}: {e}", path.display());
            exit(1);
        }
    }
    println!("adcld: listening on {}", server.addr());
    println!(
        "adcld: context {:?}, {} warm decision(s) loaded",
        svc.context(),
        svc.history_len()
    );
    let _ = std::io::stdout().flush();
    server.wait();
    println!("adcld: shut down");
}
