//! The tuning service: query scheduling, coalescing, and durable history.
//!
//! A [`Service`] owns one scheduler thread and one [`HistoryStore`].
//! [`Service::submit`] resolves a query in three tiers:
//!
//! 1. **history-hit** — the persistent store already has a decision for
//!    the key: answered synchronously under the state lock, O(1).
//! 2. **coalesce** — an identical query is already in flight: the caller
//!    is appended to that sweep's waiter list (no second sweep).
//! 3. **sweep** — the key is queued for the scheduler thread. Each
//!    scheduler wakeup drains *every* distinct queued key into one batch
//!    and submits the whole batch to the `simcore::par` worker pool as a
//!    single cost-aware admission (`par_map_costed`), so N concurrent
//!    cold queries cost one pool sweep instead of N serialized ones. A
//!    batch of one bypasses the outer fan-out so a lone cold query keeps
//!    the pool for its own inner sweep. Per key, the default measurement
//!    is a racing-tuned probe (`SelectionLogic::Racing`, overridable via
//!    `NBC_RACING`); with racing off the probe runs every implementation
//!    through `MicrobenchSpec::run_all_fixed_jobs` exactly as before.
//!    `adcl::simmemo` sits under both paths, so a sweep whose points all
//!    replay is tagged `memo-replay`. Queue-wait (admission latency) and
//!    sweep execution are recorded in separate histograms
//!    (`adcld.queue_wait_ms` / `adcld.sweep_ms`).
//!
//! Durability contract: decisions enter the in-memory store immediately
//! and hit disk via atomic checkpoint saves every
//! [`ServiceConfig::checkpoint_every`] updates (and on graceful
//! shutdown). A killed daemon therefore loses at most the last
//! `checkpoint_every - 1` decisions; everything checkpointed is served
//! byte-identically after a restart. The store is stamped with the fault
//! context it was measured under — a daemon started under a different
//! fault profile discards the stale entries instead of serving them.

use crate::protocol::{
    Decision, SOURCE_FRESH_SWEEP, SOURCE_GUIDELINE_FLAGGED, SOURCE_HISTORY_HIT, SOURCE_MEMO_REPLAY,
};
use adcl::history::{HistoryKey, HistoryStore};
use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use mpisim::NoiseConfig;
use netmodel::{Placement, Platform};
use simcore::{metrics, SimTime};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Largest message size a query may ask for (bounds slab allocation).
pub const MAX_MSG_BYTES: usize = 16 * 1024 * 1024;

/// Daemon-side configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads for sweeps (0 = auto-detect, like `--jobs`).
    pub jobs: usize,
    /// History file; `None` = in-memory only (no persistence).
    pub history_path: Option<PathBuf>,
    /// Checkpoint after this many history updates (0 = only on shutdown).
    pub checkpoint_every: u64,
    /// Cross-check fresh winners against guideline probes and tag
    /// dominated ones `guideline-flagged` (costs one probe per cold key).
    pub guidelines: bool,
    /// Test hook: use this context string instead of the process-wide
    /// fault fingerprint when stamping / validating the history store.
    pub context_override: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            jobs: 0,
            history_path: None,
            checkpoint_every: 8,
            guidelines: false,
            context_override: None,
        }
    }
}

/// A tuning query (the coalescing key is the derived [`HistoryKey`] —
/// the daemon's fault context is process-wide, so it is part of every
/// key implicitly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Operation name.
    pub op: String,
    /// Platform preset name.
    pub platform: String,
    /// Number of processes.
    pub nprocs: usize,
    /// Message size in bytes.
    pub msg_bytes: usize,
}

/// A successfully served decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    /// The decision.
    pub decision: Decision,
    /// Where it came from (`history-hit` / `memo-replay` / `fresh-sweep`
    /// / `guideline-flagged`).
    pub source: &'static str,
}

/// A typed serve failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    /// Error class (`bad-request`, `unmeasurable`, `shutting-down`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

/// Outcome delivered to each waiter.
pub type ServeResult = Result<Served, ServeError>;

/// Snapshot of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Tuning queries received (valid or not).
    pub requests: u64,
    /// Queries folded onto an already-in-flight sweep.
    pub coalesced: u64,
    /// Queries answered from the history store.
    pub history_hits: u64,
    /// Sweeps whose every point replayed from the memo.
    pub memo_replays: u64,
    /// Sweeps that freshly simulated at least one point.
    pub fresh_sweeps: u64,
    /// Fresh sweeps whose winner a guideline probe flagged as dominated.
    pub guideline_flagged: u64,
    /// Scheduler batches admitted to the worker pool (one per wakeup
    /// drain — N concurrent cold keys share a single admission).
    pub sweep_admissions: u64,
    /// Queries rejected or failed.
    pub errors: u64,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    coalesced: AtomicU64,
    history_hits: AtomicU64,
    memo_replays: AtomicU64,
    fresh_sweeps: AtomicU64,
    guideline_flagged: AtomicU64,
    sweep_admissions: AtomicU64,
    errors: AtomicU64,
}

struct SchedState {
    history: HistoryStore,
    dirty: u64,
    /// Cold keys awaiting a sweep, with their enqueue instant (feeds the
    /// `adcld.queue_wait_ms` histogram at admission time).
    queue: VecDeque<(HistoryKey, Instant)>,
    in_flight: HashMap<HistoryKey, Vec<mpsc::Sender<ServeResult>>>,
    shutdown: bool,
}

/// The tuning service. Create with [`Service::start`]; always pair with
/// [`Service::shutdown`] (the scheduler thread is joined there).
pub struct Service {
    cfg: ServiceConfig,
    ctx: String,
    stale_dropped: usize,
    /// Racing block size for cold probes; `None` = classic per-candidate
    /// fixed sweeps (`NBC_RACING=off`). Resolved once at startup.
    racing: Option<usize>,
    state: Mutex<SchedState>,
    wake: Condvar,
    counters: Counters,
    sched: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Service {
    /// Load (or create) the history store, stamp it with the current
    /// context, and start the scheduler thread.
    pub fn start(cfg: ServiceConfig) -> io::Result<Arc<Service>> {
        let ctx = cfg
            .context_override
            .clone()
            .unwrap_or_else(|| mpisim::fault::current().describe());
        let mut history = match &cfg.history_path {
            Some(p) => HistoryStore::load(p)?,
            None => HistoryStore::new(),
        };
        // Staleness-aware reuse: entries measured under a different fault
        // context describe different physics — drop them rather than serve
        // wrong answers, and re-stamp the store with the live context.
        let stale_dropped = if !history.is_empty() && history.context() != ctx {
            let n = history.len();
            history.clear();
            n
        } else {
            0
        };
        history
            .set_context(&ctx)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        // The daemon is the racing default's home: its cold path is the
        // bottleneck racing exists for, and the parity gate covers it.
        // `NBC_RACING=off` restores the classic fixed sweeps bit-exactly.
        let racing = match adcl::strategy::racing_env() {
            adcl::strategy::RacingEnv::Off => None,
            adcl::strategy::RacingEnv::On(block) => Some(block),
            adcl::strategy::RacingEnv::Unset => Some(adcl::strategy::DEFAULT_RACING_BLOCK),
        };
        let svc = Arc::new(Service {
            cfg,
            ctx,
            stale_dropped,
            racing,
            state: Mutex::new(SchedState {
                history,
                dirty: 0,
                queue: VecDeque::new(),
                in_flight: HashMap::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            counters: Counters::default(),
            sched: Mutex::new(None),
        });
        let worker = Arc::clone(&svc);
        let handle = std::thread::Builder::new()
            .name("adcld-sched".into())
            .spawn(move || worker.sched_loop())?;
        *svc.sched.lock().unwrap_or_else(|e| e.into_inner()) = Some(handle);
        Ok(svc)
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The context string (fault fingerprint) this service serves under.
    pub fn context(&self) -> &str {
        &self.ctx
    }

    /// Entries discarded at startup because their context was stale.
    pub fn stale_dropped(&self) -> usize {
        self.stale_dropped
    }

    /// Number of decisions currently in the (in-memory) history store.
    pub fn history_len(&self) -> usize {
        self.lock().history.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.counters;
        ServiceStats {
            requests: c.requests.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            history_hits: c.history_hits.load(Ordering::Relaxed),
            memo_replays: c.memo_replays.load(Ordering::Relaxed),
            fresh_sweeps: c.fresh_sweeps.load(Ordering::Relaxed),
            guideline_flagged: c.guideline_flagged.load(Ordering::Relaxed),
            sweep_admissions: c.sweep_admissions.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
        }
    }

    fn validate(&self, q: &Query) -> Result<HistoryKey, ServeError> {
        let bad = |message: String| ServeError {
            kind: "bad-request",
            message,
        };
        if CollectiveOp::by_name(&q.op).is_none() {
            return Err(bad(format!("unknown op {:?}", q.op)));
        }
        let Some(platform) = Platform::by_name(&q.platform) else {
            return Err(bad(format!("unknown platform {:?}", q.platform)));
        };
        let capacity = platform.nodes * platform.cores_per_node;
        if q.nprocs < 2 || q.nprocs > capacity {
            return Err(bad(format!(
                "nprocs {} out of range 2..={} for platform {:?}",
                q.nprocs, capacity, q.platform
            )));
        }
        if q.msg_bytes == 0 || q.msg_bytes > MAX_MSG_BYTES {
            return Err(bad(format!(
                "msg_bytes {} out of range 1..={MAX_MSG_BYTES}",
                q.msg_bytes
            )));
        }
        let key = HistoryKey {
            op: q.op.clone(),
            platform: q.platform.clone(),
            nprocs: q.nprocs,
            msg_bytes: q.msg_bytes,
        };
        key.validate().map_err(|e| bad(e.to_string())).map(|()| key)
    }

    /// Submit a query. The receiver yields exactly one [`ServeResult`]
    /// (immediately for history hits and invalid queries; after the sweep
    /// otherwise).
    pub fn submit(&self, q: &Query) -> mpsc::Receiver<ServeResult> {
        self.submit_batch(std::slice::from_ref(q))
            .pop()
            .expect("one receiver per query")
    }

    /// Submit several queries under one lock acquisition. Every cold key
    /// lands in the scheduler queue atomically, so a single wakeup drains
    /// them into one pool admission — the deterministic N-cold-queries →
    /// one-sweep contract the admission gate checks (per-key [`submit`]
    /// calls batch only as well as thread timing allows).
    ///
    /// [`submit`]: Service::submit
    pub fn submit_batch(&self, qs: &[Query]) -> Vec<mpsc::Receiver<ServeResult>> {
        let mut rxs = Vec::with_capacity(qs.len());
        // History hits audit and respond outside the lock.
        let mut hits: Vec<(HistoryKey, Served, mpsc::Sender<ServeResult>)> = Vec::new();
        let mut queued = false;
        let mut st = self.lock();
        for q in qs {
            let (tx, rx) = mpsc::channel();
            rxs.push(rx);
            self.counters.requests.fetch_add(1, Ordering::Relaxed);
            metrics::counter("adcld.requests").inc();
            let key = match self.validate(q) {
                Ok(key) => key,
                Err(e) => {
                    self.counters.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Err(e));
                    continue;
                }
            };
            if st.shutdown {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(Err(ServeError {
                    kind: "shutting-down",
                    message: "service is shutting down".into(),
                }));
                continue;
            }
            if let Some(e) = st.history.get(&key) {
                self.counters.history_hits.fetch_add(1, Ordering::Relaxed);
                metrics::counter("adcld.history_hits").inc();
                let served = Served {
                    decision: Decision {
                        winner: e.winner.clone(),
                        score: e.score,
                        margin: e.margin,
                    },
                    source: SOURCE_HISTORY_HIT,
                };
                hits.push((key, served, tx));
                continue;
            }
            if let Some(waiters) = st.in_flight.get_mut(&key) {
                waiters.push(tx);
                self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                metrics::counter("adcld.coalesced").inc();
                continue;
            }
            st.in_flight.insert(key.clone(), vec![tx]);
            st.queue.push_back((key, Instant::now()));
            queued = true;
        }
        drop(st);
        for (key, served, tx) in hits {
            self.audit(&key, &served);
            let _ = tx.send(Ok(served));
        }
        if queued {
            self.wake.notify_one();
        }
        rxs
    }

    fn audit(&self, key: &HistoryKey, served: &Served) {
        adcl::audit::record_served(adcl::audit::ServedAudit {
            key: format!(
                "{}|{}|{}|{}",
                key.op, key.platform, key.nprocs, key.msg_bytes
            ),
            op: key.op.clone(),
            winner: served.decision.winner.clone(),
            score: served.decision.score,
            margin: served.decision.margin,
            source: served.source.to_string(),
        });
    }

    fn sched_loop(&self) {
        loop {
            let batch: Vec<(HistoryKey, Instant)> = {
                let mut st = self.lock();
                loop {
                    if !st.queue.is_empty() {
                        break st.queue.drain(..).collect();
                    }
                    if st.shutdown {
                        return;
                    }
                    st = self.wake.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            self.admit_batch(batch);
        }
    }

    /// One cost-aware pool admission for every key drained this wakeup.
    /// A batch of one runs on the scheduler thread directly so the lone
    /// sweep keeps the worker pool for its own inner fan-out; larger
    /// batches go through `par_map_costed` (nested pool submissions
    /// degrade to serial), so N concurrent cold queries cost one pool
    /// sweep instead of N serialized ones.
    fn admit_batch(&self, batch: Vec<(HistoryKey, Instant)>) {
        self.counters
            .sweep_admissions
            .fetch_add(1, Ordering::Relaxed);
        metrics::counter("adcld.sweep_admissions").inc();
        for (_, enqueued) in &batch {
            metrics::histogram("adcld.queue_wait_ms").record(enqueued.elapsed().as_millis() as u64);
        }
        if batch.len() == 1 {
            let (key, _) = batch.into_iter().next().expect("non-empty batch");
            let result = self.timed_compute(&key);
            self.respond(key, result);
            return;
        }
        let est = batch
            .iter()
            .map(|(k, _)| self.probe_spec(k).est_run_nanos().saturating_mul(3))
            .max()
            .unwrap_or(0);
        let results = simcore::par::par_map_costed(self.cfg.jobs, &batch, est, |_, (key, _)| {
            (key.clone(), self.timed_compute(key))
        });
        for (key, result) in results {
            self.respond(key, result);
        }
    }

    fn timed_compute(&self, key: &HistoryKey) -> ServeResult {
        let t0 = Instant::now();
        let result = self.compute(key);
        metrics::histogram("adcld.sweep_ms").record(t0.elapsed().as_millis() as u64);
        result
    }

    /// Deterministic probe scenario for a query key: fixed loop shape, a
    /// noise seed derived from the key, block placement. Identical keys
    /// always map to identical specs (and thus identical memo keys), so
    /// decisions are reproducible across daemon restarts and `--jobs`
    /// settings.
    fn probe_spec(&self, key: &HistoryKey) -> MicrobenchSpec {
        let op = CollectiveOp::by_name(&key.op).expect("validated op");
        let platform = Platform::by_name(&key.platform).expect("validated platform");
        // FNV-1a over the encoded key: a stable, platform-independent seed.
        let label = format!(
            "{}|{}|{}|{}",
            key.op, key.platform, key.nprocs, key.msg_bytes
        );
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        MicrobenchSpec {
            platform,
            nprocs: key.nprocs,
            op,
            msg_bytes: key.msg_bytes,
            iters: 8,
            compute_total: SimTime::from_millis(8),
            num_progress: 4,
            noise: NoiseConfig::light(seed),
            reps: 2,
            placement: Placement::Block,
            imbalance: adcl::microbench::Imbalance::None,
        }
    }

    fn compute(&self, key: &HistoryKey) -> ServeResult {
        let spec = self.probe_spec(key);
        if let Some(block) = self.racing {
            let logic = adcl::strategy::SelectionLogic::Racing(block);
            let (out, replayed) = spec.run_memo_flagged(logic);
            let winner = out.winner.clone().ok_or_else(|| ServeError {
                kind: "unmeasurable",
                message: format!("no implementation of {:?} completed", key.op),
            })?;
            let mut source = if replayed {
                SOURCE_MEMO_REPLAY
            } else {
                SOURCE_FRESH_SWEEP
            };
            if self.cfg.guidelines && self.winner_dominated(key, &winner) {
                source = SOURCE_GUIDELINE_FLAGGED;
            }
            return Ok(Served {
                decision: Decision {
                    winner,
                    score: out.total,
                    margin: out.margin,
                },
                source,
            });
        }
        let (rows, replayed) = spec.run_all_fixed_jobs_flagged(self.cfg.jobs);
        let (best_name, best) = rows
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .cloned()
            .ok_or_else(|| ServeError {
                kind: "unmeasurable",
                message: "empty function set".into(),
            })?;
        if !best.is_finite() {
            return Err(ServeError {
                kind: "unmeasurable",
                message: format!("no implementation of {:?} completed", key.op),
            });
        }
        let second = rows
            .iter()
            .filter(|(n, _)| *n != best_name)
            .map(|(_, t)| *t)
            .fold(f64::INFINITY, f64::min);
        let margin = if second.is_finite() && best > 0.0 {
            (second - best) / best
        } else {
            0.0
        };
        let mut source = if replayed == rows.len() {
            SOURCE_MEMO_REPLAY
        } else {
            SOURCE_FRESH_SWEEP
        };
        if self.cfg.guidelines && self.winner_dominated(key, &best_name) {
            source = SOURCE_GUIDELINE_FLAGGED;
        }
        Ok(Served {
            decision: Decision {
                winner: best_name,
                score: best,
                margin,
            },
            source,
        })
    }

    /// Guideline cross-check (PR 8 observatory): probe every candidate
    /// with clean fixed schedules and report whether the sweep's winner is
    /// dominated by more than `FLAG_TOLERANCE`. Probes are memoized, so
    /// the cost is one probe sweep per cold key.
    fn winner_dominated(&self, key: &HistoryKey, winner: &str) -> bool {
        use adcl::guidelines;
        let Some(pop) = guidelines::ProbeOp::from_op_name(&key.op) else {
            return false;
        };
        let Some(platform) = Platform::by_name(&key.platform) else {
            return false;
        };
        let times = guidelines::op_probe_times(&platform, pop, key.nprocs, key.msg_bytes);
        let Some(&(_, winner_t)) = times.iter().find(|(n, _)| n == winner) else {
            return false;
        };
        let best = times.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min);
        best.is_finite() && winner_t > best * (1.0 + guidelines::FLAG_TOLERANCE)
    }

    fn respond(&self, key: HistoryKey, result: ServeResult) {
        match &result {
            Ok(served) => {
                let counter = match served.source {
                    SOURCE_MEMO_REPLAY => &self.counters.memo_replays,
                    SOURCE_GUIDELINE_FLAGGED => {
                        self.counters.fresh_sweeps.fetch_add(1, Ordering::Relaxed);
                        &self.counters.guideline_flagged
                    }
                    _ => &self.counters.fresh_sweeps,
                };
                counter.fetch_add(1, Ordering::Relaxed);
                self.audit(&key, served);
            }
            Err(_) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        let waiters = {
            let mut st = self.lock();
            if let Ok(served) = &result {
                let d = &served.decision;
                let _ = st
                    .history
                    .put_decision(key.clone(), &d.winner, d.score, d.margin);
                st.dirty += 1;
                if self.cfg.checkpoint_every > 0 && st.dirty >= self.cfg.checkpoint_every {
                    self.save_locked(&mut st);
                }
            }
            st.in_flight.remove(&key).unwrap_or_default()
        };
        for w in waiters {
            let _ = w.send(result.clone());
        }
    }

    fn save_locked(&self, st: &mut SchedState) {
        let Some(path) = &self.cfg.history_path else {
            st.dirty = 0;
            return;
        };
        match st.history.save(path) {
            Ok(()) => st.dirty = 0,
            Err(e) => eprintln!("adcld: checkpoint to {} failed: {e}", path.display()),
        }
    }

    /// Force a checkpoint now. Returns whether a file was written.
    pub fn checkpoint(&self) -> bool {
        let mut st = self.lock();
        if self.cfg.history_path.is_none() {
            return false;
        }
        self.save_locked(&mut st);
        st.dirty == 0
    }

    /// Stop accepting queries, drain the in-flight queue, join the
    /// scheduler, and (when `save` is set) write a final checkpoint.
    /// Idempotent.
    pub fn shutdown(&self, save: bool) {
        {
            let mut st = self.lock();
            st.shutdown = true;
        }
        self.wake.notify_all();
        let handle = self.sched.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        let mut st = self.lock();
        // Fail any waiter the scheduler did not get to.
        let leftovers: Vec<_> = st.in_flight.drain().collect();
        for (_, waiters) in leftovers {
            for w in waiters {
                let _ = w.send(Err(ServeError {
                    kind: "shutting-down",
                    message: "service is shutting down".into(),
                }));
            }
        }
        if save && self.cfg.history_path.is_some() {
            self.save_locked(&mut st);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(msg: usize) -> Query {
        Query {
            op: "ialltoall".into(),
            platform: "whale".into(),
            nprocs: 4,
            msg_bytes: msg,
        }
    }

    #[test]
    fn invalid_queries_fail_typed() {
        let svc = Service::start(ServiceConfig::default()).unwrap();
        for bad in [
            Query {
                op: "nope".into(),
                ..q(1024)
            },
            Query {
                platform: "atlantis".into(),
                ..q(1024)
            },
            Query {
                nprocs: 1,
                ..q(1024)
            },
            Query {
                nprocs: 1_000_000,
                ..q(1024)
            },
            q(0),
            q(MAX_MSG_BYTES + 1),
        ] {
            let r = svc.submit(&bad).recv().unwrap();
            assert_eq!(r.unwrap_err().kind, "bad-request", "query {bad:?}");
        }
        assert_eq!(svc.stats().errors, 6);
        svc.shutdown(false);
    }

    #[test]
    fn second_query_is_a_history_hit_with_identical_decision() {
        let svc = Service::start(ServiceConfig::default()).unwrap();
        let first = svc.submit(&q(2048)).recv().unwrap().unwrap();
        assert!(matches!(
            first.source,
            SOURCE_FRESH_SWEEP | SOURCE_MEMO_REPLAY
        ));
        let second = svc.submit(&q(2048)).recv().unwrap().unwrap();
        assert_eq!(second.source, SOURCE_HISTORY_HIT);
        assert_eq!(second.decision, first.decision);
        assert_eq!(svc.stats().history_hits, 1);
        svc.shutdown(false);
    }

    #[test]
    fn stale_context_discards_entries() {
        let dir = std::env::temp_dir().join(format!("adcld-stale-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.tsv");
        let mut store = HistoryStore::new();
        store.set_context("old-context").unwrap();
        store
            .put(
                HistoryKey {
                    op: "ialltoall".into(),
                    platform: "whale".into(),
                    nprocs: 4,
                    msg_bytes: 2048,
                },
                "stale-winner",
                1.0,
            )
            .unwrap();
        store.save(&path).unwrap();
        let svc = Service::start(ServiceConfig {
            history_path: Some(path.clone()),
            context_override: Some("new-context".into()),
            ..ServiceConfig::default()
        })
        .unwrap();
        assert_eq!(svc.stale_dropped(), 1);
        assert_eq!(svc.history_len(), 0);
        // The stale winner must not be served: this is a sweep, not a hit.
        let r = svc.submit(&q(2048)).recv().unwrap().unwrap();
        assert_ne!(r.source, SOURCE_HISTORY_HIT);
        assert_ne!(r.decision.winner, "stale-winner");
        svc.shutdown(true);
        // The re-stamped file now carries the new context.
        let back = HistoryStore::load(&path).unwrap();
        assert_eq!(back.context(), "new-context");
        std::fs::remove_dir_all(&dir).ok();
    }
}
