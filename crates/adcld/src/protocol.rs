//! The `adcld` wire format: one JSON object per line, both directions.
//!
//! Requests are either tuning queries
//!
//! ```text
//! {"id":1,"op":"ialltoall","platform":"whale","nprocs":8,"msg_bytes":4096}
//! ```
//!
//! or control commands (`{"cmd":"ping"}`, `stats`, `checkpoint`,
//! `shutdown`). Responses echo the request `id` verbatim and are rendered
//! through [`simcore::json::Json::render`], which is deterministic (object
//! keys sort, `f64`s use shortest-round-trip formatting), so the *same
//! decision always serializes to the same bytes* — the property the
//! restart-identity gate in `scripts/verify.sh` checks.
//!
//! Malformed input never kills a connection: every parse or validation
//! failure maps to a typed error response
//!
//! ```text
//! {"error":{"kind":"parse","message":"..."},"id":null,"status":"error"}
//! ```
//!
//! with `kind` ∈ {`parse`, `bad-request`, `unmeasurable`, `internal`,
//! `shutting-down`}.

use simcore::json::{self, Json};

/// `source` tag: answered from the persistent history store.
pub const SOURCE_HISTORY_HIT: &str = "history-hit";
/// `source` tag: sweep ran but every point replayed from `adcl::simmemo`.
pub const SOURCE_MEMO_REPLAY: &str = "memo-replay";
/// `source` tag: at least one point was freshly simulated.
pub const SOURCE_FRESH_SWEEP: &str = "fresh-sweep";
/// `source` tag: fresh sweep whose winner a guideline probe found
/// dominated by more than `adcl::guidelines::FLAG_TOLERANCE`.
pub const SOURCE_GUIDELINE_FLAGGED: &str = "guideline-flagged";

/// A served tuning decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Winning implementation name.
    pub winner: String,
    /// The winner's total time in seconds.
    pub score: f64,
    /// Relative gap to the runner-up, `(second - best) / best`
    /// (`0.0` for single-candidate sets or unmeasured runner-ups).
    pub margin: f64,
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A tuning query.
    Tune {
        /// Client correlation id, echoed verbatim (Null if absent).
        id: Json,
        /// Operation name (`autonbc::driver::CollectiveOp::name`).
        op: String,
        /// Platform preset name.
        platform: String,
        /// Number of processes.
        nprocs: usize,
        /// Message size in bytes.
        msg_bytes: usize,
        /// Optional fault-profile spec the client assumes; must match the
        /// daemon's active profile.
        faults: Option<String>,
    },
    /// A control command.
    Command {
        /// Client correlation id, echoed verbatim.
        id: Json,
        /// The command.
        cmd: Command,
    },
}

/// Control commands a client can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Liveness check.
    Ping,
    /// Service counters snapshot.
    Stats,
    /// Force a history checkpoint now.
    Checkpoint,
    /// Graceful daemon shutdown (checkpoints first).
    Shutdown,
}

/// A typed request failure (becomes an `"status":"error"` response).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// Echoed correlation id (Null when the line did not even parse).
    pub id: Json,
    /// Error class: `"parse"` or `"bad-request"`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    fn parse(message: impl Into<String>) -> RequestError {
        RequestError {
            id: Json::Null,
            kind: "parse",
            message: message.into(),
        }
    }

    fn bad(id: Json, message: impl Into<String>) -> RequestError {
        RequestError {
            id,
            kind: "bad-request",
            message: message.into(),
        }
    }
}

fn usize_field(obj: &Json, id: &Json, key: &str) -> Result<usize, RequestError> {
    let v = obj
        .get(key)
        .ok_or_else(|| RequestError::bad(id.clone(), format!("missing field {key:?}")))?;
    let n = v
        .as_f64()
        .ok_or_else(|| RequestError::bad(id.clone(), format!("field {key:?} must be a number")))?;
    if !(n.is_finite() && n >= 1.0 && n.fract() == 0.0 && n <= (1u64 << 53) as f64) {
        return Err(RequestError::bad(
            id.clone(),
            format!("field {key:?} must be a positive integer"),
        ));
    }
    Ok(n as usize)
}

fn str_field(obj: &Json, id: &Json, key: &str) -> Result<String, RequestError> {
    obj.get(key)
        .ok_or_else(|| RequestError::bad(id.clone(), format!("missing field {key:?}")))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| RequestError::bad(id.clone(), format!("field {key:?} must be a string")))
}

/// Parse one request line. Never panics: anything that is not a valid
/// request comes back as a typed [`RequestError`].
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let doc = json::parse(line).map_err(|e| RequestError::parse(e.to_string()))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(RequestError::parse("request must be a JSON object"));
    }
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    if let Some(cmd) = doc.get("cmd") {
        let Some(name) = cmd.as_str() else {
            return Err(RequestError::bad(id, "field \"cmd\" must be a string"));
        };
        let cmd = match name {
            "ping" => Command::Ping,
            "stats" => Command::Stats,
            "checkpoint" => Command::Checkpoint,
            "shutdown" => Command::Shutdown,
            other => {
                return Err(RequestError::bad(id, format!("unknown command {other:?}")));
            }
        };
        return Ok(Request::Command { id, cmd });
    }
    let op = str_field(&doc, &id, "op")?;
    let platform = str_field(&doc, &id, "platform")?;
    let nprocs = usize_field(&doc, &id, "nprocs")?;
    let msg_bytes = usize_field(&doc, &id, "msg_bytes")?;
    let faults =
        match doc.get("faults") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_str().map(str::to_string).ok_or_else(|| {
                RequestError::bad(id.clone(), "field \"faults\" must be a string")
            })?),
        };
    Ok(Request::Tune {
        id,
        op,
        platform,
        nprocs,
        msg_bytes,
        faults,
    })
}

/// Render a successful tuning response.
pub fn render_ok(id: &Json, decision: &Decision, source: &str) -> String {
    Json::obj([
        (
            "decision",
            Json::obj([
                ("margin", Json::num(decision.margin)),
                ("score", Json::num(decision.score)),
                ("winner", Json::str(decision.winner.clone())),
            ]),
        ),
        ("id", id.clone()),
        ("source", Json::str(source)),
        ("status", Json::str("ok")),
    ])
    .render()
}

/// Render a typed error response.
pub fn render_error(id: &Json, kind: &str, message: &str) -> String {
    Json::obj([
        (
            "error",
            Json::obj([("kind", Json::str(kind)), ("message", Json::str(message))]),
        ),
        ("id", id.clone()),
        ("status", Json::str("error")),
    ])
    .render()
}

/// Render a command acknowledgement carrying extra fields.
pub fn render_ack(id: &Json, extra: impl IntoIterator<Item = (&'static str, Json)>) -> String {
    let mut pairs: Vec<(&'static str, Json)> =
        vec![("id", id.clone()), ("status", Json::str("ok"))];
    pairs.extend(extra);
    Json::obj(pairs).render()
}

/// Render a tuning query line (client side).
pub fn render_query(id: u64, op: &str, platform: &str, nprocs: usize, msg_bytes: usize) -> String {
    Json::obj([
        ("id", Json::num(id as f64)),
        ("msg_bytes", Json::num(msg_bytes as f64)),
        ("nprocs", Json::num(nprocs as f64)),
        ("op", Json::str(op)),
        ("platform", Json::str(platform)),
    ])
    .render()
}

/// Render a command line (client side).
pub fn render_command(cmd: &str) -> String {
    Json::obj([("cmd", Json::str(cmd))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_tune_request() {
        let r = parse_request(
            r#"{"id":7,"op":"ialltoall","platform":"whale","nprocs":8,"msg_bytes":4096}"#,
        )
        .unwrap();
        match r {
            Request::Tune {
                id,
                op,
                platform,
                nprocs,
                msg_bytes,
                faults,
            } => {
                assert_eq!(id, Json::Num(7.0));
                assert_eq!(op, "ialltoall");
                assert_eq!(platform, "whale");
                assert_eq!(nprocs, 8);
                assert_eq!(msg_bytes, 4096);
                assert_eq!(faults, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_commands() {
        for (name, want) in [
            ("ping", Command::Ping),
            ("stats", Command::Stats),
            ("checkpoint", Command::Checkpoint),
            ("shutdown", Command::Shutdown),
        ] {
            let r = parse_request(&format!("{{\"cmd\":\"{name}\"}}")).unwrap();
            assert_eq!(
                r,
                Request::Command {
                    id: Json::Null,
                    cmd: want
                }
            );
        }
    }

    #[test]
    fn malformed_lines_become_typed_errors() {
        // Invalid JSON → parse.
        for line in ["", "not json", "{", "[1,2", "\"just a string"] {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.kind, "parse", "line {line:?}");
        }
        // Valid JSON, wrong shape → parse (non-objects) or bad-request.
        assert_eq!(parse_request("42").unwrap_err().kind, "parse");
        assert_eq!(parse_request("[1,2]").unwrap_err().kind, "parse");
        for line in [
            r#"{"op":"ibcast"}"#,
            r#"{"op":"ibcast","platform":"whale","nprocs":"eight","msg_bytes":64}"#,
            r#"{"op":"ibcast","platform":"whale","nprocs":0,"msg_bytes":64}"#,
            r#"{"op":"ibcast","platform":"whale","nprocs":1.5,"msg_bytes":64}"#,
            r#"{"op":"ibcast","platform":"whale","nprocs":-4,"msg_bytes":64}"#,
            r#"{"cmd":"reboot"}"#,
            r#"{"cmd":3}"#,
        ] {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.kind, "bad-request", "line {line:?}");
        }
        // The id is echoed when the envelope was readable.
        let e = parse_request(r#"{"id":"x9","op":"ibcast"}"#).unwrap_err();
        assert_eq!(e.id, Json::Str("x9".into()));
    }

    #[test]
    fn responses_are_deterministic_and_parse_back() {
        let d = Decision {
            winner: "pairwise".into(),
            score: 2.5e-4 * std::f64::consts::PI,
            margin: 0.125,
        };
        let id = Json::Num(3.0);
        let a = render_ok(&id, &d, SOURCE_FRESH_SWEEP);
        let b = render_ok(&id, &d, SOURCE_FRESH_SWEEP);
        assert_eq!(a, b, "rendering must be deterministic");
        let doc = json::parse(&a).unwrap();
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ok"));
        let dec = doc.get("decision").unwrap();
        assert_eq!(
            dec.get("score").and_then(|v| v.as_f64()).map(f64::to_bits),
            Some(d.score.to_bits()),
            "score must round-trip bit-exactly"
        );
        let e = render_error(&Json::Null, "parse", "nope");
        let doc = json::parse(&e).unwrap();
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("error"));
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(|v| v.as_str()),
            Some("parse")
        );
    }

    #[test]
    fn query_lines_round_trip() {
        let line = render_query(9, "ibcast", "crill", 16, 65536);
        match parse_request(&line).unwrap() {
            Request::Tune {
                op,
                platform,
                nprocs,
                msg_bytes,
                ..
            } => {
                assert_eq!((op.as_str(), platform.as_str()), ("ibcast", "crill"));
                assert_eq!((nprocs, msg_bytes), (16, 65536));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
