//! Load generator for `adcld`: N concurrent closed-loop clients over real
//! TCP, measuring requests/sec and p50/p99 latency per traffic phase.
//!
//! The standard scenario drives three phases against one daemon:
//!
//! * **cold** — every key is new; each query pays for a full sweep.
//! * **warm** — the same keys again, many times, from several clients:
//!   every answer must come from the history store (or at worst the memo
//!   replay cache) — the acceptance bar for the tuning service.
//! * **mixed** — 50/50 interleave of new and repeat keys.
//!
//! Results land in `BENCH_engine.json` as the `adcld_serve` section
//! (schema `engine-v7`), written by `perf_trajectory`.

use crate::protocol;
use crate::server::Server;
use crate::service::ServiceConfig;
use simcore::json::Json;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Measured outcome of one traffic phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name (`cold` / `warm` / `mixed`).
    pub name: &'static str,
    /// Client threads used.
    pub clients: usize,
    /// Requests issued.
    pub requests: usize,
    /// Wall-clock seconds for the whole phase.
    pub wall_secs: f64,
    /// Requests per second.
    pub rps: f64,
    /// Median request latency in microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: u64,
    /// Responses tagged `history-hit`.
    pub history_hits: usize,
    /// Responses tagged `memo-replay`.
    pub memo_replays: usize,
    /// Responses tagged `fresh-sweep`.
    pub fresh_sweeps: usize,
    /// Responses tagged `guideline-flagged`.
    pub guideline_flagged: usize,
    /// Error responses.
    pub errors: usize,
}

impl PhaseReport {
    /// Responses that required no fresh simulation.
    pub fn warm_served(&self) -> usize {
        self.history_hits + self.memo_replays
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("clients", Json::num(self.clients as f64)),
            ("errors", Json::num(self.errors as f64)),
            ("fresh_sweeps", Json::num(self.fresh_sweeps as f64)),
            (
                "guideline_flagged",
                Json::num(self.guideline_flagged as f64),
            ),
            ("history_hits", Json::num(self.history_hits as f64)),
            ("memo_replays", Json::num(self.memo_replays as f64)),
            ("p50_us", Json::num(self.p50_us as f64)),
            ("p99_us", Json::num(self.p99_us as f64)),
            ("requests", Json::num(self.requests as f64)),
            ("rps", Json::num(self.rps)),
            ("wall_secs", Json::num(self.wall_secs)),
        ])
    }
}

/// All phases of one load run.
#[derive(Debug, Clone)]
pub struct LoadSummary {
    /// Per-phase reports, in execution order.
    pub phases: Vec<PhaseReport>,
}

impl LoadSummary {
    /// Find a phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseReport> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Render the `adcld_serve` JSON section (an object keyed by phase).
    pub fn render_section(&self) -> String {
        Json::Obj(
            self.phases
                .iter()
                .map(|p| (p.name.to_string(), p.to_json()))
                .collect(),
        )
        .render()
    }
}

fn percentile(sorted_us: &[u64], pct: u64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as u64 * pct / 100) as usize;
    sorted_us[idx]
}

/// Run one phase: split `lines` round-robin over `clients` persistent
/// connections, issue them closed-loop, and aggregate latencies and
/// `source` tags.
pub fn run_phase(
    addr: SocketAddr,
    name: &'static str,
    clients: usize,
    lines: &[String],
) -> io::Result<PhaseReport> {
    let clients = clients.clamp(1, lines.len().max(1));
    let mut shards: Vec<Vec<String>> = vec![Vec::new(); clients];
    for (i, line) in lines.iter().enumerate() {
        shards[i % clients].push(line.clone());
    }
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for shard in shards {
        handles.push(std::thread::spawn(
            move || -> io::Result<Vec<(u64, String)>> {
                let stream = TcpStream::connect(addr)?;
                let mut reader = BufReader::new(stream.try_clone()?);
                let mut writer = BufWriter::new(stream);
                let mut out = Vec::with_capacity(shard.len());
                let mut resp = String::new();
                for line in &shard {
                    let sent = Instant::now();
                    writer.write_all(line.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                    resp.clear();
                    if reader.read_line(&mut resp)? == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "daemon closed the connection",
                        ));
                    }
                    let us = sent.elapsed().as_micros() as u64;
                    let source = simcore::json::parse(resp.trim())
                        .ok()
                        .and_then(|d| d.get("source").and_then(|s| s.as_str().map(str::to_string)))
                        .unwrap_or_else(|| "error".to_string());
                    out.push((us, source));
                }
                Ok(out)
            },
        ));
    }
    let mut latencies = Vec::new();
    let mut report = PhaseReport {
        name,
        clients,
        requests: 0,
        wall_secs: 0.0,
        rps: 0.0,
        p50_us: 0,
        p99_us: 0,
        history_hits: 0,
        memo_replays: 0,
        fresh_sweeps: 0,
        guideline_flagged: 0,
        errors: 0,
    };
    for h in handles {
        let rows = h
            .join()
            .map_err(|_| io::Error::other("load client thread panicked"))??;
        for (us, source) in rows {
            latencies.push(us);
            report.requests += 1;
            match source.as_str() {
                protocol::SOURCE_HISTORY_HIT => report.history_hits += 1,
                protocol::SOURCE_MEMO_REPLAY => report.memo_replays += 1,
                protocol::SOURCE_FRESH_SWEEP => report.fresh_sweeps += 1,
                protocol::SOURCE_GUIDELINE_FLAGGED => report.guideline_flagged += 1,
                _ => report.errors += 1,
            }
        }
    }
    report.wall_secs = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    report.p50_us = percentile(&latencies, 50);
    report.p99_us = percentile(&latencies, 99);
    report.rps = if report.wall_secs > 0.0 {
        report.requests as f64 / report.wall_secs
    } else {
        0.0
    };
    Ok(report)
}

fn keys(quick: bool) -> Vec<(usize, usize)> {
    let nprocs: &[usize] = if quick { &[4, 8] } else { &[4, 8, 16] };
    let msgs: &[usize] = if quick {
        &[1024, 4096, 16384, 65536]
    } else {
        &[1024, 4096, 16384, 65536, 262144, 1048576]
    };
    let mut out = Vec::new();
    for &np in nprocs {
        for &m in msgs {
            out.push((np, m));
        }
    }
    out
}

fn query_lines(keys: &[(usize, usize)], repeat: usize, id0: u64) -> Vec<String> {
    let mut lines = Vec::new();
    let mut id = id0;
    for _ in 0..repeat {
        for &(np, m) in keys {
            lines.push(protocol::render_query(id, "ialltoall", "whale", np, m));
            id += 1;
        }
    }
    lines
}

/// Drive the standard cold/warm/mixed scenario against a running daemon.
pub fn standard_load(addr: SocketAddr, quick: bool, clients: usize) -> io::Result<LoadSummary> {
    let base = keys(quick);
    let warm_reps = if quick { 8 } else { 24 };
    // Cold: every key once (each pays for a sweep).
    let cold = run_phase(addr, "cold", clients, &query_lines(&base, 1, 1_000))?;
    // Warm: the same keys, repeated from every client — pure lookups.
    let warm = run_phase(
        addr,
        "warm",
        clients,
        &query_lines(&base, warm_reps, 10_000),
    )?;
    // Mixed: interleave repeat keys with a disjoint set of new keys.
    let fresh: Vec<(usize, usize)> = base.iter().map(|&(np, m)| (np, m * 3)).collect();
    let mut mixed_lines = Vec::new();
    for (i, (old, new)) in query_lines(&base, 1, 20_000)
        .into_iter()
        .zip(query_lines(&fresh, 1, 30_000))
        .enumerate()
    {
        if i % 2 == 0 {
            mixed_lines.push(old);
            mixed_lines.push(new);
        } else {
            mixed_lines.push(new);
            mixed_lines.push(old);
        }
    }
    let mixed = run_phase(addr, "mixed", clients, &mixed_lines)?;
    Ok(LoadSummary {
        phases: vec![cold, warm, mixed],
    })
}

/// Spawn an in-process daemon on an ephemeral port with a throwaway
/// history file, run [`standard_load`], and shut it down. Returns the
/// summary; the daemon's history file is removed afterwards.
pub fn bench_serve(quick: bool, jobs: usize, clients: usize) -> io::Result<LoadSummary> {
    let dir = std::env::temp_dir().join(format!("adcld-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let history = dir.join("bench_history.tsv");
    let _ = std::fs::remove_file(&history);
    let server = Server::spawn(
        ServiceConfig {
            jobs,
            history_path: Some(history.clone()),
            checkpoint_every: 16,
            ..ServiceConfig::default()
        },
        "127.0.0.1:0",
    )?;
    let addr = server.addr();
    let result = standard_load(addr, quick, clients);
    server.shutdown();
    let _ = std::fs::remove_file(&history);
    let _ = std::fs::remove_dir(&dir);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_sorted_ranks() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 99), 7);
    }

    #[test]
    fn section_renders_valid_json() {
        let summary = LoadSummary {
            phases: vec![PhaseReport {
                name: "cold",
                clients: 2,
                requests: 8,
                wall_secs: 0.25,
                rps: 32.0,
                p50_us: 1500,
                p99_us: 9000,
                history_hits: 0,
                memo_replays: 0,
                fresh_sweeps: 8,
                guideline_flagged: 0,
                errors: 0,
            }],
        };
        let doc = simcore::json::parse(&summary.render_section()).unwrap();
        let cold = doc.get("cold").expect("cold phase");
        assert_eq!(cold.get("requests").and_then(|v| v.as_u64()), Some(8));
        assert_eq!(cold.get("rps").and_then(|v| v.as_f64()), Some(32.0));
    }
}
