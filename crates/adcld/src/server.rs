//! TCP transport for the tuning service.
//!
//! One accept loop, one thread per connection, newline-delimited JSON in
//! both directions (see [`crate::protocol`]). A connection survives any
//! number of malformed lines — each maps to a typed error response — and
//! only closes when the client disconnects or the daemon stops.
//!
//! Shutdown has two flavours: [`Server::shutdown`] (graceful: drains the
//! sweep queue, writes a final history checkpoint) and [`Server::abort`]
//! (test hook simulating a kill: stops without the final save, leaving
//! only what periodic checkpointing already wrote). A client can request
//! the graceful path remotely with `{"cmd":"shutdown"}`.

use crate::protocol::{self, Command, Request};
use crate::service::{Query, Served, Service, ServiceConfig};
use simcore::json::Json;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

struct Shared {
    service: Arc<Service>,
    addr: SocketAddr,
    stop: AtomicBool,
    save_on_exit: AtomicBool,
}

impl Shared {
    /// First caller wins; stops the service (joining the scheduler) and
    /// unblocks the accept loop.
    fn initiate_shutdown(self: &Arc<Shared>) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.service
            .shutdown(self.save_on_exit.load(Ordering::SeqCst));
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running daemon: bound listener + accept thread + service.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

/// Cheap handle for observing a [`Server`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The underlying service (stats, history length, ...).
    pub fn service(&self) -> &Arc<Service> {
        &self.shared.service
    }
}

impl Server {
    /// Start the service and listen on `listen` (e.g. `"127.0.0.1:0"`
    /// for an ephemeral port).
    pub fn spawn(cfg: ServiceConfig, listen: &str) -> io::Result<Server> {
        let service = Service::start(cfg)?;
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            addr,
            stop: AtomicBool::new(false),
            save_on_exit: AtomicBool::new(true),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("adcld-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_shared = Arc::clone(&accept_shared);
                    let _ =
                        std::thread::Builder::new()
                            .name("adcld-conn".into())
                            .spawn(move || {
                                let _ = serve_connection(&conn_shared, stream);
                            });
                }
            })?;
        Ok(Server {
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The underlying service.
    pub fn service(&self) -> &Arc<Service> {
        &self.shared.service
    }

    /// A cloneable observer handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    fn stop_inner(&mut self, save: bool) {
        self.shared.save_on_exit.store(save, Ordering::SeqCst);
        self.shared.initiate_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Graceful stop: drain, final checkpoint, join.
    pub fn shutdown(mut self) {
        self.stop_inner(true);
    }

    /// Abortive stop (simulated kill): no final checkpoint — only what
    /// periodic checkpointing already persisted survives.
    pub fn abort(mut self) {
        self.stop_inner(false);
    }

    /// Block until the daemon stops (e.g. a client sent
    /// `{"cmd":"shutdown"}`).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_inner(true);
        }
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (reply, shutdown) = handle_line(shared, line);
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            shared.initiate_shutdown();
            break;
        }
    }
    Ok(())
}

/// Map one request line to one response line (and whether the daemon
/// should stop afterwards). Never panics.
fn handle_line(shared: &Arc<Shared>, line: &str) -> (String, bool) {
    let svc = &shared.service;
    match protocol::parse_request(line) {
        Err(e) => (protocol::render_error(&e.id, e.kind, &e.message), false),
        Ok(Request::Command { id, cmd }) => match cmd {
            Command::Ping => (
                protocol::render_ack(&id, [("pong", Json::Bool(true))]),
                false,
            ),
            Command::Stats => {
                let s = svc.stats();
                let stats = Json::obj([
                    ("coalesced", Json::num(s.coalesced as f64)),
                    ("context", Json::str(svc.context())),
                    ("errors", Json::num(s.errors as f64)),
                    ("fresh_sweeps", Json::num(s.fresh_sweeps as f64)),
                    ("guideline_flagged", Json::num(s.guideline_flagged as f64)),
                    ("history_hits", Json::num(s.history_hits as f64)),
                    ("history_len", Json::num(svc.history_len() as f64)),
                    ("memo_replays", Json::num(s.memo_replays as f64)),
                    ("requests", Json::num(s.requests as f64)),
                    ("sweep_admissions", Json::num(s.sweep_admissions as f64)),
                ]);
                (protocol::render_ack(&id, [("stats", stats)]), false)
            }
            Command::Checkpoint => {
                let written = svc.checkpoint();
                (
                    protocol::render_ack(&id, [("checkpointed", Json::Bool(written))]),
                    false,
                )
            }
            Command::Shutdown => (
                protocol::render_ack(&id, [("shutdown", Json::Bool(true))]),
                true,
            ),
        },
        Ok(Request::Tune {
            id,
            op,
            platform,
            nprocs,
            msg_bytes,
            faults,
        }) => {
            if let Some(spec) = faults {
                let theirs = match mpisim::fault::FaultConfig::parse(&spec) {
                    Ok(cfg) => cfg.describe(),
                    Err(e) => {
                        return (
                            protocol::render_error(
                                &id,
                                "bad-request",
                                &format!("bad faults spec: {e}"),
                            ),
                            false,
                        );
                    }
                };
                if theirs != svc.context() {
                    return (
                        protocol::render_error(
                            &id,
                            "bad-request",
                            &format!(
                                "fault context mismatch: daemon serves {:?}, request assumes {:?}",
                                svc.context(),
                                theirs
                            ),
                        ),
                        false,
                    );
                }
            }
            let rx = svc.submit(&Query {
                op,
                platform,
                nprocs,
                msg_bytes,
            });
            match rx.recv() {
                Ok(Ok(Served { decision, source })) => {
                    (protocol::render_ok(&id, &decision, source), false)
                }
                Ok(Err(e)) => (protocol::render_error(&id, e.kind, &e.message), false),
                Err(_) => (
                    protocol::render_error(&id, "internal", "scheduler unavailable"),
                    false,
                ),
            }
        }
    }
}
