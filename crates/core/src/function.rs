//! Functions and function-sets.
//!
//! In ADCL terminology a communication operation supported by the library
//! is a *function-set*, and a particular implementation of the operation is
//! a *function*. This module defines both and provides the default
//! function-sets used in the paper:
//!
//! * [`FunctionSet::ibcast_default`] — 7 fan-out values × 3 segment sizes
//!   = 21 implementations of the non-blocking broadcast,
//! * [`FunctionSet::ialltoall_default`] — linear, pairwise and
//!   dissemination implementations of the non-blocking all-to-all,
//! * [`FunctionSet::ialltoall_extended`] — the modified function-set of
//!   §IV-B that additionally contains *blocking* all-to-all variants
//!   (realized by not using the wait pointer: the operation completes
//!   inside `start`), letting the selection logic decide at run time
//!   whether overlapping pays off at all,
//! * [`FunctionSet::iallgather_default`] / [`FunctionSet::ireduce_default`]
//!   — the further operations ADCL converted from Open MPI to LibNBC
//!   schedules.

use crate::attr::AttributeSet;
use mpisim::RankId;
use nbc::allgather::AllgatherAlgo;
use nbc::allreduce::AllreduceAlgo;
use nbc::alltoall::AlltoallAlgo;
use nbc::bcast::BcastAlgo;
use nbc::cache;
use nbc::gather::GatherAlgo;
use nbc::neighbor::{Cart2d, NeighborAlgo};
use nbc::reduce::ReduceAlgo;
use nbc::schedule::{CollSpec, Schedule};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Attribute value encoding the binomial ("N") fan-out.
pub const FANOUT_BINOMIAL: i64 = 99;

/// Builds the per-rank schedule of one implementation. Returns a shared
/// `Arc<Schedule>`: the default function-sets route through the global
/// schedule cache ([`nbc::cache`]), so repeated builds of the same shape
/// (every iteration of every rank of every simulated run) are pointer
/// copies of one interned schedule.
pub type ScheduleBuilder = Rc<dyn Fn(RankId, &CollSpec) -> Arc<Schedule>>;

/// One implementation of a collective operation.
#[derive(Clone)]
pub struct Function {
    /// Human-readable name (e.g. `"fanout2-seg64k"`, `"pairwise"`).
    pub name: String,
    /// Attribute values, aligned with the function-set's attribute names.
    pub attrs: Vec<i64>,
    /// If true, the function is executed *blocking*: it completes inside
    /// `start` and the wait is a no-op (the "wait function pointer is
    /// NULL" trick of §III-C).
    pub blocking: bool,
    /// Schedule builder.
    pub builder: ScheduleBuilder,
}

impl fmt::Debug for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Function")
            .field("name", &self.name)
            .field("attrs", &self.attrs)
            .field("blocking", &self.blocking)
            .finish_non_exhaustive()
    }
}

/// A collective operation together with its pool of implementations.
#[derive(Debug, Clone)]
pub struct FunctionSet {
    /// Operation name (e.g. `"ialltoall"`).
    pub name: String,
    /// Attribute names, defining the meaning of `Function::attrs` entries.
    pub attr_names: Vec<String>,
    /// The implementations.
    pub functions: Vec<Function>,
    /// The operation instance parameters.
    pub spec: CollSpec,
}

impl FunctionSet {
    /// Derive the attribute-set (domains) from the contained functions.
    pub fn attribute_set(&self) -> AttributeSet {
        let names: Vec<&str> = self.attr_names.iter().map(|s| s.as_str()).collect();
        let vecs: Vec<Vec<i64>> = self.functions.iter().map(|f| f.attrs.clone()).collect();
        AttributeSet::from_functions(&names, &vecs)
    }

    /// Number of implementations.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True if the set has no implementations.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Index of the function called `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// The paper's default `Ibcast` function-set: fan-out ∈ {linear, chain,
    /// 2, 3, 4, 5, binomial} × segment size ∈ {32, 64, 128} KiB.
    pub fn ibcast_default(spec: CollSpec) -> FunctionSet {
        let mut functions = Vec::new();
        for algo in BcastAlgo::all() {
            for seg_kib in [32usize, 64, 128] {
                let seg = seg_kib * 1024;
                let fanout = match algo {
                    BcastAlgo::Binomial => FANOUT_BINOMIAL,
                    other => other.fanout_attr(),
                };
                functions.push(Function {
                    name: format!("{}-seg{}k", algo.name(), seg_kib),
                    attrs: vec![fanout, seg as i64],
                    blocking: false,
                    builder: Rc::new(move |rank, spec| cache::cached_bcast(algo, seg, rank, spec)),
                });
            }
        }
        FunctionSet {
            name: "ibcast".into(),
            attr_names: vec!["fanout".into(), "segsize".into()],
            functions,
            spec,
        }
    }

    /// The paper's default `Ialltoall` function-set: linear, dissemination
    /// (Bruck) and pairwise exchange.
    pub fn ialltoall_default(spec: CollSpec) -> FunctionSet {
        let functions = AlltoallAlgo::all()
            .into_iter()
            .enumerate()
            .map(|(i, algo)| Function {
                name: algo.name().to_string(),
                attrs: vec![i as i64],
                blocking: false,
                builder: Rc::new(move |rank, spec| cache::cached_alltoall(algo, rank, spec)),
            })
            .collect();
        FunctionSet {
            name: "ialltoall".into(),
            attr_names: vec!["algorithm".into()],
            functions,
            spec,
        }
    }

    /// The §IV-B *extended* `Ialltoall` function-set: the three non-blocking
    /// implementations plus their blocking counterparts, so the selection
    /// logic also decides blocking vs non-blocking at run time.
    pub fn ialltoall_extended(spec: CollSpec) -> FunctionSet {
        let mut set = Self::ialltoall_default(spec);
        set.name = "ialltoall-ext".into();
        set.attr_names.push("blocking".into());
        for f in &mut set.functions {
            f.attrs.push(0);
        }
        let blocking: Vec<Function> = AlltoallAlgo::all()
            .into_iter()
            .enumerate()
            .map(|(i, algo)| Function {
                name: format!("{}-blocking", algo.name()),
                attrs: vec![i as i64, 1],
                blocking: true,
                builder: Rc::new(move |rank, spec| cache::cached_alltoall(algo, rank, spec)),
            })
            .collect();
        set.functions.extend(blocking);
        set
    }

    /// `Iallgather` function-set: linear, ring and Bruck.
    pub fn iallgather_default(spec: CollSpec) -> FunctionSet {
        let functions = AllgatherAlgo::all()
            .into_iter()
            .enumerate()
            .map(|(i, algo)| Function {
                name: algo.name().to_string(),
                attrs: vec![i as i64],
                blocking: false,
                builder: Rc::new(move |rank, spec| cache::cached_allgather(algo, rank, spec)),
            })
            .collect();
        FunctionSet {
            name: "iallgather".into(),
            attr_names: vec!["algorithm".into()],
            functions,
            spec,
        }
    }

    /// `Ireduce` function-set: binomial, chain and linear trees.
    pub fn ireduce_default(spec: CollSpec) -> FunctionSet {
        let functions = ReduceAlgo::all()
            .into_iter()
            .enumerate()
            .map(|(i, algo)| Function {
                name: algo.name().to_string(),
                attrs: vec![i as i64],
                blocking: false,
                builder: Rc::new(move |rank, spec| cache::cached_reduce(algo, rank, spec)),
            })
            .collect();
        FunctionSet {
            name: "ireduce".into(),
            attr_names: vec!["algorithm".into()],
            functions,
            spec,
        }
    }

    /// `Iallreduce` function-set: recursive doubling, ring
    /// (reduce-scatter + all-gather), and reduce + broadcast.
    pub fn iallreduce_default(spec: CollSpec) -> FunctionSet {
        let functions = AllreduceAlgo::all()
            .into_iter()
            .enumerate()
            .map(|(i, algo)| Function {
                name: algo.name().to_string(),
                attrs: vec![i as i64],
                blocking: false,
                builder: Rc::new(move |rank, spec| cache::cached_allreduce(algo, rank, spec)),
            })
            .collect();
        FunctionSet {
            name: "iallreduce".into(),
            attr_names: vec!["algorithm".into()],
            functions,
            spec,
        }
    }

    /// `Igather` function-set: linear and binomial trees.
    pub fn igather_default(spec: CollSpec) -> FunctionSet {
        let functions = GatherAlgo::all()
            .into_iter()
            .enumerate()
            .map(|(i, algo)| Function {
                name: algo.name().to_string(),
                attrs: vec![i as i64],
                blocking: false,
                builder: Rc::new(move |rank, spec| cache::cached_gather(algo, rank, spec)),
            })
            .collect();
        FunctionSet {
            name: "igather".into(),
            attr_names: vec!["algorithm".into()],
            functions,
            spec,
        }
    }

    /// `Iscatter` function-set: linear and binomial trees.
    pub fn iscatter_default(spec: CollSpec) -> FunctionSet {
        let functions = GatherAlgo::all()
            .into_iter()
            .enumerate()
            .map(|(i, algo)| Function {
                name: algo.name().to_string(),
                attrs: vec![i as i64],
                blocking: false,
                builder: Rc::new(move |rank, spec| cache::cached_scatter(algo, rank, spec)),
            })
            .collect();
        FunctionSet {
            name: "iscatter".into(),
            attr_names: vec!["algorithm".into()],
            functions,
            spec,
        }
    }

    /// Cartesian neighborhood-exchange function-set (ADCL's original core
    /// use case): halo exchange on a periodic `gx × gy` process grid with
    /// post-all, per-dimension and fully ordered schedules.
    ///
    /// `spec.msg_bytes` is the halo size per neighbour; `spec.nprocs` must
    /// equal `gx * gy`.
    pub fn ineighbor_default(spec: CollSpec, gx: usize, gy: usize) -> FunctionSet {
        assert_eq!(spec.nprocs, gx * gy, "grid must cover all ranks");
        let grid = Cart2d { gx, gy };
        let functions = NeighborAlgo::all()
            .into_iter()
            .enumerate()
            .map(|(i, algo)| Function {
                name: algo.name().to_string(),
                attrs: vec![i as i64],
                blocking: false,
                builder: Rc::new(move |rank, spec| {
                    cache::cached_neighbor(algo, grid, rank, spec.msg_bytes)
                }),
            })
            .collect();
        FunctionSet {
            name: "ineighbor".into(),
            attr_names: vec!["schedule".into()],
            functions,
            spec,
        }
    }

    /// A single-function set (used to pin a baseline implementation, e.g.
    /// "LibNBC default = linear alltoall" in §IV-B).
    pub fn pinned(mut self, function_name: &str) -> FunctionSet {
        let idx = self
            .index_of(function_name)
            .unwrap_or_else(|| panic!("no function named {function_name} in {}", self.name));
        let f = self.functions.swap_remove(idx);
        self.functions = vec![f];
        self
    }

    /// The set with implementation `idx` removed, preserving the order of
    /// the survivors (the tuner's round-robin assignment depends on index
    /// order). Used to demote a candidate whose microbenchmark timed out.
    pub fn without(mut self, idx: usize) -> FunctionSet {
        assert!(idx < self.functions.len(), "demotion index out of range");
        self.functions.remove(idx);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CollSpec {
        CollSpec::new(8, 4096)
    }

    #[test]
    fn ibcast_has_21_functions() {
        let set = FunctionSet::ibcast_default(spec());
        assert_eq!(set.len(), 21);
        let attrs = set.attribute_set();
        assert_eq!(attrs.attrs[0].values.len(), 7); // fan-outs
        assert_eq!(attrs.attrs[1].values, vec![32768, 65536, 131072]);
    }

    #[test]
    fn without_preserves_order() {
        let set = FunctionSet::ialltoall_default(spec());
        let names: Vec<String> = set.functions.iter().map(|f| f.name.clone()).collect();
        let idx = 1;
        let reduced = set.without(idx);
        assert_eq!(reduced.len(), names.len() - 1);
        let survivors: Vec<String> = reduced.functions.iter().map(|f| f.name.clone()).collect();
        let mut expect = names.clone();
        expect.remove(idx);
        assert_eq!(survivors, expect, "demotion must not reorder survivors");
    }

    #[test]
    fn ialltoall_has_three() {
        let set = FunctionSet::ialltoall_default(spec());
        assert_eq!(set.len(), 3);
        assert!(set.index_of("linear").is_some());
        assert!(set.index_of("pairwise").is_some());
        assert!(set.index_of("dissemination").is_some());
        assert!(set.functions.iter().all(|f| !f.blocking));
    }

    #[test]
    fn extended_set_adds_blocking_variants() {
        let set = FunctionSet::ialltoall_extended(spec());
        assert_eq!(set.len(), 6);
        assert_eq!(set.functions.iter().filter(|f| f.blocking).count(), 3);
        let attrs = set.attribute_set();
        assert_eq!(attrs.attrs[1].name, "blocking");
        assert_eq!(attrs.attrs[1].values, vec![0, 1]);
    }

    #[test]
    fn builders_produce_schedules() {
        let set = FunctionSet::ialltoall_default(spec());
        for f in &set.functions {
            let sched = (f.builder)(0, &set.spec);
            assert!(sched.num_rounds() > 0, "{}", f.name);
            sched.validate(0, None).unwrap();
        }
    }

    #[test]
    fn pinned_keeps_one() {
        let set = FunctionSet::ialltoall_default(spec()).pinned("linear");
        assert_eq!(set.len(), 1);
        assert_eq!(set.functions[0].name, "linear");
    }

    #[test]
    #[should_panic(expected = "no function named")]
    fn pinned_unknown_panics() {
        FunctionSet::ialltoall_default(spec()).pinned("quantum");
    }

    #[test]
    fn other_sets_construct() {
        assert_eq!(FunctionSet::iallgather_default(spec()).len(), 3);
        assert_eq!(FunctionSet::ireduce_default(spec()).len(), 3);
        assert_eq!(FunctionSet::iallreduce_default(spec()).len(), 3);
        assert_eq!(FunctionSet::igather_default(spec()).len(), 2);
        assert_eq!(FunctionSet::iscatter_default(spec()).len(), 2);
        let neigh = FunctionSet::ineighbor_default(CollSpec::new(8, 512), 4, 2);
        assert_eq!(neigh.len(), 3);
        for f in &neigh.functions {
            let sched = (f.builder)(3, &neigh.spec);
            sched.validate(3, None).unwrap();
            assert!(sched.num_sends() >= 2, "{}", f.name);
        }
    }

    #[test]
    #[should_panic(expected = "grid must cover")]
    fn neighbor_grid_mismatch_rejected() {
        FunctionSet::ineighbor_default(CollSpec::new(8, 512), 3, 2);
    }
}
