//! The per-operation tuning state machine.
//!
//! A [`Tuner`] owns the selection strategy and the measurement record of
//! one function-set. Iterations are assigned to functions *lazily*: the
//! first rank to begin iteration `i` forces the (memoized) decision, so all
//! ranks of a loosely synchronized application agree on the implementation
//! used in every iteration even though they cross iteration boundaries at
//! slightly different times — the same mechanism the real library uses at
//! its synchronization points.

use crate::audit::{self, CandidateAudit, DecisionAudit};
use crate::filter::FilterKind;
use crate::function::FunctionSet;
use crate::strategy::{SelectionLogic, Strategy};

/// Tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct TunerConfig {
    /// Selection logic to use.
    pub logic: SelectionLogic,
    /// Measurements taken per tested implementation during learning.
    pub reps: usize,
    /// Measurements discarded after every implementation switch: the first
    /// iterations of a newly selected implementation are polluted by rank
    /// skew inherited from the previous one, so they are treated as
    /// warm-up. Must be < `reps`; clamped otherwise.
    pub warmup: usize,
    /// Outlier filter applied before comparing implementations.
    pub filter: FilterKind,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            logic: SelectionLogic::BruteForce,
            reps: 10,
            warmup: 1,
            filter: FilterKind::default(),
        }
    }
}

/// Runtime tuning state for one operation.
///
/// # Example
///
/// ```
/// use adcl::function::FunctionSet;
/// use adcl::strategy::SelectionLogic;
/// use adcl::tuner::{Tuner, TunerConfig};
/// use nbc::schedule::CollSpec;
///
/// let fnset = FunctionSet::ialltoall_default(CollSpec::new(8, 1024));
/// let mut tuner = Tuner::new(&fnset, TunerConfig {
///     logic: SelectionLogic::BruteForce,
///     reps: 2,
///     warmup: 0,
///     filter: Default::default(),
/// });
/// // Drive the learning loop: ask which implementation to use, run it,
/// // record the measured time.
/// for iter in 0..10 {
///     let f = tuner.function_for_iter(iter);
///     let measured_secs = [0.010, 0.005, 0.020][f]; // pretend measurement
///     tuner.record(iter, measured_secs);
/// }
/// assert_eq!(tuner.winner(), Some(1)); // pairwise was fastest
/// ```
pub struct Tuner {
    strategy: Box<dyn Strategy>,
    cfg: TunerConfig,
    /// Function index assigned to each iteration (memoized).
    assignments: Vec<usize>,
    /// Measurements per function, in seconds.
    samples: Vec<Vec<f64>>,
    /// Iteration at which the strategy committed, if it has.
    converged_at: Option<usize>,
    /// Warm-up samples still to discard, per function.
    discards_left: Vec<usize>,
    n_funcs: usize,
    /// Operation name (from the function set), for audit records.
    op: String,
    /// Per-function implementation names, for audit records.
    func_names: Vec<String>,
    /// Context label set by the driver via [`Tuner::set_label`].
    label: String,
}

impl Tuner {
    /// Create a tuner for `fnset` under `cfg`.
    pub fn new(fnset: &FunctionSet, cfg: TunerConfig) -> Tuner {
        let attr_vecs: Vec<Vec<i64>> = fnset.functions.iter().map(|f| f.attrs.clone()).collect();
        let attrs = fnset.attribute_set();
        let warmup = cfg.warmup.min(cfg.reps.saturating_sub(1));
        let min_samples = (cfg.reps - warmup).max(1);
        let func_names: Vec<String> = fnset.functions.iter().map(|f| f.name.clone()).collect();
        let strategy = cfg.logic.build(
            fnset.len(),
            &attr_vecs,
            &attrs,
            &func_names,
            cfg.reps,
            min_samples,
            cfg.filter,
        );
        Tuner {
            strategy,
            cfg,
            assignments: Vec::new(),
            samples: vec![Vec::new(); fnset.len()],
            converged_at: None,
            discards_left: vec![warmup; fnset.len()],
            n_funcs: fnset.len(),
            op: fnset.name.clone(),
            func_names,
            label: String::new(),
        }
    }

    /// Create a tuner that skips the learning phase entirely because a
    /// winner is already known (historic learning, §IV-B).
    pub fn with_known_winner(fnset: &FunctionSet, winner: usize) -> Tuner {
        let cfg = TunerConfig {
            logic: SelectionLogic::Fixed(winner),
            ..TunerConfig::default()
        };
        let mut t = Tuner::new(fnset, cfg);
        t.converged_at = Some(0);
        t
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TunerConfig {
        &self.cfg
    }

    /// Set the audit-log context label for this tuner (e.g. platform, op
    /// shape and strategy of the surrounding experiment). Recorded verbatim
    /// in every [`DecisionAudit`] this tuner emits.
    pub fn set_label(&mut self, label: &str) {
        self.label = label.to_owned();
    }

    /// Function to use for iteration `iter` (memoized; forces assignments
    /// for any earlier unassigned iterations).
    pub fn function_for_iter(&mut self, iter: usize) -> usize {
        while self.assignments.len() <= iter {
            let f = self.strategy.next_assignment(&self.samples);
            if self.converged_at.is_none() {
                if let Some(w) = self.strategy.winner() {
                    self.converged_at = Some(self.assignments.len());
                    if let Some(elim) = self.strategy.eliminations() {
                        let n = elim.iter().filter(|e| e.is_some()).count();
                        simcore::metrics::counter("adcl.sweep.eliminated_candidates").add(n as u64);
                    }
                    self.emit_audit(w, self.assignments.len());
                }
            }
            self.assignments.push(f);
        }
        self.assignments[iter]
    }

    /// Record the decision just committed by the strategy. Gated on
    /// tracing being enabled (one branch when off). Historic-learning
    /// tuners never reach this: [`Tuner::with_known_winner`] pre-sets
    /// `converged_at`, so the commit path above is skipped.
    fn emit_audit(&self, winner: usize, decided_at_iter: usize) {
        if !simcore::trace::enabled() {
            return;
        }
        let scores: Vec<f64> = (0..self.n_funcs)
            .map(|f| self.cfg.filter.score(&self.samples[f]))
            .collect();
        let eliminations = self.strategy.eliminations();
        let candidates: Vec<CandidateAudit> = (0..self.n_funcs)
            .map(|f| CandidateAudit {
                func: f,
                name: self
                    .func_names
                    .get(f)
                    .cloned()
                    .unwrap_or_else(|| format!("f{f}")),
                samples: self.samples[f].len(),
                kept: self.cfg.filter.survivors(&self.samples[f]),
                score: scores[f],
                eliminated_at_block: eliminations.and_then(|e| e[f]),
            })
            .collect();
        let margin = self.margin_for(winner);
        audit::record(DecisionAudit {
            label: self.label.clone(),
            op: self.op.clone(),
            strategy: self.strategy.name(),
            filter: self.cfg.filter.describe(),
            decided_at_iter,
            winner,
            winner_name: self
                .func_names
                .get(winner)
                .cloned()
                .unwrap_or_else(|| format!("f{winner}")),
            margin,
            candidates,
        });
    }

    /// Winner margin relative to the best credible alternative: for
    /// surviving candidates that is their filtered score; for candidates a
    /// racing strategy eliminated early it is their filtered *lower bound*
    /// (the full score would be an artifact of a deliberately truncated
    /// sample set — the bound is what the elimination proof actually
    /// established). With no eliminations this reduces to the classic
    /// winner-vs-runner-up margin. `0.0` when no finite reference exists.
    fn margin_for(&self, winner: usize) -> f64 {
        let winner_score = self.cfg.filter.score(&self.samples[winner]);
        let eliminations = self.strategy.eliminations();
        let reference = (0..self.n_funcs)
            .filter(|&f| f != winner)
            .map(|f| match eliminations.and_then(|e| e[f]) {
                Some(_) => self.cfg.filter.lower_bound(&self.samples[f]),
                None => self.cfg.filter.score(&self.samples[f]),
            })
            .filter(|s| s.is_finite())
            .fold(f64::INFINITY, f64::min);
        if winner_score.is_finite() && winner_score > 0.0 && reference.is_finite() {
            (reference - winner_score) / winner_score
        } else {
            0.0
        }
    }

    /// The committed winner's margin (see the audit-log field of the same
    /// name); `0.0` before convergence.
    pub fn decision_margin(&self) -> f64 {
        self.winner().map(|w| self.margin_for(w)).unwrap_or(0.0)
    }

    /// Per-function racing elimination record (`None` for strategies
    /// without elimination).
    pub fn eliminations(&self) -> Option<&[Option<usize>]> {
        self.strategy.eliminations()
    }

    /// Function for iteration `iter` while this operation is *frozen*
    /// under a co-tuning timer: the current best estimate is used without
    /// consuming a learning-phase assignment, so the strategy resumes
    /// exactly where it left off once the operation becomes active again.
    pub fn frozen_for_iter(&mut self, iter: usize) -> usize {
        if iter < self.assignments.len() {
            return self.assignments[iter];
        }
        let f = self.best_so_far();
        while self.assignments.len() <= iter {
            self.assignments.push(f);
        }
        f
    }

    /// Record the measured execution time (seconds) of iteration `iter`.
    /// The first `warmup` measurements of each function are discarded (see
    /// [`TunerConfig::warmup`]).
    pub fn record(&mut self, iter: usize, secs: f64) {
        let f = self.function_for_iter(iter);
        if self.discards_left[f] > 0 {
            self.discards_left[f] -= 1;
            return;
        }
        self.samples[f].push(secs);
    }

    /// The committed winner, if learning has finished.
    pub fn winner(&self) -> Option<usize> {
        self.strategy.winner()
    }

    /// Iteration index at which learning finished.
    pub fn converged_at(&self) -> Option<usize> {
        self.converged_at
    }

    /// Best current estimate even before convergence.
    pub fn best_so_far(&self) -> usize {
        self.strategy.best_so_far(&self.samples)
    }

    /// Robust score (filtered mean, seconds) of function `f`, or infinity
    /// if unmeasured.
    pub fn score(&self, f: usize) -> f64 {
        self.cfg.filter.score(&self.samples[f])
    }

    /// Raw samples of function `f`.
    pub fn samples(&self, f: usize) -> &[f64] {
        &self.samples[f]
    }

    /// Number of functions under tuning.
    pub fn n_funcs(&self) -> usize {
        self.n_funcs
    }

    /// Name of the active strategy.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Functions assigned so far, per iteration.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbc::schedule::CollSpec;

    fn fnset() -> FunctionSet {
        FunctionSet::ialltoall_default(CollSpec::new(8, 1024))
    }

    fn cfg(reps: usize) -> TunerConfig {
        TunerConfig {
            logic: SelectionLogic::BruteForce,
            reps,
            warmup: 0,
            filter: FilterKind::default(),
        }
    }

    #[test]
    fn assignments_are_memoized_and_stable() {
        let mut t = Tuner::new(&fnset(), cfg(2));
        let a = t.function_for_iter(5);
        let b = t.function_for_iter(5);
        assert_eq!(a, b);
        // Asking for iteration 5 forced 0..=5.
        assert_eq!(t.assignments().len(), 6);
    }

    #[test]
    fn brute_force_cycle_then_commit() {
        let mut t = Tuner::new(&fnset(), cfg(2));
        // 3 functions x 2 reps: iterations 0..6 cycle 0,0,1,1,2,2.
        let seq: Vec<usize> = (0..6).map(|i| t.function_for_iter(i)).collect();
        assert_eq!(seq, vec![0, 0, 1, 1, 2, 2]);
        // Make function 1 fastest.
        for i in 0..6 {
            let f = t.function_for_iter(i);
            t.record(i, if f == 1 { 1.0 } else { 2.0 });
        }
        assert_eq!(t.function_for_iter(6), 1);
        assert_eq!(t.winner(), Some(1));
        assert_eq!(t.converged_at(), Some(6));
    }

    #[test]
    fn racing_ranks_get_consistent_choice() {
        // Rank A asks for iteration 6 before all of iteration 5's
        // measurements are in: the decision is forced once and reused.
        let mut t = Tuner::new(&fnset(), cfg(2));
        for i in 0..5 {
            let f = t.function_for_iter(i);
            t.record(i, (f + 1) as f64);
        }
        let early = t.function_for_iter(6); // forced with partial data
        t.record(5, 3.0);
        let late = t.function_for_iter(6);
        assert_eq!(early, late);
    }

    #[test]
    fn known_winner_skips_learning() {
        let t0 = Tuner::with_known_winner(&fnset(), 2);
        assert_eq!(t0.winner(), Some(2));
        assert_eq!(t0.converged_at(), Some(0));
        let mut t = t0;
        assert_eq!(t.function_for_iter(0), 2);
        assert_eq!(t.function_for_iter(100), 2);
    }

    #[test]
    fn scores_reflect_samples() {
        let mut t = Tuner::new(&fnset(), cfg(1));
        t.record(0, 5.0); // function 0
        assert_eq!(t.score(0), 5.0);
        assert_eq!(t.score(1), f64::INFINITY);
        assert_eq!(t.best_so_far(), 0);
    }
}
