//! Deterministic simulation-result memoization.
//!
//! Every simulation in this workspace is a pure function of its
//! configuration: `SimTime` is integer nanoseconds, noise is driven by
//! seeds derived from the spec, and rank scheduling is fixed by the
//! deterministic event queue. Running the same (platform, collective,
//! algorithm, nranks, msglen, segsize, seed) twice therefore produces the
//! same outcome bit for bit — so the second run can be *replayed* from a
//! cache instead of re-simulated.
//!
//! [`get_or_run`] is the single entry point: callers build a fingerprint
//! string covering every input that can influence the outcome (see
//! `autonbc::driver::memo_key`) and pass a closure that runs the
//! simulation on a miss. Results are stored as `Arc<dyn Any>` so one
//! process-wide cache serves any outcome type; a downcast mismatch is
//! treated as a miss and overwritten.
//!
//! Soundness caveats (see DESIGN.md "Simulator memory model"): memoization
//! must be bypassed for runs that mutate global state as a side effect, or
//! whose inputs are not fully captured by the fingerprint — e.g.
//! fault-injection experiments or externally perturbed runs. Callers opt
//! out per-run by not routing through [`get_or_run`], or globally via
//! [`set_enabled`] / `NBC_MEMO=off`.
//!
//! Warm-cache replays are contention-free: each thread keeps a bounded
//! thread-local front cache of fingerprint → outcome clones, validated
//! against a global epoch ([`clear`] — and the rare cross-type overwrite —
//! bumps it), so steady-state replay touches no shared state beyond one
//! atomic epoch load. Front misses fall through to the backing map,
//! sharded 64 ways behind `RwLock`s (same shape as `nbc::cache`): a
//! shared read lock on a shard picked by an FNV-1a/SplitMix64 hash of the
//! fingerprint. The closure runs *outside* any lock, and a lost insert
//! race just adopts the winner's value. The sharded map remains the sole
//! source of truth — front caches are filled only from it, so inserts are
//! never lost to a thread-local copy. Front-cache hit tallies flush to
//! the registry at sweep barriers (`simcore::par::register_sweep_flush`)
//! and on [`stats`].

use simcore::metrics::{self, Counter};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

const NSHARDS: usize = 64;

type Shard = RwLock<HashMap<String, Arc<dyn Any + Send + Sync>>>;

/// Read-lock a shard, tolerating poison (entries are immutable once
/// inserted, so a panicking worker cannot leave a shard inconsistent).
fn read_shard(
    s: &Shard,
) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<dyn Any + Send + Sync>>> {
    s.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-lock a shard (insert path only), with the same poison recovery.
fn write_shard(
    s: &Shard,
) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<dyn Any + Send + Sync>>> {
    s.write().unwrap_or_else(|e| e.into_inner())
}

struct Memo {
    shards: Vec<Shard>,
    /// Registry counters (`adcl.simmemo.*`) with subtractive baselines so
    /// the process-wide metrics dump stays monotone while [`stats`] keeps
    /// its "since last [`reset_stats`]" contract.
    hits: &'static Counter,
    misses: &'static Counter,
    replayed_events: &'static Counter,
    hits_base: AtomicU64,
    misses_base: AtomicU64,
    replayed_base: AtomicU64,
}

fn memo() -> &'static Memo {
    static MEMO: OnceLock<Memo> = OnceLock::new();
    MEMO.get_or_init(|| {
        // Front-cache tallies must reach the registry at sweep barriers;
        // registration is idempotent (fn-pointer dedup).
        simcore::par::register_sweep_flush(flush_front_stats);
        Memo {
            shards: (0..NSHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: metrics::counter("adcl.simmemo.hits"),
            misses: metrics::counter("adcl.simmemo.misses"),
            replayed_events: metrics::counter("adcl.simmemo.replayed_events"),
            hits_base: AtomicU64::new(0),
            misses_base: AtomicU64::new(0),
            replayed_base: AtomicU64::new(0),
        }
    })
}

/// Global front-cache epoch: bumped by [`clear`] and by a cross-type
/// overwrite (fingerprint collision), invalidating every thread's front
/// cache on its next lookup.
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Bound on per-thread front-cache entries (memoized outcomes are small —
/// an `Arc` each — but long-lived workers should not pin an unbounded set).
const FRONT_CAP: usize = 4096;

/// Key → type-erased memoized outcome, as stored in both the shared
/// shards and the per-thread front caches.
type FrontMap = HashMap<String, Arc<dyn Any + Send + Sync>>;

thread_local! {
    /// Per-thread front cache, valid while its epoch tag matches the
    /// global epoch. The contention-free replay hot path.
    static FRONT: RefCell<(u64, FrontMap)> = RefCell::new((0, HashMap::new()));
    /// Front-cache hits not yet flushed to the registry counter.
    static FRONT_HITS: Cell<u64> = const { Cell::new(0) };
}

/// Flush this thread's front-cache hit tally into the registry counter.
fn flush_front_stats() {
    let pending = FRONT_HITS.with(|h| h.replace(0));
    if pending > 0 {
        memo().hits.add(pending);
    }
}

fn front_get(key: &str, epoch: u64) -> Option<Arc<dyn Any + Send + Sync>> {
    FRONT.with(|f| {
        let mut f = f.borrow_mut();
        if f.0 != epoch {
            f.0 = epoch;
            f.1.clear();
        }
        f.1.get(key).cloned()
    })
}

/// Populate the front cache from a shared-map outcome (never from a fresh
/// run directly — the shared map is the source of truth).
fn front_put(key: &str, val: Arc<dyn Any + Send + Sync>, epoch: u64) {
    FRONT.with(|f| {
        let mut f = f.borrow_mut();
        if f.0 != epoch {
            f.0 = epoch;
            f.1.clear();
        }
        if f.1.len() < FRONT_CAP {
            f.1.insert(key.to_owned(), val);
        }
    });
}

/// FNV-1a over the fingerprint bytes with a SplitMix64-style finalizer:
/// cheaper than SipHash for the long human-readable keys the drivers build,
/// and the finalizer spreads structurally similar fingerprints (which share
/// long prefixes) across shards.
fn shard_of(key: &str) -> usize {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in key.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h as usize) % NSHARDS
}

/// Hit/miss counters plus the number of simulation events credited to
/// replays (events a cache hit avoided re-simulating).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    pub hits: u64,
    pub misses: u64,
    pub replayed_events: u64,
}

impl MemoStats {
    /// Hit rate in [0, 1]; 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Process-wide enable override: 0 = unset (consult `NBC_MEMO`),
/// 1 = forced off, 2 = forced on.
static ENABLED_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static ENABLED_ENV: OnceLock<bool> = OnceLock::new();

/// Programmatically force memoization on or off (takes precedence over
/// `NBC_MEMO`). Tests use this because the environment is read once.
pub fn set_enabled(on: bool) {
    ENABLED_OVERRIDE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Drop a [`set_enabled`] override, reverting to the environment default.
pub fn clear_enabled_override() {
    ENABLED_OVERRIDE.store(0, Ordering::Relaxed);
}

/// True when [`get_or_run`] consults the cache: the programmatic override
/// if set, else `NBC_MEMO` (`off`/`0` disables), else on.
pub fn enabled() -> bool {
    match ENABLED_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *ENABLED_ENV.get_or_init(|| {
            !matches!(
                std::env::var("NBC_MEMO").ok().as_deref(),
                Some("off") | Some("0")
            )
        }),
    }
}

/// Look up `key`; on a miss (or a type mismatch) run `run` outside the
/// lock and cache its result. Returns the shared outcome and whether it
/// was a replay (`true` = served from cache without running `run`).
///
/// When memoization is disabled the closure always runs and nothing is
/// cached or counted.
pub fn get_or_run<T, F>(key: &str, run: F) -> (Arc<T>, bool)
where
    T: Any + Send + Sync,
    F: FnOnce() -> T,
{
    if !enabled() {
        return (Arc::new(run()), false);
    }
    // Hot path: thread-local front cache — no locks, one relaxed epoch
    // load. Warm parallel sweeps replay from here without touching any
    // shared cache line.
    let epoch = EPOCH.load(Ordering::Acquire);
    if let Some(found) = front_get(key, epoch) {
        if let Ok(typed) = found.downcast::<T>() {
            FRONT_HITS.with(|h| h.set(h.get() + 1));
            return (typed, true);
        }
        // Type mismatch in the front copy: fall through to the shared map,
        // which resolves the collision and refreshes the front entry.
    }
    let m = memo();
    let shard = &m.shards[shard_of(key)];
    // Front miss: shared read lock on the backing map.
    if let Some(found) = read_shard(shard).get(key) {
        if let Ok(typed) = Arc::clone(found).downcast::<T>() {
            m.hits.inc();
            front_put(key, Arc::clone(found), epoch);
            return (typed, true);
        }
        // Same key, different outcome type: a fingerprint collision across
        // call sites. Treat as a miss and overwrite below.
    }
    m.misses.inc();
    let fresh: Arc<T> = Arc::new(run());
    let mut g = write_shard(shard);
    match g.get(key) {
        // Lost an insert race to an identically-keyed run: adopt the
        // winner (results are deterministic, so the values are equal).
        Some(existing) => {
            if let Ok(typed) = Arc::clone(existing).downcast::<T>() {
                front_put(key, Arc::clone(existing), epoch);
                return (typed, false);
            }
            g.insert(key.to_owned(), fresh.clone());
            drop(g);
            // Cross-type overwrite: other threads may hold the stale-typed
            // outcome in their front caches; bump the epoch so they drop it.
            let new_epoch = EPOCH.fetch_add(1, Ordering::Release) + 1;
            front_put(key, fresh.clone(), new_epoch);
            (fresh, false)
        }
        None => {
            g.insert(key.to_owned(), fresh.clone());
            drop(g);
            front_put(key, fresh.clone(), epoch);
            (fresh, false)
        }
    }
}

/// Credit `events` simulation events to the replay counter: a cache hit
/// stood in for a run that would have processed this many events. The perf
/// harness folds this into effective events/sec.
pub fn credit_replay(events: u64) {
    memo().replayed_events.add(events);
}

/// Current counters.
///
/// Flushes the calling thread's front-cache tally first; worker tallies
/// flush at sweep barriers, so totals observed between sweeps are exact
/// for every `jobs` value.
pub fn stats() -> MemoStats {
    flush_front_stats();
    let m = memo();
    MemoStats {
        hits: m
            .hits
            .get()
            .saturating_sub(m.hits_base.load(Ordering::Relaxed)),
        misses: m
            .misses
            .get()
            .saturating_sub(m.misses_base.load(Ordering::Relaxed)),
        replayed_events: m
            .replayed_events
            .get()
            .saturating_sub(m.replayed_base.load(Ordering::Relaxed)),
    }
}

/// Zero the counters (entries are kept; the underlying registry counters
/// keep their monotone totals).
pub fn reset_stats() {
    let m = memo();
    m.hits_base.store(m.hits.get(), Ordering::Relaxed);
    m.misses_base.store(m.misses.get(), Ordering::Relaxed);
    m.replayed_base
        .store(m.replayed_events.get(), Ordering::Relaxed);
}

/// Number of memoized outcomes.
pub fn len() -> usize {
    memo().shards.iter().map(|s| read_shard(s).len()).sum()
}

/// Drop every memoized outcome (counters are kept). Bumping the epoch
/// invalidates every thread's front cache on its next lookup.
pub fn clear() {
    EPOCH.fetch_add(1, Ordering::Release);
    for s in &memo().shards {
        write_shard(s).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The cache and the enable override are process-global; tests that
    /// toggle them must not interleave.
    static LOCK: StdMutex<()> = StdMutex::new(());

    fn with_memo_on<R>(f: impl FnOnce() -> R) -> R {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(true);
        clear();
        reset_stats();
        let r = f();
        clear_enabled_override();
        r
    }

    #[test]
    fn second_lookup_is_a_replay() {
        with_memo_on(|| {
            let mut runs = 0;
            let (a, replay_a) = get_or_run("k/test/1", || {
                runs += 1;
                42u64
            });
            let (b, replay_b) = get_or_run("k/test/1", || {
                runs += 1;
                42u64
            });
            assert_eq!(runs, 1, "closure must run once");
            assert_eq!(*a, *b);
            assert!(!replay_a);
            assert!(replay_b);
            let s = stats();
            assert_eq!((s.hits, s.misses), (1, 1));
            assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        });
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        with_memo_on(|| {
            // Fingerprints differing in exactly one field must hit distinct
            // entries — this is the memo-key collision test: a key that
            // dropped any of these fields would alias them.
            let keys = [
                "whale/ibcast/binomial/p16/m262144/s32768/seed2015",
                "whale/ibcast/binomial/p16/m262144/s32768/seed2016",
                "whale/ibcast/binomial/p16/m262144/s65536/seed2015",
                "whale/ibcast/binomial/p16/m524288/s32768/seed2015",
                "whale/ibcast/binomial/p32/m262144/s32768/seed2015",
                "whale/ibcast/chain/p16/m262144/s32768/seed2015",
                "whale/ialltoall/binomial/p16/m262144/s32768/seed2015",
                "crill/ibcast/binomial/p16/m262144/s32768/seed2015",
            ];
            for (i, k) in keys.iter().enumerate() {
                let (v, _) = get_or_run(k, || i as u64);
                assert_eq!(*v, i as u64);
            }
            assert_eq!(len(), keys.len());
            for (i, k) in keys.iter().enumerate() {
                let (v, replay) = get_or_run(k, || u64::MAX);
                assert_eq!(*v, i as u64, "key {k} aliased another entry");
                assert!(replay);
            }
        });
    }

    #[test]
    fn type_mismatch_is_a_miss() {
        with_memo_on(|| {
            let (_, _) = get_or_run("k/typed", || 7u64);
            // Same key, different type: must not panic, must re-run.
            let (v, replay) = get_or_run("k/typed", || "seven".to_owned());
            assert_eq!(&*v, "seven");
            assert!(!replay);
        });
    }

    #[test]
    fn disabled_cache_always_runs() {
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(false);
        let before = stats();
        let mut runs = 0;
        for _ in 0..3 {
            let (v, replay) = get_or_run("k/disabled", || {
                runs += 1;
                1u8
            });
            assert_eq!(*v, 1);
            assert!(!replay);
        }
        assert_eq!(runs, 3);
        let after = stats();
        assert_eq!(before, after, "disabled runs must not touch counters");
        clear_enabled_override();
    }

    #[test]
    fn fingerprint_hash_spreads_shards() {
        // Driver fingerprints share long prefixes; the finalizer must still
        // spread them across most shards.
        let mut used = std::collections::HashSet::new();
        for i in 0..256 {
            used.insert(shard_of(&format!(
                "ub/whale/ibcast/p16/m{i}/i10/c0/g4/r25/Block/F-/Tuned"
            )));
        }
        assert!(used.len() >= NSHARDS / 2, "only {} shards used", used.len());
    }

    #[test]
    fn front_cache_replays_and_flushes_hits_through_stats() {
        with_memo_on(|| {
            let (_, _) = get_or_run("k/front/1", || 11u64);
            // These replays come from the thread-local front cache; their
            // tallies must appear once stats() flushes the calling thread.
            for _ in 0..5 {
                let (v, replay) = get_or_run("k/front/1", || -> u64 { unreachable!() });
                assert_eq!(*v, 11u64);
                assert!(replay);
            }
            let s = stats();
            assert_eq!((s.hits, s.misses), (5, 1));
        });
    }

    #[test]
    fn clear_invalidates_front_cache() {
        with_memo_on(|| {
            let (_, _) = get_or_run("k/front/clear", || 1u64);
            let (_, replay) = get_or_run("k/front/clear", || 2u64);
            assert!(replay);
            clear();
            // The front copy must not survive a clear: the closure re-runs
            // and the new outcome is cached.
            let (v, replay) = get_or_run("k/front/clear", || 3u64);
            assert!(!replay);
            assert_eq!(*v, 3u64);
        });
    }

    #[test]
    fn concurrent_threads_converge_with_no_lost_inserts() {
        with_memo_on(|| {
            // 8 threads × 16 keys, every thread runs every key: each key's
            // closure result is deterministic, so all threads must observe
            // the same value, and the map must hold exactly 16 entries.
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    std::thread::spawn(|| {
                        (0..16u64)
                            .map(|k| *get_or_run(&format!("k/stress/{k}"), || k * 7 + 1).0)
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            for h in handles {
                let vals = h.join().unwrap();
                let expect: Vec<u64> = (0..16).map(|k| k * 7 + 1).collect();
                assert_eq!(vals, expect);
            }
            assert_eq!(len(), 16);
        });
    }

    #[test]
    fn replay_crediting_accumulates() {
        with_memo_on(|| {
            let before = stats().replayed_events;
            credit_replay(100);
            credit_replay(23);
            assert_eq!(stats().replayed_events, before + 123);
        });
    }
}
