//! `adcl` — run-time auto-tuning of (non-blocking) collective communication
//! operations.
//!
//! This crate is the Rust reimplementation of the paper's contribution: the
//! extensions made to the Abstract Data and Communication Library (ADCL) to
//! tune *non-blocking* collectives at run time. The key ideas, mapped to
//! modules:
//!
//! * **Function-sets and attributes** ([`function`], [`attr`]) — an
//!   operation (e.g. `Ialltoall`) is a *function-set* containing many
//!   alternative *functions* (implementations), each characterized by a
//!   vector of attribute values (algorithm, fan-out, segment size, blocking
//!   vs non-blocking, ...).
//! * **Timer objects** ([`timer`]) — non-blocking operations cannot be
//!   timed directly (the operation is only partially visible to the
//!   application), so ADCL measures a user-bracketed code section instead
//!   and attributes the elapsed time to the function used in it.
//! * **Runtime selection logics** ([`strategy`], [`tuner`]) — brute-force
//!   search, the attribute-based heuristic, and a 2^k factorial screening
//!   design, fed by statistically filtered measurements ([`filter`]).
//! * **The progress interface** ([`runner`]) — an `ADCL_Progress`-style
//!   call that drives the underlying LibNBC-like schedules, whose
//!   count/frequency is itself a tunable property of the application.
//! * **Historic learning** ([`history`]) — winners persisted across runs.
//! * **The decision audit log** ([`audit`]) — when `NBC_TRACE` is set,
//!   every live tuning decision is recorded with its full evidence
//!   (candidate scores, filtered sample counts, winner margin).
//! * **The micro-benchmark** ([`microbench`]) — the paper's §IV-A loop:
//!   initiate, compute in chunks with interleaved progress calls, wait.
//!
//! Everything executes against the simulated cluster ([`mpisim::World`]),
//! so experiments from the paper can be reproduced deterministically on a
//! laptop; see `DESIGN.md` for the substitution rationale.

pub mod attr;
pub mod audit;
pub mod filter;
pub mod function;
pub mod guidelines;
pub mod history;
pub mod microbench;
pub mod runner;
pub mod simmemo;
pub mod strategy;
pub mod timer;
pub mod tuner;

pub use function::{Function, FunctionSet};
pub use runner::{Instr, Runner, Script, TunedOp, TuningSession};
pub use strategy::SelectionLogic;
pub use timer::Timer;
pub use tuner::{Tuner, TunerConfig};
