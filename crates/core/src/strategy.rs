//! Runtime selection strategies.
//!
//! ADCL incorporates multiple runtime selection algorithms (§III-A):
//!
//! * [`SelectionLogic::BruteForce`] — evaluate every implementation a fixed
//!   number of times, then commit to the fastest. Guaranteed to find the
//!   best function, at the price of a long learning phase.
//! * [`SelectionLogic::AttributeHeuristic`] — optimize one attribute at a
//!   time: measure one representative implementation per attribute value,
//!   fix the best value, discard every implementation that disagrees, and
//!   move to the next attribute. Assumes attributes are uncorrelated;
//!   much shorter learning phase (e.g. 7+3 functions instead of 21 for
//!   `Ibcast`).
//! * [`SelectionLogic::TwoKFactorial`] — a 2^k factorial screening design
//!   (Box, Hunter & Hunter): measure the corner implementations of the
//!   attribute space, estimate main effects, and commit to the
//!   implementation nearest the predicted optimum. Supports correlated
//!   parameters; intended for very large parameter spaces.
//! * [`SelectionLogic::Fixed`] — pin one implementation (used for the
//!   verification runs and the LibNBC/MPI baselines of §IV).
//! * [`SelectionLogic::Racing`] — brute-force candidate set, but measured
//!   in interleaved fixed-size iteration blocks with deterministic
//!   elimination: after each block, any candidate whose filtered lower
//!   bound exceeds the current leader's filtered upper bound can never win
//!   under the filter's scoring rule and is permanently dropped, so losing
//!   schedules stop consuming simulated events after a block or two
//!   instead of the full measurement budget.
//!
//! A strategy is driven iteration by iteration: [`Strategy::next_assignment`]
//! returns the function to use for the next application iteration, given
//! the samples recorded so far. Once a strategy commits, every subsequent
//! iteration uses the winner.

use crate::attr::AttributeSet;
use crate::filter::FilterKind;
use std::collections::VecDeque;

/// The per-iteration interface every selection logic implements.
pub trait Strategy {
    /// Function index to use for the next iteration. Strategies make their
    /// (adaptive) decisions inside this call, based on `samples` — the
    /// measurements recorded so far, one vector per function.
    fn next_assignment(&mut self, samples: &[Vec<f64>]) -> usize;

    /// `Some(winner)` once the learning phase has finished.
    fn winner(&self) -> Option<usize>;

    /// Best current estimate (used by co-tuning to freeze an operation
    /// while another is being tuned). Defaults to the winner, else the
    /// lowest-scoring measured function, else 0.
    fn best_so_far(&self, samples: &[Vec<f64>]) -> usize {
        self.winner()
            .or_else(|| FilterKind::default().argmin(samples))
            .unwrap_or(0)
    }

    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Per-function elimination record: `Some(block)` (1-based) for every
    /// candidate the strategy permanently dropped during the learning
    /// phase. Only racing-style strategies eliminate; the default is
    /// `None` (no elimination machinery at all).
    fn eliminations(&self) -> Option<&[Option<usize>]> {
        None
    }
}

/// Which selection logic to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionLogic {
    /// Exhaustive search over all implementations.
    BruteForce,
    /// Attribute-based pruning heuristic.
    AttributeHeuristic,
    /// 2^k factorial screening design.
    TwoKFactorial,
    /// No tuning: always use the given function index.
    Fixed(usize),
    /// Brute-force candidate set with block-interleaved racing
    /// elimination; the payload is the block size (iterations per
    /// candidate per block).
    Racing(usize),
}

/// Default racing block size when `NBC_RACING=on` gives none.
pub const DEFAULT_RACING_BLOCK: usize = 2;

/// Parsed state of the `NBC_RACING` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RacingEnv {
    /// Variable absent (or unparseable): each consumer picks its own
    /// default — figure binaries stay on brute force, the tuning daemon
    /// races.
    Unset,
    /// Explicitly disabled (`off` / `0` / `false`).
    Off,
    /// Enabled with the given block size (`on` / `on:BLOCK`).
    On(usize),
}

/// Read `NBC_RACING` (`off` | `on` | `on:BLOCK`). Unrecognized values are
/// treated as unset.
pub fn racing_env() -> RacingEnv {
    parse_racing(std::env::var("NBC_RACING").ok().as_deref())
}

fn parse_racing(raw: Option<&str>) -> RacingEnv {
    let Some(raw) = raw else {
        return RacingEnv::Unset;
    };
    let v = raw.trim().to_ascii_lowercase();
    match v.as_str() {
        "" => RacingEnv::Unset,
        "off" | "0" | "false" => RacingEnv::Off,
        "on" | "1" | "true" => RacingEnv::On(DEFAULT_RACING_BLOCK),
        other => match other
            .strip_prefix("on:")
            .and_then(|b| b.parse::<usize>().ok())
            .filter(|&b| b >= 1)
        {
            Some(b) => RacingEnv::On(b),
            None => RacingEnv::Unset,
        },
    }
}

impl SelectionLogic {
    /// Build the strategy for a function-set with the given per-function
    /// attribute vectors and names (names feed racing's total-ordered
    /// tie-breaks, which must not depend on function-set insertion order
    /// alone).
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        self,
        n_funcs: usize,
        attr_vecs: &[Vec<i64>],
        attrs: &AttributeSet,
        names: &[String],
        reps: usize,
        min_samples: usize,
        filter: FilterKind,
    ) -> Box<dyn Strategy> {
        assert!(n_funcs > 0, "empty function set");
        let min_samples = min_samples.clamp(1, reps);
        match self {
            SelectionLogic::BruteForce => Box::new(BruteForce {
                reps,
                min_samples,
                n_funcs,
                emitted: 0,
                winner: None,
                filter,
            }),
            SelectionLogic::AttributeHeuristic => Box::new(Heuristic::new(
                attr_vecs.to_vec(),
                attrs.clone(),
                reps,
                min_samples,
                filter,
            )),
            SelectionLogic::TwoKFactorial => Box::new(Factorial::new(
                attr_vecs.to_vec(),
                attrs.clone(),
                reps,
                min_samples,
                filter,
            )),
            SelectionLogic::Fixed(idx) => {
                assert!(idx < n_funcs, "fixed function index out of range");
                Box::new(Fixed(idx))
            }
            SelectionLogic::Racing(block) => {
                assert!(block >= 1, "racing block size must be >= 1");
                Box::new(Racing::new(
                    n_funcs,
                    names,
                    reps,
                    min_samples,
                    block,
                    filter,
                ))
            }
        }
    }
}

// ----------------------------------------------------------------------
// Fixed
// ----------------------------------------------------------------------

struct Fixed(usize);

impl Strategy for Fixed {
    fn next_assignment(&mut self, _samples: &[Vec<f64>]) -> usize {
        self.0
    }
    fn winner(&self) -> Option<usize> {
        Some(self.0)
    }
    fn name(&self) -> &'static str {
        "fixed"
    }
}

// ----------------------------------------------------------------------
// Brute force
// ----------------------------------------------------------------------

struct BruteForce {
    reps: usize,
    min_samples: usize,
    n_funcs: usize,
    emitted: usize,
    winner: Option<usize>,
    filter: FilterKind,
}

impl Strategy for BruteForce {
    fn next_assignment(&mut self, samples: &[Vec<f64>]) -> usize {
        if let Some(w) = self.winner {
            return w;
        }
        if self.emitted < self.n_funcs * self.reps {
            let f = self.emitted / self.reps;
            self.emitted += 1;
            return f;
        }
        // All test iterations have been handed out, but ranks are only
        // loosely synchronized: the measurements of the last iterations may
        // not have been reported yet. Deciding on partial data is how a
        // tuner ends up with a plausible-but-wrong winner, so stay
        // *provisional* (use the current best estimate) until every tested
        // function has its full sample set, and only then commit.
        if samples.iter().any(|s| s.len() < self.min_samples) {
            return self.filter.argmin(samples).unwrap_or(0);
        }
        let w = self.filter.argmin(samples).unwrap_or(0);
        self.winner = Some(w);
        w
    }
    fn winner(&self) -> Option<usize> {
        self.winner
    }
    fn name(&self) -> &'static str {
        "brute-force"
    }
}

// ----------------------------------------------------------------------
// Attribute heuristic
// ----------------------------------------------------------------------

struct Heuristic {
    attr_vecs: Vec<Vec<i64>>,
    attrs: AttributeSet,
    reps: usize,
    min_samples: usize,
    filter: FilterKind,
    /// Which attribute is currently being tuned.
    phase: usize,
    /// Function indices still compatible with the decided attribute values.
    candidates: Vec<usize>,
    /// `(value, representative function)` pairs under test in this phase.
    tests: Vec<(i64, usize)>,
    /// Iterations already emitted in this phase.
    phase_emitted: usize,
    /// Per-function sample counts at the start of the phase, so the phase
    /// decision waits for its own measurements to be complete.
    baseline: Vec<usize>,
    winner: Option<usize>,
}

impl Heuristic {
    fn new(
        attr_vecs: Vec<Vec<i64>>,
        attrs: AttributeSet,
        reps: usize,
        min_samples: usize,
        filter: FilterKind,
    ) -> Self {
        let n = attr_vecs.len();
        let mut h = Heuristic {
            attr_vecs,
            attrs,
            reps,
            min_samples,
            filter,
            phase: 0,
            candidates: (0..n).collect(),
            tests: Vec::new(),
            phase_emitted: 0,
            baseline: vec![0; n],
            winner: None,
        };
        if h.attrs.is_empty() {
            // Degenerate: no attributes to optimize over — fall back to the
            // first candidate straight away (callers should prefer brute
            // force for attribute-less sets).
            h.winner = Some(0);
        } else {
            h.start_phase(None);
        }
        h
    }

    fn start_phase(&mut self, samples: Option<&[Vec<f64>]>) {
        self.tests.clear();
        self.phase_emitted = 0;
        if let Some(samples) = samples {
            self.baseline = samples.iter().map(|s| s.len()).collect();
        }
        // Values of the current attribute present among the candidates,
        // each represented by the first matching candidate.
        let a = self.phase;
        for &c in &self.candidates {
            let v = self.attr_vecs[c][a];
            if !self.tests.iter().any(|&(tv, _)| tv == v) {
                self.tests.push((v, c));
            }
        }
    }

    fn finish_phase(&mut self, samples: &[Vec<f64>]) {
        // Score each representative and fix the best value.
        let best = self
            .tests
            .iter()
            .min_by(|(_, f1), (_, f2)| {
                let s1 = self.filter.score(&samples[*f1]);
                let s2 = self.filter.score(&samples[*f2]);
                s1.partial_cmp(&s2).expect("NaN score")
            })
            .map(|&(v, _)| v)
            .expect("phase with no tests");
        let a = self.phase;
        self.candidates.retain(|&c| self.attr_vecs[c][a] == best);
        debug_assert!(!self.candidates.is_empty(), "pruning removed everything");
        self.phase += 1;
        if self.phase >= self.attrs.len() {
            // All attributes fixed: the survivors share every attribute
            // value; pick the best-measured one (they are typically one).
            let w = self
                .candidates
                .iter()
                .copied()
                .min_by(|&c1, &c2| {
                    let s1 = self.filter.score(&samples[c1]);
                    let s2 = self.filter.score(&samples[c2]);
                    s1.partial_cmp(&s2).expect("NaN score")
                })
                .unwrap_or(0);
            self.winner = Some(w);
        } else {
            self.start_phase(Some(samples));
        }
    }

    /// True once every representative of the current phase has reported
    /// all `reps` measurements taken in this phase.
    fn phase_data_complete(&self, samples: &[Vec<f64>]) -> bool {
        self.tests
            .iter()
            .all(|&(_, f)| samples[f].len() >= self.baseline[f] + self.min_samples)
    }
}

impl Strategy for Heuristic {
    fn next_assignment(&mut self, samples: &[Vec<f64>]) -> usize {
        loop {
            if let Some(w) = self.winner {
                return w;
            }
            if self.phase_emitted < self.tests.len() * self.reps {
                let t = self.phase_emitted / self.reps;
                self.phase_emitted += 1;
                return self.tests[t].1;
            }
            // Stay provisional until this phase's measurements are all in
            // (ranks lag each other by an iteration or two).
            if !self.phase_data_complete(samples) {
                return self
                    .tests
                    .iter()
                    .min_by(|(_, f1), (_, f2)| {
                        let s1 = self.filter.score(&samples[*f1]);
                        let s2 = self.filter.score(&samples[*f2]);
                        s1.partial_cmp(&s2).expect("NaN score")
                    })
                    .map(|&(_, f)| f)
                    .expect("phase with no tests");
            }
            self.finish_phase(samples);
        }
    }
    fn winner(&self) -> Option<usize> {
        self.winner
    }
    fn name(&self) -> &'static str {
        "attribute-heuristic"
    }
}

// ----------------------------------------------------------------------
// 2^k factorial design
// ----------------------------------------------------------------------

struct Factorial {
    attr_vecs: Vec<Vec<i64>>,
    attrs: AttributeSet,
    reps: usize,
    min_samples: usize,
    filter: FilterKind,
    /// Distinct corner functions to test.
    corner_funcs: Vec<usize>,
    /// For each of the 2^k corners, the function representing it.
    corner_of_combo: Vec<usize>,
    emitted: usize,
    winner: Option<usize>,
}

/// Normalized L1 distance between a function's attribute vector and a
/// target vector, each attribute scaled by its domain range.
fn attr_distance(vec: &[i64], target: &[i64], attrs: &AttributeSet) -> f64 {
    vec.iter()
        .zip(target)
        .zip(&attrs.attrs)
        .map(|((&v, &t), a)| {
            let lo = *a.values.first().unwrap_or(&0);
            let hi = *a.values.last().unwrap_or(&0);
            let range = (hi - lo).max(1) as f64;
            ((v - t).abs() as f64) / range
        })
        .sum()
}

/// Function index nearest to `target` in normalized attribute space.
fn nearest_function(attr_vecs: &[Vec<i64>], target: &[i64], attrs: &AttributeSet) -> usize {
    attr_vecs
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            attr_distance(a, target, attrs)
                .partial_cmp(&attr_distance(b, target, attrs))
                .expect("NaN distance")
        })
        .map(|(i, _)| i)
        .expect("nonempty function set")
}

impl Factorial {
    fn new(
        attr_vecs: Vec<Vec<i64>>,
        attrs: AttributeSet,
        reps: usize,
        min_samples: usize,
        filter: FilterKind,
    ) -> Self {
        let k = attrs.len();
        let mut f = Factorial {
            attr_vecs,
            attrs,
            reps,
            min_samples,
            filter,
            corner_funcs: Vec::new(),
            corner_of_combo: Vec::new(),
            emitted: 0,
            winner: None,
        };
        if k == 0 {
            f.winner = Some(0);
            return f;
        }
        for combo in 0..(1usize << k) {
            let target: Vec<i64> = (0..k)
                .map(|a| {
                    let vals = &f.attrs.attrs[a].values;
                    if combo >> a & 1 == 1 {
                        *vals.last().unwrap()
                    } else {
                        *vals.first().unwrap()
                    }
                })
                .collect();
            let func = nearest_function(&f.attr_vecs, &target, &f.attrs);
            f.corner_of_combo.push(func);
            if !f.corner_funcs.contains(&func) {
                f.corner_funcs.push(func);
            }
        }
        f
    }

    fn decide(&mut self, samples: &[Vec<f64>]) {
        let k = self.attrs.len();
        // Main effect per attribute: mean corner score at the high level
        // minus at the low level; pick whichever level scores lower.
        let target: Vec<i64> = (0..k)
            .map(|a| {
                let (mut lo_sum, mut lo_n, mut hi_sum, mut hi_n) = (0.0, 0usize, 0.0, 0usize);
                for combo in 0..(1usize << k) {
                    let s = self.filter.score(&samples[self.corner_of_combo[combo]]);
                    if !s.is_finite() {
                        continue;
                    }
                    if combo >> a & 1 == 1 {
                        hi_sum += s;
                        hi_n += 1;
                    } else {
                        lo_sum += s;
                        lo_n += 1;
                    }
                }
                let vals = &self.attrs.attrs[a].values;
                let lo = *vals.first().unwrap();
                let hi = *vals.last().unwrap();
                if lo_n == 0 {
                    return hi;
                }
                if hi_n == 0 {
                    return lo;
                }
                if hi_sum / hi_n as f64 <= lo_sum / lo_n as f64 {
                    hi
                } else {
                    lo
                }
            })
            .collect();
        self.winner = Some(nearest_function(&self.attr_vecs, &target, &self.attrs));
    }
}

impl Strategy for Factorial {
    fn next_assignment(&mut self, samples: &[Vec<f64>]) -> usize {
        if let Some(w) = self.winner {
            return w;
        }
        if self.emitted < self.corner_funcs.len() * self.reps {
            let i = self.emitted / self.reps;
            self.emitted += 1;
            return self.corner_funcs[i];
        }
        if self
            .corner_funcs
            .iter()
            .any(|&f| samples[f].len() < self.min_samples)
        {
            // Provisional until every corner has reported.
            return self.filter.argmin(samples).unwrap_or(self.corner_funcs[0]);
        }
        self.decide(samples);
        self.winner.expect("decide sets winner")
    }
    fn winner(&self) -> Option<usize> {
        self.winner
    }
    fn name(&self) -> &'static str {
        "2k-factorial"
    }
}

// ----------------------------------------------------------------------
// Racing elimination
// ----------------------------------------------------------------------

/// Brute force with block-interleaved deterministic elimination.
///
/// Candidates are measured in fixed-size blocks: every still-active
/// candidate, in index order, receives `block` consecutive iterations,
/// then the strategy waits for the block's measurements. After each
/// complete block the current leader is the active candidate with the
/// lowest `(score, name, index)` triple (a total order — ties cannot
/// depend on timing or thread interleaving), and any other candidate
/// whose filtered lower bound exceeds the leader's filtered upper bound
/// is permanently eliminated. The block schedule is a pure function of
/// the elimination history, so the emitted iteration sequence — and with
/// it every simulated event — is byte-identical across reruns, `--jobs`
/// values and fault profiles (faults shift the measured values the same
/// deterministic way everywhere).
struct Racing {
    reps: usize,
    block: usize,
    min_samples: usize,
    names: Vec<String>,
    filter: FilterKind,
    active: Vec<bool>,
    /// 1-based block at which each candidate was eliminated.
    eliminated_at: Vec<Option<usize>>,
    /// Completed (fully emitted) blocks so far.
    block_no: usize,
    /// Iterations handed out per candidate (including warmup discards).
    emitted_iters: Vec<usize>,
    /// Assignments of the current block not yet handed out.
    pending: VecDeque<usize>,
    winner: Option<usize>,
}

impl Racing {
    fn new(
        n_funcs: usize,
        names: &[String],
        reps: usize,
        min_samples: usize,
        block: usize,
        filter: FilterKind,
    ) -> Self {
        assert_eq!(names.len(), n_funcs, "one name per function");
        Racing {
            reps,
            block,
            min_samples,
            names: names.to_vec(),
            filter,
            active: vec![true; n_funcs],
            eliminated_at: vec![None; n_funcs],
            block_no: 0,
            emitted_iters: vec![0; n_funcs],
            pending: VecDeque::new(),
            winner: None,
        }
    }

    fn active_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.active
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(f, _)| f)
    }

    /// Active candidate with the lowest `(score, name, index)`; `None`
    /// while no active candidate has a finite score yet.
    fn leader(&self, samples: &[Vec<f64>]) -> Option<usize> {
        self.active_indices()
            .filter_map(|f| {
                let sc = self.filter.score(&samples[f]);
                sc.is_finite().then_some((f, sc))
            })
            .min_by(|&(f1, s1), &(f2, s2)| {
                s1.total_cmp(&s2)
                    .then_with(|| self.names[f1].cmp(&self.names[f2]))
                    .then_with(|| f1.cmp(&f2))
            })
            .map(|(f, _)| f)
    }

    /// Drop every active non-leader whose optimistic bound is already
    /// worse than the leader's pessimistic bound.
    fn eliminate(&mut self, samples: &[Vec<f64>]) {
        let Some(leader) = self.leader(samples) else {
            return;
        };
        let ub = self.filter.upper_bound(&samples[leader]);
        for (f, sample) in samples.iter().enumerate().take(self.active.len()) {
            if !self.active[f] || f == leader || sample.is_empty() {
                continue;
            }
            if self.filter.lower_bound(sample) > ub {
                self.active[f] = false;
                self.eliminated_at[f] = Some(self.block_no);
            }
        }
    }

    fn provisional(&self, samples: &[Vec<f64>]) -> usize {
        self.leader(samples)
            .or_else(|| self.active_indices().next())
            .unwrap_or(0)
    }
}

impl Strategy for Racing {
    fn next_assignment(&mut self, samples: &[Vec<f64>]) -> usize {
        loop {
            if let Some(w) = self.winner {
                return w;
            }
            if let Some(f) = self.pending.pop_front() {
                return f;
            }
            // Between blocks. The first `reps - min_samples` iterations of
            // each candidate are warmup discards, so a candidate that has
            // been handed `e` iterations owes `e - warmup` measurements.
            // Like brute force, stay provisional (never commit, never
            // eliminate) until every active candidate's block data is in.
            let warmup = self.reps - self.min_samples;
            let complete = self
                .active_indices()
                .all(|f| samples[f].len() >= self.emitted_iters[f].saturating_sub(warmup));
            if !complete {
                return self.provisional(samples);
            }
            if self.block_no > 0 {
                self.eliminate(samples);
                if self.active.iter().filter(|&&a| a).count() == 1 {
                    // Everyone else is dominated: commit early without
                    // spending the survivor's remaining budget.
                    let sole = self.active_indices().next();
                    self.winner = sole;
                    continue;
                }
            }
            if self
                .active_indices()
                .all(|f| self.emitted_iters[f] >= self.reps)
            {
                // Full budget spent for every survivor: commit like brute
                // force, with the racing total order as the tie-break.
                self.winner = Some(self.provisional(samples));
                continue;
            }
            // Emit the next block: every active candidate, in index
            // order, gets up to `block` of its remaining iterations.
            self.block_no += 1;
            for f in 0..self.active.len() {
                if !self.active[f] || self.emitted_iters[f] >= self.reps {
                    continue;
                }
                let take = self.block.min(self.reps - self.emitted_iters[f]);
                self.emitted_iters[f] += take;
                for _ in 0..take {
                    self.pending.push_back(f);
                }
            }
        }
    }
    fn winner(&self) -> Option<usize> {
        self.winner
    }
    fn name(&self) -> &'static str {
        "racing"
    }
    fn eliminations(&self) -> Option<&[Option<usize>]> {
        Some(&self.eliminated_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a strategy against a synthetic cost oracle until convergence;
    /// returns (winner, iterations spent learning).
    fn drive(
        strategy: &mut dyn Strategy,
        n: usize,
        mut cost: impl FnMut(usize) -> f64,
    ) -> (usize, usize) {
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); n];
        let mut iters = 0;
        loop {
            let f = strategy.next_assignment(&samples);
            if let Some(w) = strategy.winner() {
                if samples.iter().map(|s| s.len()).sum::<usize>() > 0 || n == 1 {
                    return (w, iters);
                }
            }
            samples[f].push(cost(f));
            iters += 1;
            if iters > 100_000 {
                panic!("strategy never converged");
            }
        }
    }

    fn grid_attrs() -> (Vec<Vec<i64>>, AttributeSet) {
        // 2 attributes: a in {0,1,2}, b in {10, 20}; 6 functions.
        let mut vecs = Vec::new();
        for a in 0..3i64 {
            for b in [10i64, 20] {
                vecs.push(vec![a, b]);
            }
        }
        let names = ["a", "b"];
        let attrs = AttributeSet::from_functions(&names, &vecs);
        (vecs, attrs)
    }

    fn func_names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i:02}")).collect()
    }

    #[test]
    fn fixed_never_learns() {
        let (vecs, attrs) = grid_attrs();
        let mut s = SelectionLogic::Fixed(3).build(
            6,
            &vecs,
            &attrs,
            &func_names(6),
            5,
            5,
            FilterKind::default(),
        );
        assert_eq!(s.winner(), Some(3));
        assert_eq!(s.next_assignment(&vec![Vec::new(); 6]), 3);
    }

    #[test]
    fn brute_force_finds_minimum() {
        let (vecs, attrs) = grid_attrs();
        let mut s = SelectionLogic::BruteForce.build(
            6,
            &vecs,
            &attrs,
            &func_names(6),
            4,
            4,
            FilterKind::default(),
        );
        let (w, iters) = drive(s.as_mut(), 6, |f| 10.0 + ((f as f64) - 4.0).abs());
        assert_eq!(w, 4);
        assert_eq!(iters, 24); // 6 functions x 4 reps
    }

    #[test]
    fn brute_force_robust_to_one_outlier() {
        let (vecs, attrs) = grid_attrs();
        let mut s = SelectionLogic::BruteForce.build(
            6,
            &vecs,
            &attrs,
            &func_names(6),
            8,
            8,
            FilterKind::Iqr(1.5),
        );
        let mut call = 0usize;
        let (w, _) = drive(s.as_mut(), 6, move |f| {
            call += 1;
            let base = if f == 2 { 1.0 } else { 2.0 };
            // Inject a single enormous spike into the true winner's samples.
            if f == 2 && call % 7 == 3 {
                base + 100.0
            } else {
                base
            }
        });
        assert_eq!(w, 2);
    }

    #[test]
    fn heuristic_finds_separable_minimum() {
        let (vecs, attrs) = grid_attrs();
        // Separable cost: best a=1, best b=20 -> function [1,20] = index 3.
        let vecs2 = vecs.clone();
        let cost = move |f: usize| {
            let a = vecs2[f][0] as f64;
            let b = vecs2[f][1] as f64;
            (a - 1.0).abs() * 10.0 + (b - 20.0).abs() * 0.1 + 1.0
        };
        let mut s = SelectionLogic::AttributeHeuristic.build(
            6,
            &vecs,
            &attrs,
            &func_names(6),
            3,
            3,
            FilterKind::default(),
        );
        let (w, iters) = drive(s.as_mut(), 6, cost);
        assert_eq!(vecs[w], vec![1, 20]);
        // Heuristic tests 3 values of a + 2 values of b = 5 representatives,
        // 3 reps each = 15 iterations < 18 for brute force.
        assert_eq!(iters, 15);
    }

    #[test]
    fn heuristic_prunes_fewer_tests_than_brute_force() {
        // Paper's Ibcast shape: 7 x 3 = 21 functions.
        let mut vecs = Vec::new();
        for a in [0i64, 1, 2, 3, 4, 5, 99] {
            for b in [32i64, 64, 128] {
                vecs.push(vec![a, b]);
            }
        }
        let attrs = AttributeSet::from_functions(&["fanout", "segsize"], &vecs);
        let vecs2 = vecs.clone();
        let cost = move |f: usize| (vecs2[f][0] as f64 - 3.0).abs() + (vecs2[f][1] as f64) * 0.001;
        let mut h = SelectionLogic::AttributeHeuristic.build(
            21,
            &vecs,
            &attrs,
            &func_names(21),
            5,
            5,
            FilterKind::default(),
        );
        let (w, h_iters) = drive(h.as_mut(), 21, &cost);
        assert_eq!(vecs[w], vec![3, 32]);
        let mut b = SelectionLogic::BruteForce.build(
            21,
            &vecs,
            &attrs,
            &func_names(21),
            5,
            5,
            FilterKind::default(),
        );
        let (wb, b_iters) = drive(b.as_mut(), 21, &cost);
        assert_eq!(vecs[wb], vec![3, 32]);
        assert!(
            h_iters < b_iters,
            "heuristic {h_iters} should beat brute force {b_iters}"
        );
    }

    #[test]
    fn factorial_picks_predicted_corner() {
        let (vecs, attrs) = grid_attrs();
        // Monotone cost: lower a better, higher b better -> corner [0, 20].
        let vecs2 = vecs.clone();
        let cost = move |f: usize| vecs2[f][0] as f64 * 5.0 - vecs2[f][1] as f64 * 0.1 + 10.0;
        let mut s = SelectionLogic::TwoKFactorial.build(
            6,
            &vecs,
            &attrs,
            &func_names(6),
            3,
            3,
            FilterKind::default(),
        );
        let (w, iters) = drive(s.as_mut(), 6, cost);
        assert_eq!(vecs[w], vec![0, 20]);
        // 4 corners x 3 reps.
        assert_eq!(iters, 12);
    }

    #[test]
    fn nearest_function_normalizes_ranges() {
        let (vecs, attrs) = grid_attrs();
        // Target exactly a function.
        assert_eq!(nearest_function(&vecs, &[2, 10], &attrs), 4);
        // Off-grid target snaps to the closest in scaled space.
        let n = nearest_function(&vecs, &[2, 13], &attrs);
        assert_eq!(vecs[n], vec![2, 10]);
    }

    #[test]
    fn best_so_far_before_convergence() {
        let (vecs, attrs) = grid_attrs();
        let mut s = SelectionLogic::BruteForce.build(
            6,
            &vecs,
            &attrs,
            &func_names(6),
            10,
            10,
            FilterKind::default(),
        );
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); 6];
        // Measure two functions only.
        let f = s.next_assignment(&samples);
        samples[f].push(5.0);
        samples[1].push(1.0);
        assert_eq!(s.best_so_far(&samples), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fixed_out_of_range_rejected() {
        let (vecs, attrs) = grid_attrs();
        SelectionLogic::Fixed(9).build(
            6,
            &vecs,
            &attrs,
            &func_names(6),
            1,
            1,
            FilterKind::default(),
        );
    }

    #[test]
    fn racing_eliminates_slow_candidate_after_block_one() {
        let (vecs, attrs) = grid_attrs();
        let mut s = SelectionLogic::Racing(2).build(
            6,
            &vecs,
            &attrs,
            &func_names(6),
            6,
            6,
            FilterKind::default(),
        );
        // Candidate 3 is deliberately ~30x slower; the fast ones overlap
        // (per-call jitter wider than their separation) so they survive
        // the early blocks and keep racing.
        let mut call = 0usize;
        let (w, iters) = drive(s.as_mut(), 6, move |f| {
            call += 1;
            let jitter = (call % 4) as f64;
            if f == 3 {
                100.0 + jitter
            } else {
                1.0 + jitter
            }
        });
        assert_ne!(w, 3, "the slow candidate must never win");
        let elim = s.eliminations().expect("racing records eliminations");
        assert_eq!(elim[3], Some(1), "slow candidate dropped after block 1");
        assert_eq!(elim[w], None, "the winner is never eliminated");
        // Brute force would spend 6 functions x 6 reps = 36 learning
        // iterations; elimination must cut that.
        assert!(iters < 36, "racing spent {iters} iterations, expected < 36");
    }

    #[test]
    fn racing_matches_brute_force_on_well_separated_costs() {
        let (vecs, attrs) = grid_attrs();
        let cost = |f: usize| 10.0 + ((f as f64) - 4.0).abs();
        let mut r = SelectionLogic::Racing(2).build(
            6,
            &vecs,
            &attrs,
            &func_names(6),
            4,
            4,
            FilterKind::default(),
        );
        let (wr, r_iters) = drive(r.as_mut(), 6, cost);
        let mut b = SelectionLogic::BruteForce.build(
            6,
            &vecs,
            &attrs,
            &func_names(6),
            4,
            4,
            FilterKind::default(),
        );
        let (wb, b_iters) = drive(b.as_mut(), 6, cost);
        assert_eq!(wr, wb, "racing winner must match brute force");
        assert!(r_iters <= b_iters);
    }

    #[test]
    fn racing_reruns_are_byte_identical() {
        // Same oracle, two runs: the emitted assignment sequence (hence
        // every simulated event) must match exactly.
        let (vecs, attrs) = grid_attrs();
        let run = || {
            let mut s = SelectionLogic::Racing(2).build(
                6,
                &vecs,
                &attrs,
                &func_names(6),
                5,
                5,
                FilterKind::default(),
            );
            let mut samples: Vec<Vec<f64>> = vec![Vec::new(); 6];
            let mut seq = Vec::new();
            let mut call = 0usize;
            while s.winner().is_none() {
                let f = s.next_assignment(&samples);
                seq.push(f);
                call += 1;
                samples[f].push(if f == 2 { 1.0 } else { 3.0 + (call % 3) as f64 });
                if call > 10_000 {
                    panic!("no convergence");
                }
            }
            (seq, s.winner())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn racing_single_candidate_commits() {
        let attrs = AttributeSet::from_functions(&[], &[vec![]]);
        let mut s = SelectionLogic::Racing(2).build(
            1,
            &[vec![]],
            &attrs,
            &func_names(1),
            3,
            3,
            FilterKind::default(),
        );
        let (w, iters) = drive(s.as_mut(), 1, |_| 1.0);
        assert_eq!(w, 0);
        assert!(iters <= 3);
    }

    #[test]
    fn racing_env_spec_parses() {
        assert_eq!(parse_racing(None), RacingEnv::Unset);
        assert_eq!(parse_racing(Some("")), RacingEnv::Unset);
        assert_eq!(parse_racing(Some("off")), RacingEnv::Off);
        assert_eq!(parse_racing(Some("0")), RacingEnv::Off);
        assert_eq!(
            parse_racing(Some("on")),
            RacingEnv::On(DEFAULT_RACING_BLOCK)
        );
        assert_eq!(parse_racing(Some("ON:4")), RacingEnv::On(4));
        assert_eq!(parse_racing(Some("on:0")), RacingEnv::Unset);
        assert_eq!(parse_racing(Some("bogus")), RacingEnv::Unset);
    }
}
