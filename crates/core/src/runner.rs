//! The ADCL runtime: persistent requests, the progress interface, and the
//! behaviour that drives application scripts inside the simulated world.
//!
//! The public high-level API of ADCL 2.0 (Fig. 1 of the paper) maps onto
//! this module as follows:
//!
//! | paper API | here |
//! |---|---|
//! | `ADCL_Ialltoall_init(...)` | [`TunedOp`] added to a [`TuningSession`] |
//! | `ADCL_Timer_create(req, &timer)` | [`TuningSession::add_timer`] |
//! | `ADCL_Timer_start/_end` | [`Instr::TimerStart`] / [`Instr::TimerStop`] |
//! | `ADCL_Request_init` (start op) | [`Instr::Start`] |
//! | `ADCL_Progress` | [`Instr::Progress`] |
//! | `ADCL_Request_wait` | [`Instr::Wait`] |
//!
//! Application code is expressed as a per-rank [`Script`] — a lazy stream
//! of instructions — and the [`Runner`] interprets it as a
//! [`mpisim::RankBehavior`], charging realistic CPU costs for every
//! library visit. Operations support multiple concurrently outstanding
//! instances (slots), which the windowed FFT patterns rely on.

use crate::function::FunctionSet;
use crate::timer::Timer;
use crate::tuner::{Tuner, TunerConfig};
use mpisim::{RankBehavior, RankId, Step, Tag, World};
use nbc::executor::ScheduleExec;
use simcore::SimTime;
use std::collections::HashMap;

/// One instruction of an application script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// Compute (application work) for the given duration.
    Compute(SimTime),
    /// Open timer `timer`'s measurement window.
    TimerStart(usize),
    /// Close timer `timer`'s measurement window.
    TimerStop(usize),
    /// Initiate operation `op` into instance slot `slot`.
    Start { op: usize, slot: usize },
    /// Invoke the ADCL progress engine for operation `op` (all outstanding
    /// instances). Costs the platform's progress-call overhead.
    Progress { op: usize },
    /// Wait for instance `slot` of operation `op` to complete.
    Wait { op: usize, slot: usize },
}

/// A lazy per-rank instruction stream.
pub trait Script {
    /// The next instruction, or `None` when the rank's program ends.
    fn next(&mut self) -> Option<Instr>;
}

/// A persistent, tuned collective operation (the ADCL request plus its
/// selection state).
pub struct TunedOp {
    /// Operation name for reports.
    pub name: String,
    /// The implementation pool.
    pub fnset: FunctionSet,
    /// Selection state (shared across ranks — the simulation equivalent of
    /// ADCL's agreed decision schedule).
    pub tuner: Tuner,
    /// Timer this operation is measured/co-tuned under, if any.
    pub timer: Option<usize>,
    /// Sub-communicator (global ranks, in local-rank order); `None` means
    /// the world communicator.
    pub comm: Option<std::rc::Rc<Vec<RankId>>>,
    base_tag: u64,
    per_rank: Vec<RankOpState>,
}

struct RankOpState {
    /// Outstanding instances by slot.
    instances: HashMap<usize, Instance>,
    /// Monotone per-rank instance counter (tags); identical across ranks
    /// because all ranks start instances in the same order.
    instance_count: u64,
    /// Iteration counter used when the op has no timer.
    own_iter: usize,
}

struct Instance {
    exec: ScheduleExec,
}

impl TunedOp {
    fn new(name: &str, fnset: FunctionSet, tuner: Tuner, base_tag: u64, nranks: usize) -> TunedOp {
        TunedOp {
            name: name.to_string(),
            fnset,
            tuner,
            timer: None,
            comm: None,
            base_tag,
            per_rank: (0..nranks)
                .map(|_| RankOpState {
                    instances: HashMap::new(),
                    instance_count: 0,
                    own_iter: 0,
                })
                .collect(),
        }
    }

    /// Start one instance. `iter` is the tuning iteration; `active` says
    /// whether this op is the one currently learning under its timer.
    /// Returns `(cpu_cost, blocking)`.
    fn start_instance(
        &mut self,
        w: &mut World,
        rank: RankId,
        slot: usize,
        iter: usize,
        active: bool,
    ) -> (SimTime, bool) {
        let f_idx = if active {
            self.tuner.function_for_iter(iter)
        } else {
            self.tuner.frozen_for_iter(iter)
        };
        let func = &self.fnset.functions[f_idx];
        // Schedules are built against communicator-local ranks.
        let local = match &self.comm {
            Some(c) => c
                .iter()
                .position(|&g| g == rank)
                .unwrap_or_else(|| panic!("op {}: rank {rank} not in communicator", self.name)),
            None => rank,
        };
        let sched = (func.builder)(local, &self.fnset.spec);
        let st = &mut self.per_rank[rank];
        let tag = Tag((self.base_tag << 40) | st.instance_count);
        st.instance_count += 1;
        st.own_iter = iter + 1;
        let mut exec = match &self.comm {
            Some(c) => ScheduleExec::new_on_comm(rank, tag, sched, c.clone()),
            None => ScheduleExec::new(rank, tag, sched),
        };
        let now = w.rank_now(rank);
        let cost = exec.start(w, now);
        let blocking = func.blocking;
        let prev = st.instances.insert(slot, Instance { exec });
        assert!(
            prev.is_none(),
            "op {}: slot {slot} already in use",
            self.name
        );
        (cost, blocking)
    }

    /// Progress every outstanding instance on `rank`. `explicit` adds the
    /// platform's progress-call overhead (an `ADCL_Progress` visit);
    /// wait-loop polling passes `false`.
    fn progress_all(&mut self, w: &mut World, rank: RankId, explicit: bool) -> SimTime {
        let outstanding: usize = self.per_rank[rank]
            .instances
            .values()
            .map(|i| i.exec.outstanding_actions())
            .sum();
        let mut cost = if explicit {
            w.platform().progress_cost(outstanding)
        } else {
            SimTime::ZERO
        };
        let mut slots: Vec<usize> = self.per_rank[rank].instances.keys().copied().collect();
        slots.sort_unstable();
        for slot in slots {
            let now = w.rank_now(rank) + cost;
            let inst = self.per_rank[rank].instances.get_mut(&slot).expect("slot");
            let (c, _done) = inst.exec.try_progress(w, now);
            cost += c;
        }
        cost
    }

    /// Progress only instance `slot`; returns `(cost, done)`.
    fn progress_instance(&mut self, w: &mut World, rank: RankId, slot: usize) -> (SimTime, bool) {
        let now = w.rank_now(rank);
        let inst = self.per_rank[rank]
            .instances
            .get_mut(&slot)
            .unwrap_or_else(|| panic!("op {}: wait on empty slot {slot}", self.name));
        inst.exec.try_progress(w, now)
    }

    fn finish_instance(&mut self, rank: RankId, slot: usize) {
        self.per_rank[rank].instances.remove(&slot);
    }

    /// True if `slot` holds an outstanding instance on `rank`.
    fn has_instance(&self, rank: RankId, slot: usize) -> bool {
        self.per_rank[rank].instances.contains_key(&slot)
    }

    /// Iteration counter for ops without a timer.
    fn own_iter(&self, rank: RankId) -> usize {
        self.per_rank[rank].own_iter
    }
}

/// A set of tuned operations and timers forming one tuning run.
#[derive(Default)]
pub struct TuningSession {
    /// The operations, indexed by the ids scripts refer to.
    pub ops: Vec<TunedOp>,
    /// The timers, indexed likewise.
    pub timers: Vec<Timer>,
    nranks: usize,
}

impl TuningSession {
    /// A session over `nranks` ranks.
    pub fn new(nranks: usize) -> TuningSession {
        TuningSession {
            ops: Vec::new(),
            timers: Vec::new(),
            nranks,
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Register a tuned operation; returns its op id.
    pub fn add_op(&mut self, name: &str, fnset: FunctionSet, cfg: TunerConfig) -> usize {
        let tuner = Tuner::new(&fnset, cfg);
        self.add_op_with_tuner(name, fnset, tuner)
    }

    /// Register an operation with a pre-built tuner (e.g. seeded from the
    /// history store).
    pub fn add_op_with_tuner(&mut self, name: &str, fnset: FunctionSet, mut tuner: Tuner) -> usize {
        let id = self.ops.len();
        // Default audit-log context; drivers overwrite it with a richer
        // label (platform/shape/strategy) when one is known.
        tuner.set_label(name);
        self.ops
            .push(TunedOp::new(name, fnset, tuner, id as u64 + 1, self.nranks));
        id
    }

    /// Register an operation on a sub-communicator: `comm` lists the
    /// participating global ranks in local-rank order; the function-set's
    /// `spec.nprocs` must equal `comm.len()`. Only members may start or
    /// wait on this op.
    pub fn add_op_on_comm(
        &mut self,
        name: &str,
        fnset: FunctionSet,
        cfg: TunerConfig,
        comm: Vec<RankId>,
    ) -> usize {
        assert_eq!(
            fnset.spec.nprocs,
            comm.len(),
            "function-set sized for {} ranks but communicator has {}",
            fnset.spec.nprocs,
            comm.len()
        );
        assert!(
            comm.iter().all(|&r| r < self.nranks),
            "communicator rank out of range"
        );
        let id = self.add_op(name, fnset, cfg);
        self.ops[id].comm = Some(std::rc::Rc::new(comm));
        id
    }

    /// Create a timer over only the member ranks of `ops`' communicators
    /// (they must share one membership). Use for sections executed by a
    /// sub-communicator.
    pub fn add_timer_subset(&mut self, ops: Vec<usize>, members: &[RankId]) -> usize {
        let id = self.timers.len();
        for &op in &ops {
            assert!(op < self.ops.len(), "timer refers to unknown op {op}");
            self.ops[op].timer = Some(id);
        }
        self.timers
            .push(Timer::new_subset(self.nranks, members, ops));
        id
    }

    /// Create a timer measuring (and co-tuning) the given operations;
    /// returns its timer id.
    pub fn add_timer(&mut self, ops: Vec<usize>) -> usize {
        let id = self.timers.len();
        for &op in &ops {
            assert!(op < self.ops.len(), "timer refers to unknown op {op}");
            self.ops[op].timer = Some(id);
        }
        self.timers.push(Timer::new(self.nranks, ops));
        id
    }

    /// The op among `timer`'s attached ops that is currently learning
    /// (first unconverged, in attachment order).
    fn active_op_now(&self, timer: usize) -> Option<usize> {
        self.timers[timer]
            .ops
            .iter()
            .copied()
            .find(|&op| self.ops[op].tuner.winner().is_none())
    }
}

/// Interprets per-rank scripts against a [`TuningSession`] inside the
/// simulated world.
pub struct Runner {
    /// The session being executed (holds all results after the run).
    pub session: TuningSession,
    scripts: Vec<Box<dyn Script>>,
    waiting: Vec<Option<(usize, usize)>>,
}

impl Runner {
    /// Pair a session with one script per rank.
    ///
    /// # Panics
    /// Panics if the script count differs from the session's rank count.
    pub fn new(session: TuningSession, scripts: Vec<Box<dyn Script>>) -> Runner {
        assert_eq!(
            scripts.len(),
            session.nranks(),
            "one script per rank required"
        );
        let n = scripts.len();
        Runner {
            session,
            scripts,
            waiting: vec![None; n],
        }
    }

    /// Tuning iteration for `op` as seen by `rank` (its timer's window
    /// count, or the op's own start counter when untimed).
    fn iter_for(&self, op: usize, rank: RankId) -> usize {
        match self.session.ops[op].timer {
            Some(t) => self.session.timers[t].iter_of(rank),
            None => self.session.ops[op].own_iter(rank),
        }
    }

    /// Whether `op` is actively learning in iteration `iter` (memoized per
    /// timer so racing ranks agree).
    fn is_active(&mut self, op: usize, iter: usize) -> bool {
        let Some(t) = self.session.ops[op].timer else {
            return true;
        };
        let active = {
            let memo = &self.session.timers[t].active_memo;
            if iter < memo.len() {
                memo[iter]
            } else {
                let a = self.session.active_op_now(t);
                let memo = &mut self.session.timers[t].active_memo;
                while memo.len() <= iter {
                    memo.push(a);
                }
                a
            }
        };
        active == Some(op) || active.is_none()
    }

    fn record_iteration(&mut self, timer: usize, iter: usize, elapsed: f64) {
        let active = self.session.timers[timer]
            .active_memo
            .get(iter)
            .copied()
            .flatten();
        // Attribute the measurement to the op that was learning in this
        // iteration; if all ops had converged, record to each winner's
        // sample set (harmless, keeps statistics flowing).
        match active {
            Some(op) => self.session.ops[op].tuner.record(iter, elapsed),
            None => {
                let ops = self.session.timers[timer].ops.clone();
                for op in ops {
                    self.session.ops[op].tuner.record(iter, elapsed);
                }
            }
        }
    }
}

impl RankBehavior for Runner {
    fn step(&mut self, w: &mut World, rank: RankId) -> Step {
        loop {
            // Finish an in-progress wait before consuming instructions.
            if let Some((op, slot)) = self.waiting[rank] {
                let (cost, done) = self.session.ops[op].progress_instance(w, rank, slot);
                if done {
                    self.session.ops[op].finish_instance(rank, slot);
                    self.waiting[rank] = None;
                    if cost > SimTime::ZERO {
                        return Step::Busy(cost);
                    }
                    continue;
                }
                if cost > SimTime::ZERO {
                    return Step::Busy(cost);
                }
                return Step::Block;
            }
            let Some(instr) = self.scripts[rank].next() else {
                return Step::Done;
            };
            match instr {
                Instr::Compute(d) => return Step::Compute(d),
                Instr::TimerStart(t) => {
                    let now = w.rank_now(rank);
                    self.session.timers[t].start(rank, now);
                }
                Instr::TimerStop(t) => {
                    let now = w.rank_now(rank);
                    if let Some((iter, elapsed)) = self.session.timers[t].stop(rank, now) {
                        self.record_iteration(t, iter, elapsed);
                    }
                }
                Instr::Start { op, slot } => {
                    let iter = self.iter_for(op, rank);
                    let active = self.is_active(op, iter);
                    let (cost, blocking) =
                        self.session.ops[op].start_instance(w, rank, slot, iter, active);
                    if blocking {
                        // Blocking variant: the operation completes inside
                        // the call — the request's wait pointer is NULL.
                        self.waiting[rank] = Some((op, slot));
                    }
                    if cost > SimTime::ZERO {
                        return Step::Busy(cost);
                    }
                }
                Instr::Progress { op } => {
                    let cost = self.session.ops[op].progress_all(w, rank, true);
                    if cost > SimTime::ZERO {
                        return Step::Busy(cost);
                    }
                }
                Instr::Wait { op, slot } => {
                    // A wait on an empty slot is a no-op: this is exactly
                    // the "blocking function = NULL wait pointer" case —
                    // the operation already completed inside `start`.
                    if self.session.ops[op].has_instance(rank, slot) {
                        self.waiting[rank] = Some((op, slot));
                    }
                }
            }
        }
    }
}

/// A pre-materialized instruction list (convenient for tests and short
/// scripts).
pub struct VecScript {
    instrs: std::vec::IntoIter<Instr>,
}

impl VecScript {
    /// Wrap an instruction vector.
    pub fn new(instrs: Vec<Instr>) -> VecScript {
        VecScript {
            instrs: instrs.into_iter(),
        }
    }

    /// Box a vector of instruction vectors into per-rank scripts.
    pub fn boxed(per_rank: Vec<Vec<Instr>>) -> Vec<Box<dyn Script>> {
        per_rank
            .into_iter()
            .map(|v| Box::new(VecScript::new(v)) as Box<dyn Script>)
            .collect()
    }
}

impl Script for VecScript {
    fn next(&mut self) -> Option<Instr> {
        self.instrs.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterKind;
    use crate::strategy::SelectionLogic;
    use mpisim::NoiseConfig;
    use nbc::schedule::CollSpec;
    use netmodel::{Placement, Platform};

    fn simple_loop(op: usize, timer: usize, iters: usize, compute: SimTime) -> Vec<Instr> {
        let mut v = Vec::new();
        for _ in 0..iters {
            v.push(Instr::TimerStart(timer));
            v.push(Instr::Start { op, slot: 0 });
            v.push(Instr::Compute(compute));
            v.push(Instr::Progress { op });
            v.push(Instr::Wait { op, slot: 0 });
            v.push(Instr::TimerStop(timer));
        }
        v
    }

    fn run_session(nranks: usize, logic: SelectionLogic, iters: usize) -> (TuningSession, SimTime) {
        let mut w = World::new(
            Platform::whale(),
            nranks,
            Placement::Block,
            NoiseConfig::none(),
        );
        let mut session = TuningSession::new(nranks);
        let fnset = FunctionSet::ialltoall_default(CollSpec::new(nranks, 1024));
        let cfg = TunerConfig {
            logic,
            reps: 3,
            warmup: 1,
            filter: FilterKind::default(),
        };
        let op = session.add_op("ialltoall", fnset, cfg);
        let timer = session.add_timer(vec![op]);
        let scripts = VecScript::boxed(
            (0..nranks)
                .map(|_| simple_loop(op, timer, iters, SimTime::from_micros(200)))
                .collect(),
        );
        let mut runner = Runner::new(session, scripts);
        let makespan = w.run(&mut runner).expect("no deadlock");
        (runner.session, makespan)
    }

    #[test]
    fn brute_force_converges_in_benchmark_loop() {
        let (session, makespan) = run_session(8, SelectionLogic::BruteForce, 20);
        let op = &session.ops[0];
        assert!(op.tuner.winner().is_some(), "should converge after 9 iters");
        assert_eq!(session.timers[0].history().len(), 20);
        assert!(makespan >= SimTime::from_micros(200) * 20);
        // Convergence right after the 3 functions x 3 reps learning phase,
        // plus at most a couple of provisional iterations while the last
        // measurements are reported by lagging ranks.
        let conv = op
            .tuner
            .converged_at()
            .expect("tuner did not converge within 20 iters");
        assert!((9..=11).contains(&conv), "converged at {conv}");
    }

    #[test]
    fn non_convergence_is_reported_not_a_panic() {
        // Too few iterations for the 3 functions x 3 reps learning phase:
        // the tuner must report "no winner yet" rather than panicking when
        // the caller asks where it converged.
        let (session, _) = run_session(4, SelectionLogic::BruteForce, 4);
        let op = &session.ops[0];
        assert!(op.tuner.winner().is_none(), "4 iters cannot converge");
        assert!(
            op.tuner.converged_at().is_none(),
            "converged_at must stay None without a winner"
        );
    }

    #[test]
    fn fixed_logic_never_switches() {
        let (session, _) = run_session(4, SelectionLogic::Fixed(2), 6);
        let op = &session.ops[0];
        assert!(op.tuner.assignments().iter().all(|&f| f == 2));
    }

    #[test]
    fn timer_history_reflects_compute_floor() {
        let (session, _) = run_session(4, SelectionLogic::Fixed(0), 5);
        for &t in session.timers[0].history() {
            assert!(t >= 200e-6, "iteration can't beat its compute time: {t}");
        }
    }

    #[test]
    fn winner_is_plausible() {
        // On whale with 8 ranks / 1 KiB the tuned result must be at least
        // as good as the worst fixed choice.
        let (tuned, _) = run_session(8, SelectionLogic::BruteForce, 30);
        let winner = tuned.ops[0].tuner.winner().unwrap();
        let mut scores = Vec::new();
        for f in 0..3 {
            let (fixed, _) = run_session(8, SelectionLogic::Fixed(f), 30);
            scores.push(fixed.timers[0].total_from(10));
        }
        let best = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst = scores.iter().cloned().fold(0.0f64, f64::max);
        let winner_score = scores[winner];
        assert!(
            winner_score <= best * 1.10 || winner_score < worst,
            "winner {winner} score {winner_score} vs best {best}"
        );
    }

    #[test]
    fn blocking_function_completes_inside_start() {
        let nranks = 4;
        let mut w = World::new(
            Platform::whale(),
            nranks,
            Placement::Block,
            NoiseConfig::none(),
        );
        let mut session = TuningSession::new(nranks);
        let fnset = FunctionSet::ialltoall_extended(CollSpec::new(nranks, 2048));
        let blocking_idx = fnset.index_of("linear-blocking").unwrap();
        let op = session.add_op(
            "ialltoall-ext",
            fnset,
            TunerConfig {
                logic: SelectionLogic::Fixed(blocking_idx),
                reps: 1,
                warmup: 0,
                filter: FilterKind::default(),
            },
        );
        let timer = session.add_timer(vec![op]);
        let scripts = VecScript::boxed(
            (0..nranks)
                .map(|_| simple_loop(op, timer, 3, SimTime::from_micros(50)))
                .collect(),
        );
        let mut runner = Runner::new(session, scripts);
        w.run(&mut runner).expect("no deadlock");
        assert_eq!(runner.session.timers[0].history().len(), 3);
    }

    #[test]
    fn multiple_outstanding_instances() {
        // Window of 2 concurrent alltoalls per iteration.
        let nranks = 4;
        let mut w = World::new(
            Platform::whale(),
            nranks,
            Placement::Block,
            NoiseConfig::none(),
        );
        let mut session = TuningSession::new(nranks);
        let fnset = FunctionSet::ialltoall_default(CollSpec::new(nranks, 512));
        let op = session.add_op(
            "ialltoall",
            fnset,
            TunerConfig {
                logic: SelectionLogic::Fixed(0),
                reps: 1,
                warmup: 0,
                filter: FilterKind::default(),
            },
        );
        let timer = session.add_timer(vec![op]);
        let mk = || {
            let mut v = Vec::new();
            for _ in 0..4 {
                v.push(Instr::TimerStart(timer));
                v.push(Instr::Start { op, slot: 0 });
                v.push(Instr::Start { op, slot: 1 });
                v.push(Instr::Compute(SimTime::from_micros(100)));
                v.push(Instr::Progress { op });
                v.push(Instr::Wait { op, slot: 0 });
                v.push(Instr::Wait { op, slot: 1 });
                v.push(Instr::TimerStop(timer));
            }
            v
        };
        let scripts = VecScript::boxed((0..nranks).map(|_| mk()).collect());
        let mut runner = Runner::new(session, scripts);
        w.run(&mut runner).expect("no deadlock");
        assert_eq!(runner.session.timers[0].history().len(), 4);
    }

    #[test]
    #[should_panic(expected = "slot 0 already in use")]
    fn double_start_same_slot_panics() {
        let mut w = World::new(Platform::whale(), 2, Placement::Block, NoiseConfig::none());
        let mut session = TuningSession::new(2);
        let fnset = FunctionSet::ialltoall_default(CollSpec::new(2, 64));
        let op = session.add_op(
            "a2a",
            fnset,
            TunerConfig {
                logic: SelectionLogic::Fixed(0),
                reps: 1,
                warmup: 0,
                filter: FilterKind::default(),
            },
        );
        let scripts = VecScript::boxed(vec![
            vec![Instr::Start { op, slot: 0 }, Instr::Start { op, slot: 0 }],
            vec![],
        ]);
        let mut runner = Runner::new(session, scripts);
        let _ = w.run(&mut runner);
    }

    #[test]
    #[should_panic(expected = "unknown op")]
    fn timer_with_unknown_op_panics() {
        let mut session = TuningSession::new(2);
        session.add_timer(vec![3]);
    }

    #[test]
    #[should_panic(expected = "one script per rank")]
    fn script_count_mismatch_panics() {
        let session = TuningSession::new(4);
        Runner::new(session, VecScript::boxed(vec![vec![], vec![]]));
    }

    #[test]
    fn untimed_op_uses_own_iteration_counter() {
        // No timer: the op's own start counter drives the tuner, so the
        // brute-force learning still cycles functions.
        let nranks = 4;
        let mut w = World::new(
            Platform::whale(),
            nranks,
            Placement::Block,
            NoiseConfig::none(),
        );
        let mut session = TuningSession::new(nranks);
        let fnset = FunctionSet::ialltoall_default(CollSpec::new(nranks, 256));
        let op = session.add_op(
            "a2a",
            fnset,
            TunerConfig {
                logic: SelectionLogic::BruteForce,
                reps: 1,
                warmup: 0,
                filter: FilterKind::default(),
            },
        );
        let mk = || {
            let mut v = Vec::new();
            for _ in 0..6 {
                v.push(Instr::Start { op, slot: 0 });
                v.push(Instr::Wait { op, slot: 0 });
            }
            v
        };
        let scripts = VecScript::boxed((0..nranks).map(|_| mk()).collect());
        let mut runner = Runner::new(session, scripts);
        w.run(&mut runner).expect("no deadlock");
        // All three functions were assigned during the first three starts.
        let assigned: Vec<usize> = runner.session.ops[op].tuner.assignments()[..3].to_vec();
        assert_eq!(assigned, vec![0, 1, 2]);
    }

    #[test]
    fn ibcast_runs_through_runner() {
        // A rooted, segmented operation through the full runtime.
        let nranks = 8;
        let mut w = World::new(
            Platform::whale(),
            nranks,
            Placement::Block,
            NoiseConfig::none(),
        );
        let mut session = TuningSession::new(nranks);
        let fnset = FunctionSet::ibcast_default(CollSpec::new(nranks, 256 * 1024));
        let op = session.add_op(
            "ibcast",
            fnset,
            TunerConfig {
                logic: SelectionLogic::Fixed(6), // tree2-seg32k region
                reps: 1,
                warmup: 0,
                filter: FilterKind::default(),
            },
        );
        let timer = session.add_timer(vec![op]);
        let scripts = VecScript::boxed(
            (0..nranks)
                .map(|_| simple_loop(op, timer, 4, SimTime::from_micros(300)))
                .collect(),
        );
        let mut runner = Runner::new(session, scripts);
        w.run(&mut runner).expect("no deadlock");
        assert_eq!(runner.session.timers[timer].history().len(), 4);
    }

    #[test]
    fn subcommunicators_tune_independently() {
        // Two disjoint halves of an 8-rank world each tune their own
        // all-to-all with different message sizes; the winners may differ
        // and the runs do not interfere.
        let nranks = 8;
        let mut w = World::new(
            Platform::whale(),
            nranks,
            Placement::Block,
            NoiseConfig::none(),
        );
        let mut session = TuningSession::new(nranks);
        let comm_a: Vec<usize> = (0..4).collect();
        let comm_b: Vec<usize> = (4..8).collect();
        let cfg = TunerConfig {
            logic: SelectionLogic::BruteForce,
            reps: 2,
            warmup: 0,
            filter: FilterKind::default(),
        };
        let op_a = session.add_op_on_comm(
            "a2a-small",
            FunctionSet::ialltoall_default(CollSpec::new(4, 512)),
            cfg,
            comm_a.clone(),
        );
        let op_b = session.add_op_on_comm(
            "a2a-large",
            FunctionSet::ialltoall_default(CollSpec::new(4, 256 * 1024)),
            cfg,
            comm_b.clone(),
        );
        let timer_a = session.add_timer_subset(vec![op_a], &comm_a);
        let timer_b = session.add_timer_subset(vec![op_b], &comm_b);
        let iters = 12;
        let mk = |op: usize, timer: usize| {
            let mut v = Vec::new();
            for _ in 0..iters {
                v.push(Instr::TimerStart(timer));
                v.push(Instr::Start { op, slot: 0 });
                v.push(Instr::Compute(SimTime::from_micros(500)));
                v.push(Instr::Progress { op });
                v.push(Instr::Wait { op, slot: 0 });
                v.push(Instr::TimerStop(timer));
            }
            v
        };
        let scripts = VecScript::boxed(
            (0..nranks)
                .map(|r| {
                    if r < 4 {
                        mk(op_a, timer_a)
                    } else {
                        mk(op_b, timer_b)
                    }
                })
                .collect(),
        );
        let mut runner = Runner::new(session, scripts);
        w.run(&mut runner).expect("no deadlock");
        let s = runner.session;
        assert!(s.ops[op_a].tuner.winner().is_some(), "half A converged");
        assert!(s.ops[op_b].tuner.winner().is_some(), "half B converged");
        assert_eq!(s.timers[timer_a].history().len(), iters);
        assert_eq!(s.timers[timer_b].history().len(), iters);
    }

    #[test]
    #[should_panic(expected = "not in communicator")]
    fn non_member_start_panics() {
        let mut w = World::new(Platform::whale(), 4, Placement::Block, NoiseConfig::none());
        let mut session = TuningSession::new(4);
        let op = session.add_op_on_comm(
            "a2a",
            FunctionSet::ialltoall_default(CollSpec::new(2, 64)),
            TunerConfig {
                logic: SelectionLogic::Fixed(0),
                reps: 1,
                warmup: 0,
                filter: FilterKind::default(),
            },
            vec![0, 1],
        );
        // Rank 3 (not a member) tries to start the op.
        let scripts = VecScript::boxed(vec![
            vec![],
            vec![],
            vec![],
            vec![Instr::Start { op, slot: 0 }],
        ]);
        let mut runner = Runner::new(session, scripts);
        let _ = w.run(&mut runner);
    }

    #[test]
    #[should_panic(expected = "function-set sized for")]
    fn comm_size_mismatch_panics() {
        let mut session = TuningSession::new(8);
        session.add_op_on_comm(
            "a2a",
            FunctionSet::ialltoall_default(CollSpec::new(4, 64)),
            TunerConfig::default(),
            vec![0, 1, 2],
        );
    }

    #[test]
    fn cotuning_two_ops_sequentially() {
        let nranks = 4;
        let mut w = World::new(
            Platform::whale(),
            nranks,
            Placement::Block,
            NoiseConfig::none(),
        );
        let mut session = TuningSession::new(nranks);
        let cfg = TunerConfig {
            logic: SelectionLogic::BruteForce,
            reps: 2,
            warmup: 1,
            filter: FilterKind::default(),
        };
        let op_a = session.add_op(
            "alltoall",
            FunctionSet::ialltoall_default(CollSpec::new(nranks, 512)),
            cfg,
        );
        let op_b = session.add_op(
            "allgather",
            FunctionSet::iallgather_default(CollSpec::new(nranks, 512)),
            cfg,
        );
        let timer = session.add_timer(vec![op_a, op_b]);
        let iters = 20;
        let mk = || {
            let mut v = Vec::new();
            for _ in 0..iters {
                v.push(Instr::TimerStart(timer));
                v.push(Instr::Start { op: op_a, slot: 0 });
                v.push(Instr::Compute(SimTime::from_micros(50)));
                v.push(Instr::Progress { op: op_a });
                v.push(Instr::Wait { op: op_a, slot: 0 });
                v.push(Instr::Start { op: op_b, slot: 0 });
                v.push(Instr::Compute(SimTime::from_micros(50)));
                v.push(Instr::Progress { op: op_b });
                v.push(Instr::Wait { op: op_b, slot: 0 });
                v.push(Instr::TimerStop(timer));
            }
            v
        };
        let scripts = VecScript::boxed((0..nranks).map(|_| mk()).collect());
        let mut runner = Runner::new(session, scripts);
        w.run(&mut runner).expect("no deadlock");
        let s = runner.session;
        // op A learns first (3 functions x 2 reps = 6 iterations), then B.
        assert!(s.ops[0].tuner.winner().is_some(), "op A converged");
        assert!(s.ops[1].tuner.winner().is_some(), "op B converged");
        let a_conv = s.ops[0]
            .tuner
            .converged_at()
            .expect("tuner A did not converge within 20 iters");
        let b_conv = s.ops[1]
            .tuner
            .converged_at()
            .expect("tuner B did not converge within 20 iters");
        assert!(a_conv <= b_conv, "A ({a_conv}) tunes before B ({b_conv})");
    }
}
