//! Historic learning: persisting tuning decisions across executions.
//!
//! ADCL can transfer knowledge between runs of an application: once a
//! winner is known for an (operation, platform, process count, message
//! size, ...) scenario, a later execution can skip — or shorten — the
//! learning phase (§IV-B). The store is a simple line-oriented text file
//! (`key\twinner\tscore\tmargin`), deliberately free of external
//! dependencies, and is the durability layer behind the `adcld` tuning
//! daemon.
//!
//! Format (`v2`):
//!
//! ```text
//! # adcl-rs history v2
//! # gen 3
//! # ctx s7/d0.001/u0.0005/j0.1/r3
//! ialltoall|whale|32|131072\tpairwise\t1.50000000000000003e-3\t2.00000000000000011e-1
//! ```
//!
//! * `gen` counts successful saves (monotone across checkpoints) so
//!   observers can tell snapshots apart.
//! * `ctx` is an opaque environment fingerprint (e.g. the fault-injection
//!   profile) — a loader whose context differs must treat the entries as
//!   stale rather than serve decisions measured under different physics.
//! * Scores and margins use `{:.17e}` so `save`→`load` round-trips `f64`
//!   bit-exactly; 9 significant digits (the old format) silently lost the
//!   low mantissa bits and broke staleness comparisons.
//! * `save` writes a same-directory temp file and atomically renames it
//!   over the target, so a reader (or a crash) never observes a torn file.
//! * v1 files (three fields, no directives) still load; missing margins
//!   default to `0.0`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Characters that cannot appear in key components (field separators of
/// the on-disk format). A name containing one of these would shift fields
/// on decode, so [`HistoryStore::put`] rejects them up front.
const RESERVED: [char; 4] = ['|', '\t', '\n', '\r'];

/// Error for rejected store mutations (reserved characters, empty names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryError(pub String);

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "history: {}", self.0)
    }
}

impl std::error::Error for HistoryError {}

fn check_component(what: &str, s: &str) -> Result<(), HistoryError> {
    if s.is_empty() {
        return Err(HistoryError(format!("{what} must not be empty")));
    }
    if let Some(c) = s.chars().find(|c| RESERVED.contains(c)) {
        return Err(HistoryError(format!(
            "{what} {s:?} contains reserved character {c:?}"
        )));
    }
    Ok(())
}

/// Scenario key for a stored decision.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HistoryKey {
    /// Operation name (e.g. `"ialltoall"`).
    pub op: String,
    /// Platform name (e.g. `"whale"`).
    pub platform: String,
    /// Number of processes.
    pub nprocs: usize,
    /// Message size in bytes.
    pub msg_bytes: usize,
}

impl HistoryKey {
    /// Reject keys whose string components would corrupt the line format.
    pub fn validate(&self) -> Result<(), HistoryError> {
        check_component("op", &self.op)?;
        check_component("platform", &self.platform)
    }

    fn encode(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.op, self.platform, self.nprocs, self.msg_bytes
        )
    }

    fn decode(s: &str) -> Option<HistoryKey> {
        let parts: Vec<&str> = s.split('|').collect();
        // Exactly four fields: trailing junk ("a|b|1|2|x") is a malformed
        // key, not a key with extras to ignore.
        let [op, platform, nprocs, msg_bytes] = parts.as_slice() else {
            return None;
        };
        let key = HistoryKey {
            op: op.to_string(),
            platform: platform.to_string(),
            nprocs: nprocs.parse().ok()?,
            msg_bytes: msg_bytes.parse().ok()?,
        };
        key.validate().ok()?;
        Some(key)
    }
}

/// A stored decision.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Winning function name.
    pub winner: String,
    /// Its measured robust score in seconds (for staleness heuristics).
    pub score: f64,
    /// Relative gap to the runner-up, `(second - best) / best`
    /// (0.0 when unknown or when the set has a single candidate).
    pub margin: f64,
}

/// The persistent winner store.
///
/// # Example
///
/// ```
/// use adcl::history::{HistoryKey, HistoryStore};
///
/// let key = HistoryKey {
///     op: "ialltoall".into(),
///     platform: "whale".into(),
///     nprocs: 32,
///     msg_bytes: 131072,
/// };
/// let mut store = HistoryStore::new();
/// store.put(key.clone(), "pairwise", 1.2e-3).unwrap();
/// let text = store.to_string_repr();
/// let reloaded = HistoryStore::from_string_repr(&text);
/// assert_eq!(reloaded.get(&key).unwrap().winner, "pairwise");
/// ```
#[derive(Debug, Default)]
pub struct HistoryStore {
    entries: BTreeMap<HistoryKey, HistoryEntry>,
    generation: u64,
    context: String,
}

impl HistoryStore {
    /// An empty store.
    pub fn new() -> HistoryStore {
        HistoryStore::default()
    }

    /// Record (or overwrite) a decision with no margin information.
    pub fn put(&mut self, key: HistoryKey, winner: &str, score: f64) -> Result<(), HistoryError> {
        self.put_decision(key, winner, score, 0.0)
    }

    /// Record (or overwrite) a full decision.
    pub fn put_decision(
        &mut self,
        key: HistoryKey,
        winner: &str,
        score: f64,
        margin: f64,
    ) -> Result<(), HistoryError> {
        key.validate()?;
        // The winner lives in a tab-delimited field, so only the line
        // format's own separators are reserved here — '|' is fine.
        if winner.is_empty() {
            return Err(HistoryError("winner must not be empty".into()));
        }
        if let Some(c) = winner.chars().find(|c| ['\t', '\n', '\r'].contains(c)) {
            return Err(HistoryError(format!(
                "winner {winner:?} contains reserved character {c:?}"
            )));
        }
        self.entries.insert(
            key,
            HistoryEntry {
                winner: winner.to_string(),
                score,
                margin,
            },
        );
        Ok(())
    }

    /// Look up a decision.
    pub fn get(&self, key: &HistoryKey) -> Option<&HistoryEntry> {
        self.entries.get(key)
    }

    /// Number of stored decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every stored decision (the context and generation survive).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Save counter: bumped on every successful [`HistoryStore::save`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The environment fingerprint the entries were measured under.
    pub fn context(&self) -> &str {
        &self.context
    }

    /// Set the environment fingerprint (must not contain tabs/newlines).
    pub fn set_context(&mut self, ctx: &str) -> Result<(), HistoryError> {
        if ctx.chars().any(|c| c == '\t' || c == '\n' || c == '\r') {
            return Err(HistoryError(format!(
                "context {ctx:?} contains a reserved character"
            )));
        }
        self.context = ctx.to_string();
        Ok(())
    }

    /// Serialize to the line format.
    pub fn to_string_repr(&self) -> String {
        let mut out = String::new();
        out.push_str("# adcl-rs history v2\n");
        let _ = writeln!(out, "# gen {}", self.generation);
        if !self.context.is_empty() {
            let _ = writeln!(out, "# ctx {}", self.context);
        }
        for (k, e) in &self.entries {
            let _ = writeln!(
                out,
                "{}\t{}\t{:.17e}\t{:.17e}",
                k.encode(),
                e.winner,
                e.score,
                e.margin
            );
        }
        out
    }

    /// Parse the line format (ignores comments and malformed lines;
    /// understands both v1 three-field and v2 four-field entry lines).
    pub fn from_string_repr(s: &str) -> HistoryStore {
        let mut store = HistoryStore::new();
        for line in s.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim();
                if let Some(g) = rest.strip_prefix("gen ") {
                    store.generation = g.trim().parse().unwrap_or(0);
                } else if let Some(c) = rest.strip_prefix("ctx ") {
                    store.context = c.trim().to_string();
                }
                continue;
            }
            let parts: Vec<&str> = line.split('\t').collect();
            let (k, w, sc, mg) = match parts.as_slice() {
                [k, w, sc] => (*k, *w, *sc, None),
                [k, w, sc, mg] => (*k, *w, *sc, Some(*mg)),
                _ => continue,
            };
            let (Some(key), Ok(score)) = (HistoryKey::decode(k), sc.parse::<f64>()) else {
                continue;
            };
            let margin = mg.and_then(|m| m.parse::<f64>().ok()).unwrap_or(0.0);
            let _ = store.put_decision(key, w, score, margin);
        }
        store
    }

    /// Write the store to a file atomically: the serialized form goes to a
    /// temp file in the *same directory* and is renamed over the target,
    /// so a concurrent `load` (or a crash mid-write) sees either the old
    /// complete file or the new complete file — never a torn one.
    /// Bumps the generation counter on success.
    pub fn save(&mut self, path: &Path) -> io::Result<()> {
        self.generation += 1;
        let repr = self.to_string_repr();
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let file_name = path
            .file_name()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
        let tmp_name = format!(
            ".{}.tmp.{}",
            file_name.to_string_lossy(),
            std::process::id()
        );
        let tmp = match dir {
            Some(d) => d.join(&tmp_name),
            None => std::path::PathBuf::from(&tmp_name),
        };
        let write_and_swap = (|| {
            std::fs::write(&tmp, &repr)?;
            std::fs::rename(&tmp, path)
        })();
        if write_and_swap.is_err() {
            self.generation -= 1;
            let _ = std::fs::remove_file(&tmp);
        }
        write_and_swap
    }

    /// Load a store from a file (empty store if the file does not exist).
    pub fn load(path: &Path) -> io::Result<HistoryStore> {
        match std::fs::read_to_string(path) {
            Ok(s) => Ok(Self::from_string_repr(&s)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(HistoryStore::new()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(op: &str, n: usize) -> HistoryKey {
        HistoryKey {
            op: op.into(),
            platform: "whale".into(),
            nprocs: n,
            msg_bytes: 1024,
        }
    }

    #[test]
    fn roundtrip_through_text() {
        let mut s = HistoryStore::new();
        s.put(key("ialltoall", 32), "pairwise", 1.5e-3).unwrap();
        s.put(key("ibcast", 128), "binomial-seg64k", 2.25e-4)
            .unwrap();
        let text = s.to_string_repr();
        let back = HistoryStore::from_string_repr(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(&key("ialltoall", 32)).unwrap().winner, "pairwise");
        let e = back.get(&key("ibcast", 128)).unwrap();
        assert!((e.score - 2.25e-4).abs() < 1e-12);
    }

    #[test]
    fn malformed_lines_ignored() {
        let text = "# comment\n\ngarbage\nonly|three|parts\tx\nialltoall|whale|8|64\tlinear\t1.0\n";
        let s = HistoryStore::from_string_repr(text);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn overwrite_updates() {
        let mut s = HistoryStore::new();
        s.put(key("op", 4), "a", 1.0).unwrap();
        s.put(key("op", 4), "b", 0.5).unwrap();
        assert_eq!(s.get(&key("op", 4)).unwrap().winner, "b");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("adcl-hist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.tsv");
        let mut s = HistoryStore::new();
        // A score with a busy mantissa: must survive save→load bit-exactly.
        let score = 3.0e-5 * std::f64::consts::PI;
        let margin = 0.1 * std::f64::consts::E;
        s.put_decision(key("ialltoall", 16), "dissemination", score, margin)
            .unwrap();
        s.save(&path).unwrap();
        let back = HistoryStore::load(&path).unwrap();
        let e = back.get(&key("ialltoall", 16)).unwrap();
        assert_eq!(e.winner, "dissemination");
        assert_eq!(e.score.to_bits(), score.to_bits(), "score not bit-exact");
        assert_eq!(e.margin.to_bits(), margin.to_bits(), "margin not bit-exact");
        assert_eq!(back.generation(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        let s = HistoryStore::load(Path::new("/nonexistent/adcl/history.tsv")).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn hostile_names_rejected_at_put() {
        let mut s = HistoryStore::new();
        for op in ["a|b", "a\tb", "a\nb", "a\rb", ""] {
            let k = HistoryKey {
                op: op.into(),
                platform: "whale".into(),
                nprocs: 8,
                msg_bytes: 64,
            };
            assert!(s.put(k, "linear", 1.0).is_err(), "op {op:?} accepted");
        }
        let k = key("ibcast", 8);
        assert!(s.put(k.clone(), "bad\twinner", 1.0).is_err());
        assert!(s.put(k.clone(), "bad\nwinner", 1.0).is_err());
        // '|' is only reserved in key components, not the winner field.
        assert!(s.put(k, "odd|but|fine", 1.0).is_ok());
        let mut hostile_platform = HistoryStore::new();
        let k = HistoryKey {
            op: "ibcast".into(),
            platform: "whale|tcp".into(),
            nprocs: 8,
            msg_bytes: 64,
        };
        assert!(hostile_platform.put(k, "linear", 1.0).is_err());
    }

    #[test]
    fn decode_rejects_extra_and_missing_fields() {
        assert!(HistoryKey::decode("a|b|1|2").is_some());
        assert!(HistoryKey::decode("a|b|1|2|junk").is_none(), "extra field");
        assert!(HistoryKey::decode("a|b|1").is_none(), "missing field");
        assert!(HistoryKey::decode("a|b|x|2").is_none(), "non-numeric");
        assert!(HistoryKey::decode("|b|1|2").is_none(), "empty op");
        // A line whose key smuggles extra separators must not shift fields.
        let text = "evil|op|whale|8|64\tlinear\t1.0\n";
        assert!(HistoryStore::from_string_repr(text).is_empty());
    }

    #[test]
    fn hostile_roundtrip_stays_isomorphic() {
        // Every accepted put must come back as the same key — no field
        // shifting, no entry splitting or merging.
        let mut s = HistoryStore::new();
        let keys = [
            key("ialltoall-ext", 8),
            key("op.with.dots", 16),
            key("op with spaces", 32),
        ];
        for (i, k) in keys.iter().enumerate() {
            s.put(k.clone(), &format!("w{i}"), i as f64).unwrap();
        }
        let back = HistoryStore::from_string_repr(&s.to_string_repr());
        assert_eq!(back.len(), keys.len());
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(back.get(k).unwrap().winner, format!("w{i}"));
        }
    }

    #[test]
    fn context_and_generation_roundtrip() {
        let mut s = HistoryStore::new();
        s.set_context("s7/d0.001").unwrap();
        assert!(s.set_context("bad\tctx").is_err());
        s.put(key("ibcast", 8), "linear", 1.0).unwrap();
        let dir = std::env::temp_dir().join(format!("adcl-hist-ctx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.tsv");
        s.save(&path).unwrap();
        s.save(&path).unwrap();
        let back = HistoryStore::load(&path).unwrap();
        assert_eq!(back.context(), "s7/d0.001");
        assert_eq!(back.generation(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_files_still_load() {
        let text = "# adcl-rs history v1\nialltoall|whale|8|64\tlinear\t1.500000000e-3\n";
        let s = HistoryStore::from_string_repr(text);
        let e = s.get(&key2("ialltoall", "whale", 8, 64)).unwrap();
        assert_eq!(e.winner, "linear");
        assert_eq!(e.margin, 0.0);
    }

    fn key2(op: &str, platform: &str, n: usize, m: usize) -> HistoryKey {
        HistoryKey {
            op: op.into(),
            platform: platform.into(),
            nprocs: n,
            msg_bytes: m,
        }
    }

    #[test]
    fn atomic_save_never_partially_visible() {
        // A reader loading in a loop while a writer repeatedly saves must
        // only ever observe a complete snapshot: len == 0 (no file yet)
        // or len == N (full store). A torn write would surface as some
        // intermediate length.
        let dir = std::env::temp_dir().join(format!(
            "adcl-hist-atomic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.tsv");
        const N: usize = 400;
        let mut s = HistoryStore::new();
        for i in 0..N {
            s.put(key("ibcast", i + 1), "binomial-seg64k-long-name", 1.0e-3)
                .unwrap();
        }
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let path = path.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut seen = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let got = HistoryStore::load(&path).unwrap();
                    assert!(
                        got.is_empty() || got.len() == N,
                        "observed torn file with {} entries",
                        got.len()
                    );
                    if got.len() == N {
                        seen += 1;
                    }
                }
                seen
            })
        };
        for _ in 0..60 {
            s.save(&path).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let complete_loads = reader.join().unwrap();
        assert!(complete_loads > 0, "reader never saw a complete snapshot");
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
