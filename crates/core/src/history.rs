//! Historic learning: persisting tuning decisions across executions.
//!
//! ADCL can transfer knowledge between runs of an application: once a
//! winner is known for an (operation, platform, process count, message
//! size, ...) scenario, a later execution can skip — or shorten — the
//! learning phase (§IV-B). The store is a simple line-oriented text file
//! (`key\twinner\tscore`), deliberately free of external dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Scenario key for a stored decision.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HistoryKey {
    /// Operation name (e.g. `"ialltoall"`).
    pub op: String,
    /// Platform name (e.g. `"whale"`).
    pub platform: String,
    /// Number of processes.
    pub nprocs: usize,
    /// Message size in bytes.
    pub msg_bytes: usize,
}

impl HistoryKey {
    fn encode(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.op, self.platform, self.nprocs, self.msg_bytes
        )
    }

    fn decode(s: &str) -> Option<HistoryKey> {
        let mut it = s.split('|');
        Some(HistoryKey {
            op: it.next()?.to_string(),
            platform: it.next()?.to_string(),
            nprocs: it.next()?.parse().ok()?,
            msg_bytes: it.next()?.parse().ok()?,
        })
    }
}

/// A stored decision.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Winning function name.
    pub winner: String,
    /// Its measured robust score in seconds (for staleness heuristics).
    pub score: f64,
}

/// The persistent winner store.
///
/// # Example
///
/// ```
/// use adcl::history::{HistoryKey, HistoryStore};
///
/// let key = HistoryKey {
///     op: "ialltoall".into(),
///     platform: "whale".into(),
///     nprocs: 32,
///     msg_bytes: 131072,
/// };
/// let mut store = HistoryStore::new();
/// store.put(key.clone(), "pairwise", 1.2e-3);
/// let text = store.to_string_repr();
/// let reloaded = HistoryStore::from_string_repr(&text);
/// assert_eq!(reloaded.get(&key).unwrap().winner, "pairwise");
/// ```
#[derive(Debug, Default)]
pub struct HistoryStore {
    entries: BTreeMap<HistoryKey, HistoryEntry>,
}

impl HistoryStore {
    /// An empty store.
    pub fn new() -> HistoryStore {
        HistoryStore::default()
    }

    /// Record (or overwrite) a decision.
    pub fn put(&mut self, key: HistoryKey, winner: &str, score: f64) {
        self.entries.insert(
            key,
            HistoryEntry {
                winner: winner.to_string(),
                score,
            },
        );
    }

    /// Look up a decision.
    pub fn get(&self, key: &HistoryKey) -> Option<&HistoryEntry> {
        self.entries.get(key)
    }

    /// Number of stored decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize to the line format.
    pub fn to_string_repr(&self) -> String {
        let mut out = String::new();
        out.push_str("# adcl-rs history v1\n");
        for (k, e) in &self.entries {
            let _ = writeln!(out, "{}\t{}\t{:.9e}", k.encode(), e.winner, e.score);
        }
        out
    }

    /// Parse the line format (ignores comments and malformed lines).
    pub fn from_string_repr(s: &str) -> HistoryStore {
        let mut store = HistoryStore::new();
        for line in s.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (Some(k), Some(w), Some(sc)) = (parts.next(), parts.next(), parts.next()) else {
                continue;
            };
            let (Some(key), Ok(score)) = (HistoryKey::decode(k), sc.parse::<f64>()) else {
                continue;
            };
            store.put(key, w, score);
        }
        store
    }

    /// Write the store to a file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_string_repr())
    }

    /// Load a store from a file (empty store if the file does not exist).
    pub fn load(path: &Path) -> io::Result<HistoryStore> {
        match std::fs::read_to_string(path) {
            Ok(s) => Ok(Self::from_string_repr(&s)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(HistoryStore::new()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(op: &str, n: usize) -> HistoryKey {
        HistoryKey {
            op: op.into(),
            platform: "whale".into(),
            nprocs: n,
            msg_bytes: 1024,
        }
    }

    #[test]
    fn roundtrip_through_text() {
        let mut s = HistoryStore::new();
        s.put(key("ialltoall", 32), "pairwise", 1.5e-3);
        s.put(key("ibcast", 128), "binomial-seg64k", 2.25e-4);
        let text = s.to_string_repr();
        let back = HistoryStore::from_string_repr(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(&key("ialltoall", 32)).unwrap().winner, "pairwise");
        let e = back.get(&key("ibcast", 128)).unwrap();
        assert!((e.score - 2.25e-4).abs() < 1e-12);
    }

    #[test]
    fn malformed_lines_ignored() {
        let text = "# comment\n\ngarbage\nonly|three|parts\tx\nialltoall|whale|8|64\tlinear\t1.0\n";
        let s = HistoryStore::from_string_repr(text);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn overwrite_updates() {
        let mut s = HistoryStore::new();
        s.put(key("op", 4), "a", 1.0);
        s.put(key("op", 4), "b", 0.5);
        assert_eq!(s.get(&key("op", 4)).unwrap().winner, "b");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("adcl-hist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.tsv");
        let mut s = HistoryStore::new();
        s.put(key("ialltoall", 16), "dissemination", 3.0e-5);
        s.save(&path).unwrap();
        let back = HistoryStore::load(&path).unwrap();
        assert_eq!(
            back.get(&key("ialltoall", 16)).unwrap().winner,
            "dissemination"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        let s = HistoryStore::load(Path::new("/nonexistent/adcl/history.tsv")).unwrap();
        assert!(s.is_empty());
    }
}
