//! Self-checking performance guidelines: the decision-quality observatory.
//!
//! PR 3 made the simulator's *mechanics* observable; this module watches
//! whether ADCL's *decisions* are any good. Following Hunold &
//! Carpen-Amarie ("Tuning MPI Collectives by Verifying Performance
//! Guidelines"), tuning quality is expressed as checkable invariants over
//! measured collective times:
//!
//! * **monotonicity** — a fixed algorithm must not get faster when the
//!   message (or the communicator) grows: `T(m₁) ≤ T(m₂)` for `m₁ ≤ m₂`;
//! * **pattern dominance** — an operation that moves strictly less data
//!   must not be slower than one that moves more: `Iscatter(n) ≤
//!   Ibcast(n)`, `Igather(s) ≤ Iallgather(s)`, `Ireduce(n) ≤
//!   Iallreduce(n)` (each side taken as the best of its function-set);
//! * **composition** — a collective must not lose to a *mock-up* stitched
//!   from other builders via [`nbc::schedule::sequence`]: `Ibcast(n) ≤
//!   Iscatter(n) + Iallgather(n)`, `Iallreduce(n) ≤ Ireduce(n) +
//!   Ibcast(n)`, `Ibarrier ≤ Iallgather(1 B)`.
//!
//! A violated monotonicity guideline compares a *fixed* algorithm with
//! itself, so it is a schedule-builder or cost-model bug and escalates to
//! **severe** above its threshold. Dominance and composition guidelines
//! compare the best of two *different* sets; a violation there means the
//! lhs set lacks an algorithm — a *tuning opportunity* (e.g. ring
//! allreduce beating every non-pipelined reduce at large messages, or the
//! van-de-Geijn scatter+allgather broadcast) — and stays informational at
//! any finite slack. An lhs that cannot complete at all (infinite time,
//! e.g. fault-exhausted) is severe under every guideline.
//! `scripts/verify.sh` gates on zero severe violations.
//!
//! Every probe is a pure function of its config fingerprint and runs on
//! the shared worker pool via [`simcore::par`], memoized through
//! [`crate::simmemo`] (`guide/…` keys), so repeat checks are cache hits
//! and the sweep report is byte-identical for any `--jobs` value.
//!
//! The same probe machinery cross-checks the tuner's audit log: a
//! committed winner that a clean fixed-schedule measurement proves
//! dominated by a sibling implementation becomes a [`GuidelineFlag`],
//! exported as the `guidelineFlags` section of the combined trace document
//! (see `autonbc::traceout`) and summarized by `trace_inspect`.

use crate::audit::DecisionAudit;
use crate::filter::FilterKind;
use crate::function::{Function, FunctionSet};
use crate::microbench::{MicroBenchConfig, MicroBenchScript};
use crate::runner::{Runner, TuningSession};
use crate::simmemo;
use crate::strategy::SelectionLogic;
use crate::tuner::TunerConfig;
use mpisim::NoiseConfig;
use nbc::allgather::AllgatherAlgo;
use nbc::bcast::BcastAlgo;
use nbc::cache;
use nbc::gather::GatherAlgo;
use nbc::reduce::ReduceAlgo;
use nbc::schedule::{sequence, CollSpec};
use netmodel::{Placement, Platform};
use simcore::{metrics, trace, SimTime};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Loop shape shared by every probe, so totals are directly comparable:
/// a short §IV-A microbenchmark loop with a small compute phase.
const PROBE_ITERS: usize = 4;
const PROBE_PROGRESS: usize = 2;
const PROBE_COMPUTE_US_PER_ITER: u64 = 20;

/// Relative advantage a sibling implementation must show over the audit
/// winner before the winner counts as dominated (see [`cross_check_audit`]).
pub const FLAG_TOLERANCE: f64 = 0.10;

/// Segment size used by mock-up broadcast phases.
const MOCK_BCAST_SEG: usize = 128 * 1024;

// ---------------------------------------------------------------------------
// Probe operations
// ---------------------------------------------------------------------------

/// An operation (or mock-up) the guideline engine can measure: each value
/// names a function-set whose members are probed one at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProbeOp {
    /// Broadcast, full payload `m`.
    Ibcast,
    /// All-to-all, per-pair block `m`.
    Ialltoall,
    /// All-gather, per-rank block `m`.
    Iallgather,
    /// Reduce, full payload `m`.
    Ireduce,
    /// All-reduce, full payload `m`.
    Iallreduce,
    /// Gather, per-rank block `m`.
    Igather,
    /// Scatter, per-rank block `m`.
    Iscatter,
    /// Dissemination barrier (message size ignored).
    Ibarrier,
    /// Scatter moving `m` bytes *total* (per-rank block `⌈m/p⌉`) — the
    /// dominance counterpart of `Ibcast(m)`.
    IscatterOfTotal,
    /// Mock-up broadcast: scatter(⌈m/p⌉) then allgather(⌈m/p⌉), stitched.
    MockBcast,
    /// Mock-up all-reduce: reduce(m) then bcast(m), stitched.
    MockAllreduce,
    /// Mock-up barrier: a 1-byte all-gather.
    MockBarrier,
    /// Mock-up all-gather: gather(m) then bcast(p·m), stitched.
    MockAllgather,
}

impl ProbeOp {
    /// Report name of the operation / mock-up.
    pub fn name(self) -> &'static str {
        match self {
            ProbeOp::Ibcast => "ibcast",
            ProbeOp::Ialltoall => "ialltoall",
            ProbeOp::Iallgather => "iallgather",
            ProbeOp::Ireduce => "ireduce",
            ProbeOp::Iallreduce => "iallreduce",
            ProbeOp::Igather => "igather",
            ProbeOp::Iscatter => "iscatter",
            ProbeOp::Ibarrier => "ibarrier",
            ProbeOp::IscatterOfTotal => "iscatter-total",
            ProbeOp::MockBcast => "mock-ibcast",
            ProbeOp::MockAllreduce => "mock-iallreduce",
            ProbeOp::MockBarrier => "mock-ibarrier",
            ProbeOp::MockAllgather => "mock-iallgather",
        }
    }

    /// Whether the operation's cost depends on the sweep's message size
    /// (barriers are probed once per rank count).
    pub fn msg_sensitive(self) -> bool {
        !matches!(self, ProbeOp::Ibarrier | ProbeOp::MockBarrier)
    }

    /// The probe function-set for `nprocs` ranks at sweep message size
    /// `msg` (mapped to the op's native convention, see the variant docs).
    pub fn set(self, nprocs: usize, msg: usize) -> FunctionSet {
        let spec = CollSpec::new(nprocs, msg);
        match self {
            ProbeOp::Ibcast => FunctionSet::ibcast_default(spec),
            ProbeOp::Ialltoall => FunctionSet::ialltoall_default(spec),
            ProbeOp::Iallgather => FunctionSet::iallgather_default(spec),
            ProbeOp::Ireduce => FunctionSet::ireduce_default(spec),
            ProbeOp::Iallreduce => FunctionSet::iallreduce_default(spec),
            ProbeOp::Igather => FunctionSet::igather_default(spec),
            ProbeOp::Iscatter => FunctionSet::iscatter_default(spec),
            ProbeOp::Ibarrier => ibarrier_set(nprocs),
            ProbeOp::IscatterOfTotal => {
                FunctionSet::iscatter_default(CollSpec::new(nprocs, per_rank_block(msg, nprocs)))
            }
            ProbeOp::MockBcast => mock_bcast_set(spec),
            ProbeOp::MockAllreduce => mock_allreduce_set(spec),
            ProbeOp::MockBarrier => mock_barrier_set(nprocs),
            ProbeOp::MockAllgather => mock_allgather_set(spec),
        }
    }

    /// Map an audit-label operation name back to a probe op. Extended
    /// sets fold onto their non-blocking base (the schedules are
    /// identical; only the wait discipline differs).
    pub fn from_op_name(name: &str) -> Option<ProbeOp> {
        match name {
            "ibcast" => Some(ProbeOp::Ibcast),
            "ialltoall" | "ialltoall-ext" => Some(ProbeOp::Ialltoall),
            "iallgather" => Some(ProbeOp::Iallgather),
            "ireduce" => Some(ProbeOp::Ireduce),
            "iallreduce" => Some(ProbeOp::Iallreduce),
            "igather" => Some(ProbeOp::Igather),
            "iscatter" => Some(ProbeOp::Iscatter),
            "ibarrier" => Some(ProbeOp::Ibarrier),
            _ => None,
        }
    }
}

fn per_rank_block(total: usize, nprocs: usize) -> usize {
    total.div_ceil(nprocs.max(1)).max(1)
}

fn ibarrier_set(nprocs: usize) -> FunctionSet {
    FunctionSet {
        name: "ibarrier".into(),
        attr_names: vec!["algorithm".into()],
        functions: vec![Function {
            name: "dissemination".into(),
            attrs: vec![0],
            blocking: false,
            builder: Rc::new(cache::cached_barrier),
        }],
        spec: CollSpec::new(nprocs, 1),
    }
}

/// Scatter × allgather mock-ups of a broadcast of `spec.msg_bytes` bytes:
/// both phases move per-rank blocks of `⌈m/p⌉`, so the stitched schedule
/// delivers the full payload everywhere (the van-de-Geijn construction).
fn mock_bcast_set(spec: CollSpec) -> FunctionSet {
    let mut functions = Vec::new();
    for s_algo in GatherAlgo::all() {
        for a_algo in AllgatherAlgo::all() {
            functions.push(Function {
                name: format!("scatter-{}+allgather-{}", s_algo.name(), a_algo.name()),
                attrs: vec![functions.len() as i64],
                blocking: false,
                builder: Rc::new(move |rank, spec: &CollSpec| {
                    let sub = CollSpec {
                        nprocs: spec.nprocs,
                        msg_bytes: per_rank_block(spec.msg_bytes, spec.nprocs),
                        root: spec.root,
                    };
                    Arc::new(sequence(&[
                        &cache::cached_scatter(s_algo, rank, &sub),
                        &cache::cached_allgather(a_algo, rank, &sub),
                    ]))
                }),
            });
        }
    }
    FunctionSet {
        name: "mock-ibcast".into(),
        attr_names: vec!["combination".into()],
        functions,
        spec,
    }
}

/// Reduce-then-broadcast mock-ups of an all-reduce of `spec.msg_bytes`.
fn mock_allreduce_set(spec: CollSpec) -> FunctionSet {
    let functions = ReduceAlgo::all()
        .into_iter()
        .enumerate()
        .map(|(i, r_algo)| Function {
            name: format!("reduce-{}+bcast-binomial", r_algo.name()),
            attrs: vec![i as i64],
            blocking: false,
            builder: Rc::new(move |rank, spec: &CollSpec| {
                Arc::new(sequence(&[
                    &cache::cached_reduce(r_algo, rank, spec),
                    &cache::cached_bcast(BcastAlgo::Binomial, MOCK_BCAST_SEG, rank, spec),
                ]))
            }),
        })
        .collect();
    FunctionSet {
        name: "mock-iallreduce".into(),
        attr_names: vec!["combination".into()],
        functions,
        spec,
    }
}

/// 1-byte all-gather mock-ups of a barrier (the "zero-byte all-gather":
/// schedule builders reject zero-byte transfers, so the smallest legal
/// signal payload stands in).
fn mock_barrier_set(nprocs: usize) -> FunctionSet {
    let mut set = FunctionSet::iallgather_default(CollSpec::new(nprocs, 1));
    set.name = "mock-ibarrier".into();
    for f in &mut set.functions {
        f.name = format!("allgather-{}-1B", f.name);
    }
    set
}

/// Gather-then-broadcast mock-ups of an all-gather with per-rank block
/// `spec.msg_bytes`: gather the blocks at the root, broadcast all `p·m`
/// bytes back out.
fn mock_allgather_set(spec: CollSpec) -> FunctionSet {
    let functions = GatherAlgo::all()
        .into_iter()
        .enumerate()
        .map(|(i, g_algo)| Function {
            name: format!("gather-{}+bcast-binomial", g_algo.name()),
            attrs: vec![i as i64],
            blocking: false,
            builder: Rc::new(move |rank, spec: &CollSpec| {
                let bcast_spec = CollSpec {
                    nprocs: spec.nprocs,
                    msg_bytes: spec.msg_bytes * spec.nprocs,
                    root: spec.root,
                };
                Arc::new(sequence(&[
                    &cache::cached_gather(g_algo, rank, spec),
                    &cache::cached_bcast(BcastAlgo::Binomial, MOCK_BCAST_SEG, rank, &bcast_spec),
                ]))
            }),
        })
        .collect();
    FunctionSet {
        name: "mock-iallgather".into(),
        attr_names: vec!["combination".into()],
        functions,
        spec,
    }
}

// ---------------------------------------------------------------------------
// The probe engine
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct ProbeOutcome {
    secs: f64,
    sim_events: u64,
}

/// Measure one implementation of `op` under the fixed probe loop.
/// Memoized through `adcl::simmemo`: the fingerprint covers every input
/// that can influence the result, so a repeat probe is a cache hit and
/// byte-identical by construction. Returns `(seconds, replayed)`.
fn probe(platform: &Platform, op: ProbeOp, nprocs: usize, msg: usize, func: usize) -> (f64, bool) {
    let set = op.set(nprocs, msg);
    let f = &set.functions[func];
    let key = format!(
        "guide/{plat}/{set_name}/{func_name}/p{np}/m{mb}/i{it}/g{g}/c{c}/F{flt}",
        plat = platform.name,
        set_name = set.name,
        func_name = f.name,
        np = set.spec.nprocs,
        mb = set.spec.msg_bytes,
        it = PROBE_ITERS,
        g = PROBE_PROGRESS,
        c = PROBE_COMPUTE_US_PER_ITER,
        flt = mpisim::fault::current().describe(),
    );
    let (out, replayed) = simmemo::get_or_run(&key, || run_probe(platform, &set, func));
    if replayed {
        simmemo::credit_replay(out.sim_events);
    }
    (out.secs, replayed)
}

fn run_probe(platform: &Platform, set: &FunctionSet, func: usize) -> ProbeOutcome {
    let nprocs = set.spec.nprocs;
    let f = &set.functions[func];
    let single = FunctionSet {
        name: set.name.clone(),
        attr_names: vec!["probe".into()],
        functions: vec![Function {
            name: f.name.clone(),
            attrs: vec![0],
            blocking: false,
            builder: f.builder.clone(),
        }],
        spec: set.spec,
    };
    mpisim::worldpool::with_world(
        platform,
        nprocs,
        Placement::Block,
        NoiseConfig::none(),
        |world| {
            let mut session = TuningSession::new(nprocs);
            let op_name = single.name.clone();
            let op = session.add_op(
                &op_name,
                single,
                TunerConfig {
                    logic: SelectionLogic::Fixed(0),
                    reps: 1,
                    warmup: 0,
                    filter: FilterKind::default(),
                },
            );
            let timer = session.add_timer(vec![op]);
            let cfg = MicroBenchConfig {
                iters: PROBE_ITERS,
                compute_total: SimTime::from_micros_f64(
                    (PROBE_COMPUTE_US_PER_ITER * PROBE_ITERS as u64) as f64,
                ),
                num_progress: PROBE_PROGRESS,
            };
            let scripts = MicroBenchScript::per_rank(cfg, op, timer, nprocs);
            let mut runner = Runner::new(session, scripts);
            match world.run(&mut runner) {
                Ok(_) => ProbeOutcome {
                    secs: runner.session.timers[timer].total(),
                    sim_events: world.events_processed(),
                },
                // An exhausted retry budget (fault injection) makes the
                // probe unmeasurable, not the process dead: an infinite
                // time never *confirms* a violation.
                Err(mpisim::SimError::Timeout { .. }) => ProbeOutcome {
                    secs: f64::INFINITY,
                    sim_events: world.events_processed(),
                },
                Err(err) => panic!("guideline probe deadlocked: {err}"),
            }
        },
    )
}

/// Probe every implementation of `op` at one config; returns
/// `(name, seconds)` in function-set order. Used by the audit cross-check
/// and exposed for tests.
pub fn op_probe_times(
    platform: &Platform,
    op: ProbeOp,
    nprocs: usize,
    msg: usize,
) -> Vec<(String, f64)> {
    let set = op.set(nprocs, msg);
    (0..set.len())
        .map(|i| {
            let (secs, _) = probe(platform, op, nprocs, msg, i);
            (set.functions[i].name.clone(), secs)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The guideline registry
// ---------------------------------------------------------------------------

/// How a guideline compares probe measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Per implementation: `T(m₁) ≤ T(m₂)` for consecutive sweep sizes.
    MonotoneMsg(ProbeOp),
    /// Per implementation: `T(p₁) ≤ T(p₂)` for consecutive rank counts.
    MonotoneRanks(ProbeOp),
    /// Best-of-set: `best(lhs) ≤ best(rhs)` at the same config.
    Dominance {
        /// The operation that moves less (or equal) data.
        lhs: ProbeOp,
        /// The operation whose work strictly contains the left side's.
        rhs: ProbeOp,
    },
    /// Best-of-set: `best(op) ≤ best(mock-up)` at the same config.
    Composition {
        /// The native collective.
        lhs: ProbeOp,
        /// Its stitched mock-up.
        mock: ProbeOp,
    },
}

/// One declarative performance guideline.
#[derive(Debug, Clone, Copy)]
pub struct Guideline {
    /// Stable identifier, e.g. `"mono-msg/ibcast"`.
    pub id: &'static str,
    /// The comparison it performs.
    pub kind: Kind,
    /// Relative slack allowed before a check counts as violated.
    pub tolerance: f64,
    /// Slack beyond which a violation is severe (`INFINITY` = never:
    /// composition violations are tuning opportunities, not bugs).
    pub severe_at: f64,
    /// One-line rationale.
    pub why: &'static str,
}

/// The full registry, in evaluation (and report) order.
pub fn registry() -> Vec<Guideline> {
    use Kind::*;
    use ProbeOp::*;
    let mono_msg = |id, op, why| Guideline {
        id,
        kind: MonotoneMsg(op),
        tolerance: 0.02,
        severe_at: 0.25,
        why,
    };
    let mono_ranks = |id, op, why| Guideline {
        id,
        kind: MonotoneRanks(op),
        tolerance: 0.05,
        severe_at: 0.50,
        why,
    };
    // Dominance compares the *best of two different sets*: a violation
    // means the lhs set lacks an algorithm (e.g. no ring/pipelined reduce
    // while allreduce has one), which is a tuning opportunity like the
    // mock-ups, not a schedule bug — only an unmeasurable lhs escalates.
    let dom = |id, lhs, rhs, why| Guideline {
        id,
        kind: Dominance { lhs, rhs },
        tolerance: 0.05,
        severe_at: f64::INFINITY,
        why,
    };
    let mock = |id, lhs, mock, why| Guideline {
        id,
        kind: Composition { lhs, mock },
        tolerance: 0.10,
        severe_at: f64::INFINITY,
        why,
    };
    vec![
        mono_msg(
            "mono-msg/ibcast",
            Ibcast,
            "more payload cannot broadcast faster",
        ),
        mono_msg(
            "mono-msg/ialltoall",
            Ialltoall,
            "larger per-pair blocks cannot exchange faster",
        ),
        mono_msg(
            "mono-msg/iallgather",
            Iallgather,
            "larger blocks cannot gather faster",
        ),
        mono_msg(
            "mono-msg/ireduce",
            Ireduce,
            "more payload cannot reduce faster",
        ),
        mono_msg(
            "mono-msg/iallreduce",
            Iallreduce,
            "more payload cannot allreduce faster",
        ),
        mono_msg(
            "mono-msg/igather",
            Igather,
            "larger blocks cannot gather faster",
        ),
        mono_msg(
            "mono-msg/iscatter",
            Iscatter,
            "larger blocks cannot scatter faster",
        ),
        mono_ranks(
            "mono-ranks/ibcast",
            Ibcast,
            "more ranks cannot broadcast faster",
        ),
        mono_ranks(
            "mono-ranks/ialltoall",
            Ialltoall,
            "more ranks exchange strictly more data",
        ),
        mono_ranks(
            "mono-ranks/ibarrier",
            Ibarrier,
            "more ranks cannot synchronize faster",
        ),
        dom(
            "dom/iscatter<=ibcast",
            IscatterOfTotal,
            Ibcast,
            "scatter of n bytes moves a subset of a broadcast of n bytes",
        ),
        dom(
            "dom/igather<=iallgather",
            Igather,
            Iallgather,
            "gather delivers to one rank what allgather delivers to all",
        ),
        dom(
            "dom/ireduce<=iallreduce",
            Ireduce,
            Iallreduce,
            "reduce's result at the root is a prefix of allreduce's work",
        ),
        mock(
            "mock/ibcast<=iscatter+iallgather",
            Ibcast,
            MockBcast,
            "a broadcast must not lose to its scatter+allgather mock-up",
        ),
        mock(
            "mock/iallreduce<=ireduce+ibcast",
            Iallreduce,
            MockAllreduce,
            "an allreduce must not lose to its reduce+bcast mock-up",
        ),
        mock(
            "mock/ibarrier<=iallgather1B",
            Ibarrier,
            MockBarrier,
            "a barrier must not lose to a 1-byte allgather",
        ),
        mock(
            "mock/iallgather<=igather+ibcast",
            Iallgather,
            MockAllgather,
            "an allgather must not lose to its gather+bcast mock-up",
        ),
    ]
}

// ---------------------------------------------------------------------------
// The sweep engine
// ---------------------------------------------------------------------------

/// The evaluation grid of one guideline sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Report tag (`"quick"`, `"full"`, or `"custom"`).
    pub mode: &'static str,
    /// Platform presets to evaluate (resolved via [`Platform::by_name`]).
    pub platforms: Vec<String>,
    /// Rank counts, ascending.
    pub ranks: Vec<usize>,
    /// Sweep message sizes, ascending.
    pub msgs: Vec<usize>,
}

impl SweepConfig {
    /// The verify-gate subset: 3 platforms × {4, 8} ranks × {1 KiB, 64 KiB}.
    pub fn quick() -> SweepConfig {
        SweepConfig {
            mode: "quick",
            platforms: vec!["crill".into(), "whale".into(), "bluegene-p".into()],
            ranks: vec![4, 8],
            msgs: vec![1024, 64 * 1024],
        }
    }

    /// The full sweep: every preset × {4, 8, 16} ranks × {1, 16, 256} KiB.
    pub fn full() -> SweepConfig {
        SweepConfig {
            mode: "full",
            platforms: Platform::preset_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            ranks: vec![4, 8, 16],
            msgs: vec![1024, 16 * 1024, 256 * 1024],
        }
    }
}

/// One evaluated check (a guideline instantiated at one config).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckRecord {
    /// Guideline id from the registry.
    pub guideline: &'static str,
    /// Config fingerprint, e.g. `"whale/p8/m65536"`.
    pub config: String,
    /// Left-hand side (must be ≤), e.g. `"ibcast/binomial-seg32k@m1024"`.
    pub lhs: String,
    /// Right-hand side (the bound).
    pub rhs: String,
    /// Measured left time in seconds.
    pub lhs_secs: f64,
    /// Measured right time in seconds.
    pub rhs_secs: f64,
    /// Relative slack `lhs/rhs − 1` (positive = lhs slower).
    pub slack: f64,
    /// True when `slack` exceeds the guideline's tolerance.
    pub violated: bool,
    /// True when `slack` also exceeds the severe threshold.
    pub severe: bool,
}

impl CheckRecord {
    fn new(
        g: &Guideline,
        config: String,
        lhs: String,
        rhs: String,
        lhs_secs: f64,
        rhs_secs: f64,
    ) -> CheckRecord {
        let (slack, violated, unmeasurable) = if !rhs_secs.is_finite() {
            // No finite bound: the check cannot conclude anything.
            (0.0, false, false)
        } else if !lhs_secs.is_finite() {
            (f64::INFINITY, true, true)
        } else if rhs_secs > 0.0 {
            let s = lhs_secs / rhs_secs - 1.0;
            (s, s > g.tolerance, false)
        } else {
            (0.0, false, false)
        };
        CheckRecord {
            guideline: g.id,
            config,
            lhs,
            rhs,
            lhs_secs,
            rhs_secs,
            slack,
            violated,
            // An lhs that cannot complete at all is severe under every
            // guideline, even ones whose finite violations stay
            // informational.
            severe: violated && (slack > g.severe_at || unmeasurable),
        }
    }
}

/// Per-guideline rollup of a sweep.
#[derive(Debug, Clone)]
pub struct GuidelineRollup {
    /// Guideline id.
    pub id: &'static str,
    /// Checks evaluated.
    pub checked: usize,
    /// Violations (any severity).
    pub violations: usize,
    /// Severe violations.
    pub severe: usize,
    /// Largest slack observed (negative = all comfortably inside).
    pub worst_slack: f64,
}

/// The result of one guideline sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The grid that was evaluated.
    pub config: SweepConfig,
    /// Every check, in deterministic registry × grid order.
    pub checks: Vec<CheckRecord>,
    /// Distinct probe measurements taken.
    pub probes: usize,
    /// Probes answered from the sim-memo cache.
    pub probe_replays: usize,
}

#[derive(Clone, Copy)]
struct ProbeReq {
    plat: usize,
    op: ProbeOp,
    nprocs: usize,
    msg: usize,
    func: usize,
}

type ProbeKey = (usize, ProbeOp, usize, usize, usize);
type ProbeMap = BTreeMap<ProbeKey, f64>;

/// Best (minimum) probe time of `op`'s set at one config, with the name
/// of the winning implementation.
fn best_of(times: &ProbeMap, plat: usize, op: ProbeOp, nprocs: usize, msg: usize) -> (String, f64) {
    let set = op.set(nprocs, msg);
    let mut best = (String::new(), f64::INFINITY);
    for (i, f) in set.functions.iter().enumerate() {
        let t = times[&(plat, op, nprocs, msg, i)];
        if t < best.1 || best.0.is_empty() {
            best = (format!("{}/{}", op.name(), f.name), t);
        }
    }
    best
}

/// Evaluate every registered guideline over the grid. Probes run on the
/// shared worker pool (`jobs` as in the figure binaries); checks are
/// derived serially from the merged probe table, so the report — and its
/// JSON rendering — is byte-identical for any `jobs` value.
pub fn run_sweep(cfg: &SweepConfig, jobs: usize) -> SweepReport {
    let platforms: Vec<Platform> = cfg
        .platforms
        .iter()
        .map(|n| Platform::by_name(n).unwrap_or_else(|| panic!("unknown platform preset {n:?}")))
        .collect();
    let guidelines = registry();

    // Every distinct probe the checks below will read, in a stable order.
    let mut reqs: Vec<ProbeReq> = Vec::new();
    let mut seen: std::collections::BTreeSet<ProbeKey> = Default::default();
    let mut need = |reqs: &mut Vec<ProbeReq>, plat: usize, op: ProbeOp, p: usize, m: usize| {
        let m = if op.msg_sensitive() { m } else { 0 };
        let set_len = op.set(p, m).len();
        for func in 0..set_len {
            if seen.insert((plat, op, p, m, func)) {
                reqs.push(ProbeReq {
                    plat,
                    op,
                    nprocs: p,
                    msg: m,
                    func,
                });
            }
        }
    };
    for (pi, _) in platforms.iter().enumerate() {
        for &p in &cfg.ranks {
            for &m in &cfg.msgs {
                for g in &guidelines {
                    match g.kind {
                        Kind::MonotoneMsg(op) | Kind::MonotoneRanks(op) => {
                            need(&mut reqs, pi, op, p, m)
                        }
                        Kind::Dominance { lhs, rhs } => {
                            need(&mut reqs, pi, lhs, p, m);
                            need(&mut reqs, pi, rhs, p, m);
                        }
                        Kind::Composition { lhs, mock } => {
                            need(&mut reqs, pi, lhs, p, m);
                            need(&mut reqs, pi, mock, p, m);
                        }
                    }
                }
            }
        }
    }

    // Measure on the worker pool; merge preserves input order.
    let est_nanos = 2_000u64 * PROBE_ITERS as u64 * 8;
    let results: Vec<(f64, bool)> = simcore::par::par_map_costed(jobs, &reqs, est_nanos, |_, r| {
        probe(&platforms[r.plat], r.op, r.nprocs, r.msg, r.func)
    });
    let mut times: ProbeMap = BTreeMap::new();
    let mut replays = 0usize;
    for (r, &(secs, replayed)) in reqs.iter().zip(&results) {
        times.insert((r.plat, r.op, r.nprocs, r.msg, r.func), secs);
        replays += replayed as usize;
    }

    // Derive the checks serially in registry × platform × grid order.
    let mut checks: Vec<CheckRecord> = Vec::new();
    for g in &guidelines {
        for (pi, plat) in platforms.iter().enumerate() {
            match g.kind {
                Kind::MonotoneMsg(op) => {
                    if !op.msg_sensitive() {
                        continue;
                    }
                    for &p in &cfg.ranks {
                        let set = op.set(p, cfg.msgs[0]);
                        for (fi, f) in set.functions.iter().enumerate() {
                            for w in cfg.msgs.windows(2) {
                                let (m1, m2) = (w[0], w[1]);
                                checks.push(CheckRecord::new(
                                    g,
                                    format!("{}/p{p}", plat.name),
                                    format!("{}/{}@m{m1}", op.name(), f.name),
                                    format!("{}/{}@m{m2}", op.name(), f.name),
                                    times[&(pi, op, p, m1, fi)],
                                    times[&(pi, op, p, m2, fi)],
                                ));
                            }
                        }
                    }
                }
                Kind::MonotoneRanks(op) => {
                    let msgs: &[usize] = if op.msg_sensitive() {
                        &cfg.msgs
                    } else {
                        &cfg.msgs[..1]
                    };
                    for &m in msgs {
                        let m = if op.msg_sensitive() { m } else { 0 };
                        let set = op.set(cfg.ranks[0], m);
                        for (fi, f) in set.functions.iter().enumerate() {
                            for w in cfg.ranks.windows(2) {
                                let (p1, p2) = (w[0], w[1]);
                                checks.push(CheckRecord::new(
                                    g,
                                    format!("{}/m{m}", plat.name),
                                    format!("{}/{}@p{p1}", op.name(), f.name),
                                    format!("{}/{}@p{p2}", op.name(), f.name),
                                    times[&(pi, op, p1, m, fi)],
                                    times[&(pi, op, p2, m, fi)],
                                ));
                            }
                        }
                    }
                }
                Kind::Dominance { lhs, rhs } | Kind::Composition { lhs, mock: rhs } => {
                    let msg_dep = lhs.msg_sensitive() || rhs.msg_sensitive();
                    let msgs: &[usize] = if msg_dep { &cfg.msgs } else { &cfg.msgs[..1] };
                    for &m in msgs {
                        for &p in &cfg.ranks {
                            let ml = if lhs.msg_sensitive() { m } else { 0 };
                            let mr = if rhs.msg_sensitive() { m } else { 0 };
                            let (ln, lt) = best_of(&times, pi, lhs, p, ml);
                            let (rn, rt) = best_of(&times, pi, rhs, p, mr);
                            checks.push(CheckRecord::new(
                                g,
                                format!("{}/p{p}/m{m}", plat.name),
                                ln,
                                rn,
                                lt,
                                rt,
                            ));
                        }
                    }
                }
            }
        }
    }

    let report = SweepReport {
        config: cfg.clone(),
        checks,
        probes: reqs.len(),
        probe_replays: replays,
    };
    metrics::counter("guidelines.checked").add(report.checks.len() as u64);
    metrics::counter("guidelines.violations").add(report.violation_count() as u64);
    let worst = report.worst_slack();
    if worst.is_finite() && worst > 0.0 {
        // The registry is integer-valued; slack is stored in parts/million.
        metrics::gauge("guidelines.worst_slack").record_max((worst * 1e6) as u64);
    }
    report
}

impl SweepReport {
    /// The violated checks, in evaluation order.
    pub fn violations(&self) -> Vec<&CheckRecord> {
        self.checks.iter().filter(|c| c.violated).collect()
    }

    /// Number of violated checks.
    pub fn violation_count(&self) -> usize {
        self.checks.iter().filter(|c| c.violated).count()
    }

    /// Number of severe violations (the verify gate).
    pub fn severe_count(&self) -> usize {
        self.checks.iter().filter(|c| c.severe).count()
    }

    /// Largest slack across all checks (`-INFINITY` when empty).
    pub fn worst_slack(&self) -> f64 {
        self.checks
            .iter()
            .map(|c| c.slack)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Number of distinct guidelines that produced at least one check.
    pub fn distinct_guidelines(&self) -> usize {
        let ids: std::collections::BTreeSet<&str> =
            self.checks.iter().map(|c| c.guideline).collect();
        ids.len()
    }

    /// Per-guideline rollup, in registry order.
    pub fn rollup(&self) -> Vec<GuidelineRollup> {
        registry()
            .iter()
            .map(|g| {
                let of_g: Vec<&CheckRecord> =
                    self.checks.iter().filter(|c| c.guideline == g.id).collect();
                GuidelineRollup {
                    id: g.id,
                    checked: of_g.len(),
                    violations: of_g.iter().filter(|c| c.violated).count(),
                    severe: of_g.iter().filter(|c| c.severe).count(),
                    worst_slack: of_g
                        .iter()
                        .map(|c| c.slack)
                        .fold(f64::NEG_INFINITY, f64::max),
                }
            })
            .collect()
    }

    /// Render the `BENCH_guidelines.json` document: schema tag, grid,
    /// summary rollup and the full violation list. Contains no wall-clock
    /// or job-count fields, so it is byte-identical across runs and
    /// `--jobs` values.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"adcl-guidelines-v1\",\n");
        let _ = writeln!(out, "  \"mode\": \"{}\",", self.config.mode);
        let plats: Vec<String> = self
            .config
            .platforms
            .iter()
            .map(|p| format!("\"{}\"", trace::escape(p)))
            .collect();
        let _ = writeln!(out, "  \"platforms\": [{}],", plats.join(", "));
        let _ = writeln!(
            out,
            "  \"ranks\": [{}],",
            self.config
                .ranks
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            out,
            "  \"msg_bytes\": [{}],",
            self.config
                .msgs
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            out,
            "  \"summary\": {{\"guidelines\": {}, \"checked\": {}, \"violations\": {}, \
             \"severe\": {}, \"worst_slack\": {}, \"probes\": {}}},",
            self.distinct_guidelines(),
            self.checks.len(),
            self.violation_count(),
            self.severe_count(),
            json_num(self.worst_slack()),
            self.probes
        );
        out.push_str("  \"rollup\": [\n");
        let rollup = self.rollup();
        for (i, r) in rollup.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"id\": \"{}\", \"checked\": {}, \"violations\": {}, \"severe\": {}, \
                 \"worst_slack\": {}}}{}",
                trace::escape(r.id),
                r.checked,
                r.violations,
                r.severe,
                json_num(r.worst_slack),
                if i + 1 < rollup.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n  \"violations\": [\n");
        let viols = self.violations();
        for (i, c) in viols.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"guideline\": \"{}\", \"config\": \"{}\", \"lhs\": \"{}\", \
                 \"rhs\": \"{}\", \"lhs_secs\": {}, \"rhs_secs\": {}, \"slack\": {}, \
                 \"severity\": \"{}\"}}{}",
                trace::escape(c.guideline),
                trace::escape(&c.config),
                trace::escape(&c.lhs),
                trace::escape(&c.rhs),
                json_num(c.lhs_secs),
                json_num(c.rhs_secs),
                json_num(c.slack),
                if c.severe { "severe" } else { "info" },
                if i + 1 < viols.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_num(v: f64) -> String {
    // JSON has no Infinity literal; unbounded slacks serialize as null.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

// ---------------------------------------------------------------------------
// Audit cross-check
// ---------------------------------------------------------------------------

/// A tuner decision that clean fixed-schedule probes prove dominated: the
/// committed winner measured more than [`FLAG_TOLERANCE`] slower than a
/// sibling implementation of the same set at the decision's exact config.
#[derive(Debug, Clone, PartialEq)]
pub struct GuidelineFlag {
    /// The decision's audit label (`"whale/ibcast/p16/m262144/g4/…"`).
    pub label: String,
    /// Operation name.
    pub op: String,
    /// The committed winner.
    pub winner: String,
    /// Its clean probe time in seconds.
    pub winner_secs: f64,
    /// The fastest sibling implementation.
    pub best: String,
    /// Its clean probe time in seconds.
    pub best_secs: f64,
    /// Relative advantage the winner left on the table
    /// (`winner/best − 1`).
    pub advantage: f64,
}

impl GuidelineFlag {
    /// Render as one JSON object (single line, hand-written — the
    /// workspace is dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"op\":\"{}\",\"winner\":\"{}\",\"winner_secs\":{},\
             \"best\":\"{}\",\"best_secs\":{},\"advantage\":{}}}",
            trace::escape(&self.label),
            trace::escape(&self.op),
            trace::escape(&self.winner),
            json_num(self.winner_secs),
            trace::escape(&self.best),
            json_num(self.best_secs),
            json_num(self.advantage)
        )
    }
}

/// Render a flag list as the contents of a JSON array.
pub fn render_flags_json(flags: &[GuidelineFlag]) -> String {
    flags
        .iter()
        .map(|f| f.to_json())
        .collect::<Vec<_>>()
        .join(",\n")
}

/// Parse a driver audit label (`"platform/op/pN/mM/…"`) back into a probe
/// config. Returns `None` for labels without the full config (e.g. ops
/// the probe library does not cover, or bare op names set by tests).
fn parse_label(label: &str) -> Option<(Platform, ProbeOp, usize, usize)> {
    let mut parts = label.split('/');
    let platform = Platform::by_name(parts.next()?)?;
    let op = ProbeOp::from_op_name(parts.next()?)?;
    let p = parts.next()?.strip_prefix('p')?.parse().ok()?;
    let m = parts.next()?.strip_prefix('m')?.parse().ok()?;
    Some((platform, op, p, m))
}

/// Run `f` with span/audit recording suspended, so cross-check probes do
/// not leak synthetic runs into an in-flight trace collection.
fn untraced<R>(f: impl FnOnce() -> R) -> R {
    let was = trace::enabled();
    if was {
        trace::set_enabled(false);
    }
    let out = f();
    if was {
        trace::set_enabled(true);
    }
    out
}

/// Cross-check tuner decisions against clean probe measurements: for each
/// record whose label parses to a probe config, measure every sibling of
/// the decided set at that exact shape and flag the winner if a sibling
/// proves more than `tolerance` faster. At most `cap` records are checked
/// (the `quick` export mode bounds the work).
pub fn cross_check_audit(
    records: &[DecisionAudit],
    tolerance: f64,
    cap: usize,
) -> Vec<GuidelineFlag> {
    untraced(|| {
        let mut flags = Vec::new();
        for rec in records.iter().take(cap) {
            let Some((platform, op, p, m)) = parse_label(&rec.label) else {
                continue;
            };
            let times = op_probe_times(&platform, op, p, m);
            // The blocking variants of extended sets build the identical
            // schedule; fold them onto the non-blocking probe.
            let winner_name = rec
                .winner_name
                .strip_suffix("-blocking")
                .unwrap_or(&rec.winner_name);
            let Some(&(_, winner_secs)) = times.iter().find(|(n, _)| n == winner_name) else {
                continue;
            };
            let Some((best_name, best_secs)) =
                times.iter().min_by(|a, b| a.1.total_cmp(&b.1)).cloned()
            else {
                continue;
            };
            if winner_secs.is_finite()
                && best_secs > 0.0
                && winner_secs > best_secs * (1.0 + tolerance)
            {
                flags.push(GuidelineFlag {
                    label: rec.label.clone(),
                    op: rec.op.clone(),
                    winner: rec.winner_name.clone(),
                    winner_secs,
                    best: format!("{}/{}", op.name(), best_name),
                    best_secs,
                    advantage: winner_secs / best_secs - 1.0,
                });
            }
        }
        flags
    })
}

// ---------------------------------------------------------------------------
// Mode switch (NBC_GUIDELINES)
// ---------------------------------------------------------------------------

/// How much guideline work the audit export performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No cross-check; `guidelineFlags` exports empty (the default).
    Off,
    /// Cross-check the first 32 decisions.
    Quick,
    /// Cross-check every decision.
    Full,
}

impl Mode {
    /// Decision-record cap for this mode.
    pub fn cap(self) -> usize {
        match self {
            Mode::Off => 0,
            Mode::Quick => 32,
            Mode::Full => usize::MAX,
        }
    }
}

const MODE_UNSET: u8 = 0;
static MODE_OVERRIDE: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// Programmatic override of the `NBC_GUIDELINES` mode (tests and drivers);
/// `None` reverts to the environment.
pub fn set_mode_override(mode: Option<Mode>) {
    let v = match mode {
        None => MODE_UNSET,
        Some(Mode::Off) => 1,
        Some(Mode::Quick) => 2,
        Some(Mode::Full) => 3,
    };
    MODE_OVERRIDE.store(v, Ordering::Release);
}

/// The active mode: the programmatic override if set, else
/// `NBC_GUIDELINES` (`off` | `quick` | `full`; unknown values and unset
/// mean `off`).
pub fn mode() -> Mode {
    match MODE_OVERRIDE.load(Ordering::Acquire) {
        1 => return Mode::Off,
        2 => return Mode::Quick,
        3 => return Mode::Full,
        _ => {}
    }
    match std::env::var("NBC_GUIDELINES").as_deref() {
        Ok("quick") => Mode::Quick,
        Ok("full") => Mode::Full,
        _ => Mode::Off,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_rich_and_distinct() {
        let reg = registry();
        assert!(reg.len() >= 8, "at least 8 guidelines required");
        let ids: std::collections::BTreeSet<&str> = reg.iter().map(|g| g.id).collect();
        assert_eq!(ids.len(), reg.len(), "guideline ids must be distinct");
        // Only monotonicity of a *fixed* algorithm can escalate on a
        // finite slack — a cross-set comparison (dominance, composition)
        // that fails means the lhs set lacks an algorithm, which is a
        // tuning opportunity, not a bug.
        for g in &reg {
            let self_consistency = matches!(g.kind, Kind::MonotoneMsg(_) | Kind::MonotoneRanks(_));
            assert_eq!(
                g.severe_at.is_finite(),
                self_consistency,
                "{} severity class does not match its kind",
                g.id
            );
        }
    }

    #[test]
    fn quick_grid_covers_three_platforms() {
        let q = SweepConfig::quick();
        assert!(q.platforms.len() >= 3);
        for p in &q.platforms {
            assert!(Platform::by_name(p).is_some(), "unknown preset {p}");
        }
        assert!(q.ranks.windows(2).all(|w| w[0] < w[1]));
        assert!(q.msgs.windows(2).all(|w| w[0] < w[1]));
        let f = SweepConfig::full();
        assert_eq!(f.platforms.len(), Platform::preset_names().len());
    }

    #[test]
    fn mockup_sets_construct_and_validate() {
        for p in [4usize, 8] {
            for op in [
                ProbeOp::MockBcast,
                ProbeOp::MockAllreduce,
                ProbeOp::MockBarrier,
                ProbeOp::MockAllgather,
            ] {
                let set = op.set(p, 4096);
                assert!(!set.is_empty(), "{op:?}");
                {
                    let (r, f) = (0usize, &set.functions[0]);
                    let sched = (f.builder)(r, &set.spec);
                    sched
                        .validate(r, None)
                        .unwrap_or_else(|e| panic!("{op:?}/{} invalid at rank {r}: {e}", f.name));
                    assert!(sched.num_rounds() > 0, "{op:?}/{}", f.name);
                }
            }
        }
    }

    #[test]
    fn mock_bcast_has_two_phases_worth_of_rounds() {
        let set = ProbeOp::MockBcast.set(8, 64 * 1024);
        let spec = set.spec;
        for f in &set.functions {
            let stitched = (f.builder)(3, &spec);
            // A stitched mock-up must be strictly deeper than either phase
            // alone (rounds concatenate).
            assert!(stitched.num_rounds() >= 2, "{}", f.name);
            assert!(stitched.bytes_sent() > 0 || stitched.bytes_received() > 0);
        }
    }

    #[test]
    fn probe_is_memoized() {
        simmemo::set_enabled(true);
        let plat = Platform::whale();
        let (a, _) = probe(&plat, ProbeOp::Ialltoall, 4, 256, 0);
        let (b, replayed) = probe(&plat, ProbeOp::Ialltoall, 4, 256, 0);
        assert!(a.is_finite() && a > 0.0);
        assert_eq!(a, b, "memoized probe must replay bit-identically");
        assert!(replayed, "second probe must come from the memo cache");
        simmemo::clear_enabled_override();
    }

    #[test]
    fn label_parsing_roundtrip() {
        let (plat, op, p, m) =
            parse_label("whale/ibcast/p16/m262144/g4/BruteForce").expect("parses");
        assert_eq!(plat.name, "whale");
        assert_eq!(op, ProbeOp::Ibcast);
        assert_eq!((p, m), (16, 262144));
        assert!(parse_label("ibcast").is_none(), "bare op labels skip");
        assert!(parse_label("nosuch/ibcast/p4/m64/g4/X").is_none());
        assert!(parse_label("whale/ineighbor/p4/m64/g4/X").is_none());
    }

    #[test]
    fn check_record_severity_math() {
        let g = Guideline {
            id: "test",
            kind: Kind::Dominance {
                lhs: ProbeOp::Ireduce,
                rhs: ProbeOp::Iallreduce,
            },
            tolerance: 0.05,
            severe_at: 0.50,
            why: "",
        };
        let mk = |l: f64, r: f64| CheckRecord::new(&g, "c".into(), "l".into(), "r".into(), l, r);
        assert!(!mk(1.0, 1.0).violated);
        assert!(!mk(1.04, 1.0).violated, "inside tolerance");
        let v = mk(1.2, 1.0);
        assert!(v.violated && !v.severe);
        assert!((v.slack - 0.2).abs() < 1e-12);
        let s = mk(1.6, 1.0);
        assert!(s.violated && s.severe);
        assert!(!mk(1.0, f64::INFINITY).violated, "no finite bound");
        let inf = mk(f64::INFINITY, 1.0);
        assert!(
            inf.violated && inf.severe,
            "unmeasurable lhs vs finite bound"
        );

        // Informational guidelines (severe_at = INF) never escalate on a
        // finite slack, but an unmeasurable lhs still does.
        let info = Guideline {
            severe_at: f64::INFINITY,
            ..g
        };
        let big = CheckRecord::new(&info, "c".into(), "l".into(), "r".into(), 10.0, 1.0);
        assert!(big.violated && !big.severe);
        let dead = CheckRecord::new(
            &info,
            "c".into(),
            "l".into(),
            "r".into(),
            f64::INFINITY,
            1.0,
        );
        assert!(dead.violated && dead.severe);
    }

    #[test]
    fn mode_override_wins_over_env() {
        set_mode_override(Some(Mode::Full));
        assert_eq!(mode(), Mode::Full);
        assert_eq!(Mode::Full.cap(), usize::MAX);
        set_mode_override(Some(Mode::Off));
        assert_eq!(mode(), Mode::Off);
        set_mode_override(None);
    }
}
