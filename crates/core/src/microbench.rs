//! The paper's §IV-A micro-benchmark.
//!
//! The benchmark executes a loop a configurable number of times; each
//! iteration initiates the non-blocking collective, executes a compute
//! operation split into equal chunks with an `ADCL_Progress` call after
//! each chunk, and finally calls the completion function:
//!
//! ```text
//! for it in 0..iters {
//!     timer_start;
//!     start(op);
//!     repeat num_progress times { compute(chunk); progress(op); }
//!     wait(op);
//!     timer_stop;
//! }
//! ```
//!
//! If the library fully overlaps communication with computation, the
//! measured loop time equals the compute time; any excess is exposed
//! communication. The compute time per iteration is
//! `compute_total / iters`, and each chunk is that divided by the number of
//! progress calls.

use crate::runner::{Instr, Script};
use simcore::SimTime;

/// Configuration of one micro-benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct MicroBenchConfig {
    /// Loop iterations (the paper uses 1 000 for long messages, 10 000 for
    /// short ones).
    pub iters: usize,
    /// Total compute time across the whole loop (e.g. 50 s).
    pub compute_total: SimTime,
    /// Progress calls inserted per iteration (>= 1).
    pub num_progress: usize,
}

/// Systematic load imbalance across ranks, producing the *process arrival
/// patterns* of Faraj et al. that the paper names as a key application
/// characteristic: ranks enter the collective at different times because
/// their compute phases differ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Imbalance {
    /// All ranks compute equally long.
    None,
    /// Compute scales linearly from `1 - spread/2` (rank 0) to
    /// `1 + spread/2` (last rank); mean preserved.
    Ramp {
        /// Total relative spread, e.g. 0.2 = ±10 %.
        spread: f64,
    },
    /// One straggler rank computes `factor` times as long as the rest.
    Straggler {
        /// The slow rank.
        rank: usize,
        /// Its compute multiplier (> 1).
        factor: f64,
    },
}

impl Imbalance {
    /// Compute-time multiplier for `rank` of `nranks`.
    pub fn factor(&self, rank: usize, nranks: usize) -> f64 {
        match *self {
            Imbalance::None => 1.0,
            Imbalance::Ramp { spread } => {
                if nranks <= 1 {
                    1.0
                } else {
                    1.0 + spread * (rank as f64 / (nranks - 1) as f64 - 0.5)
                }
            }
            Imbalance::Straggler { rank: slow, factor } => {
                if rank == slow {
                    factor
                } else {
                    1.0
                }
            }
        }
    }
}

impl MicroBenchConfig {
    /// Compute time of one iteration.
    pub fn compute_per_iter(&self) -> SimTime {
        self.compute_total / self.iters as u64
    }

    /// Compute time of one chunk (between progress calls).
    pub fn chunk(&self) -> SimTime {
        self.compute_per_iter() / self.num_progress.max(1) as u64
    }
}

/// Lazy per-rank script generating the micro-benchmark loop (avoids
/// materializing millions of instructions).
pub struct MicroBenchScript {
    cfg: MicroBenchConfig,
    /// This rank's compute-time multiplier (arrival-pattern imbalance).
    compute_scale: f64,
    op: usize,
    timer: usize,
    iter: usize,
    /// Position within one iteration: 0 = timer start, 1 = op start,
    /// 2..2+2k = alternating compute/progress, then wait, then timer stop.
    pos: usize,
}

impl MicroBenchScript {
    /// Script for one rank.
    pub fn new(cfg: MicroBenchConfig, op: usize, timer: usize) -> MicroBenchScript {
        Self::with_scale(cfg, op, timer, 1.0)
    }

    /// Script for one rank with a compute-time multiplier (see
    /// [`Imbalance`]).
    pub fn with_scale(
        cfg: MicroBenchConfig,
        op: usize,
        timer: usize,
        compute_scale: f64,
    ) -> MicroBenchScript {
        assert!(cfg.iters > 0 && cfg.num_progress > 0);
        assert!(compute_scale > 0.0);
        MicroBenchScript {
            cfg,
            compute_scale,
            op,
            timer,
            iter: 0,
            pos: 0,
        }
    }

    /// Build one boxed script per rank.
    pub fn per_rank(
        cfg: MicroBenchConfig,
        op: usize,
        timer: usize,
        nranks: usize,
    ) -> Vec<Box<dyn Script>> {
        Self::per_rank_imbalanced(cfg, op, timer, nranks, Imbalance::None)
    }

    /// Build per-rank scripts with an arrival-pattern imbalance.
    pub fn per_rank_imbalanced(
        cfg: MicroBenchConfig,
        op: usize,
        timer: usize,
        nranks: usize,
        imbalance: Imbalance,
    ) -> Vec<Box<dyn Script>> {
        (0..nranks)
            .map(|r| {
                Box::new(Self::with_scale(
                    cfg,
                    op,
                    timer,
                    imbalance.factor(r, nranks),
                )) as Box<dyn Script>
            })
            .collect()
    }
}

impl Script for MicroBenchScript {
    fn next(&mut self) -> Option<Instr> {
        if self.iter >= self.cfg.iters {
            return None;
        }
        let k = self.cfg.num_progress;
        // Instruction layout per iteration:
        //   0:              TimerStart
        //   1:              Start
        //   2 + 2j:         Compute(chunk)       j in 0..k
        //   3 + 2j:         Progress             j in 0..k
        //   2 + 2k:         Wait
        //   3 + 2k:         TimerStop
        let instr = match self.pos {
            0 => Instr::TimerStart(self.timer),
            1 => Instr::Start {
                op: self.op,
                slot: 0,
            },
            p if p < 2 + 2 * k => {
                if (p - 2) % 2 == 0 {
                    Instr::Compute(self.cfg.chunk().scale(self.compute_scale))
                } else {
                    Instr::Progress { op: self.op }
                }
            }
            p if p == 2 + 2 * k => Instr::Wait {
                op: self.op,
                slot: 0,
            },
            _ => Instr::TimerStop(self.timer),
        };
        if self.pos == 3 + 2 * k {
            self.pos = 0;
            self.iter += 1;
        } else {
            self.pos += 1;
        }
        Some(instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(cfg: MicroBenchConfig) -> Vec<Instr> {
        let mut s = MicroBenchScript::new(cfg, 7, 3);
        let mut v = Vec::new();
        while let Some(i) = s.next() {
            v.push(i);
        }
        v
    }

    #[test]
    fn instruction_shape_one_iteration() {
        let cfg = MicroBenchConfig {
            iters: 1,
            compute_total: SimTime::from_millis(10),
            num_progress: 2,
        };
        let v = collect(cfg);
        assert_eq!(
            v,
            vec![
                Instr::TimerStart(3),
                Instr::Start { op: 7, slot: 0 },
                Instr::Compute(SimTime::from_millis(5)),
                Instr::Progress { op: 7 },
                Instr::Compute(SimTime::from_millis(5)),
                Instr::Progress { op: 7 },
                Instr::Wait { op: 7, slot: 0 },
                Instr::TimerStop(3),
            ]
        );
    }

    #[test]
    fn total_compute_is_preserved() {
        let cfg = MicroBenchConfig {
            iters: 10,
            compute_total: SimTime::from_secs(1),
            num_progress: 4,
        };
        let v = collect(cfg);
        let total: SimTime = v
            .iter()
            .filter_map(|i| match i {
                Instr::Compute(d) => Some(*d),
                _ => None,
            })
            .sum();
        assert_eq!(total, SimTime::from_secs(1));
        let progresses = v
            .iter()
            .filter(|i| matches!(i, Instr::Progress { .. }))
            .count();
        assert_eq!(progresses, 40);
        let waits = v.iter().filter(|i| matches!(i, Instr::Wait { .. })).count();
        assert_eq!(waits, 10);
    }

    #[test]
    fn imbalance_factors() {
        assert_eq!(Imbalance::None.factor(3, 8), 1.0);
        let ramp = Imbalance::Ramp { spread: 0.2 };
        assert!((ramp.factor(0, 5) - 0.9).abs() < 1e-12);
        assert!((ramp.factor(4, 5) - 1.1).abs() < 1e-12);
        assert!((ramp.factor(2, 5) - 1.0).abs() < 1e-12);
        // mean preserved over all ranks
        let mean: f64 = (0..5).map(|r| ramp.factor(r, 5)).sum::<f64>() / 5.0;
        assert!((mean - 1.0).abs() < 1e-12);
        let strag = Imbalance::Straggler {
            rank: 2,
            factor: 3.0,
        };
        assert_eq!(strag.factor(2, 8), 3.0);
        assert_eq!(strag.factor(3, 8), 1.0);
    }

    #[test]
    fn scaled_script_stretches_compute() {
        let cfg = MicroBenchConfig {
            iters: 1,
            compute_total: SimTime::from_millis(10),
            num_progress: 2,
        };
        let mut s = MicroBenchScript::with_scale(cfg, 0, 0, 1.5);
        let mut total = SimTime::ZERO;
        while let Some(i) = s.next() {
            if let Instr::Compute(d) = i {
                total += d;
            }
        }
        assert_eq!(total, SimTime::from_millis(15));
    }

    #[test]
    fn chunking_math() {
        let cfg = MicroBenchConfig {
            iters: 100,
            compute_total: SimTime::from_secs(50),
            num_progress: 5,
        };
        assert_eq!(cfg.compute_per_iter(), SimTime::from_millis(500));
        assert_eq!(cfg.chunk(), SimTime::from_millis(100));
    }
}
