//! Attributes characterizing alternative implementations.
//!
//! An ADCL function-set may carry an *attribute-set*: each attribute
//! describes one characteristic of an implementation (the algorithm, the
//! tree fan-out, the segment size, the data-transfer primitive, ...), and
//! each function in the set is annotated with one value per attribute. The
//! attribute-based selection heuristic and the 2^k factorial design operate
//! on this structure rather than on the flat function list.

/// One attribute: a name and the domain of values it takes across the
/// function-set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (e.g. `"fanout"`, `"segsize"`, `"algorithm"`).
    pub name: String,
    /// Distinct values occurring in the function-set, ascending.
    pub values: Vec<i64>,
}

/// The attribute-set of a function-set: the attribute definitions plus the
/// per-function value vectors.
#[derive(Debug, Clone, Default)]
pub struct AttributeSet {
    /// Attribute definitions, in vector order.
    pub attrs: Vec<Attribute>,
}

impl AttributeSet {
    /// Derive an attribute-set from per-function value vectors.
    ///
    /// # Panics
    /// Panics if the vectors are ragged or `names.len()` disagrees.
    pub fn from_functions(names: &[&str], per_function: &[Vec<i64>]) -> AttributeSet {
        for v in per_function {
            assert_eq!(v.len(), names.len(), "ragged attribute vectors");
        }
        let attrs = names
            .iter()
            .enumerate()
            .map(|(i, &name)| {
                let mut values: Vec<i64> = per_function.iter().map(|v| v[i]).collect();
                values.sort_unstable();
                values.dedup();
                Attribute {
                    name: name.to_string(),
                    values,
                }
            })
            .collect();
        AttributeSet { attrs }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if there are no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Index of the attribute called `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Total size of the full cartesian attribute space (for diagnostics;
    /// the function-set may cover only part of it).
    pub fn space_size(&self) -> usize {
        self.attrs.iter().map(|a| a.values.len().max(1)).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_domains() {
        let fns = vec![vec![0, 32], vec![0, 64], vec![1, 32], vec![1, 64]];
        let set = AttributeSet::from_functions(&["fanout", "segsize"], &fns);
        assert_eq!(set.len(), 2);
        assert_eq!(set.attrs[0].values, vec![0, 1]);
        assert_eq!(set.attrs[1].values, vec![32, 64]);
        assert_eq!(set.space_size(), 4);
        assert_eq!(set.index_of("segsize"), Some(1));
        assert_eq!(set.index_of("nope"), None);
    }

    #[test]
    fn dedups_and_sorts() {
        let fns = vec![vec![5], vec![3], vec![5], vec![1]];
        let set = AttributeSet::from_functions(&["x"], &fns);
        assert_eq!(set.attrs[0].values, vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged() {
        AttributeSet::from_functions(&["a", "b"], &[vec![1, 2], vec![1]]);
    }

    #[test]
    fn empty_set() {
        let set = AttributeSet::from_functions(&[], &[vec![], vec![]]);
        assert!(set.is_empty());
        assert_eq!(set.space_size(), 1);
    }
}
