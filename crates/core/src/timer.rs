//! Timer objects: measuring non-blocking operations indirectly.
//!
//! The execution time of a non-blocking collective cannot be measured
//! directly — the operation is only partially visible to the application.
//! ADCL therefore decouples measurement from the communication calls: the
//! user brackets a code section (typically one iteration of the main
//! compute loop) with [`Timer::start`] / [`Timer::stop`], and the elapsed
//! time is attributed to the implementation used inside that section.
//!
//! Each rank measures locally; an iteration's cost is the **maximum**
//! across ranks (the equivalent of the allreduce ADCL performs), which is
//! reported exactly once, when the last rank closes the window.
//!
//! A timer may be associated with *several* operations (`ops`), enabling
//! the co-tuning extension discussed in the paper's conclusions: the
//! runtime tunes one attached operation at a time while the others stay
//! frozen at their current best implementation.

use simcore::SimTime;
use std::collections::BTreeMap;

/// A measurement window aggregator across ranks.
///
/// # Example
///
/// ```
/// use adcl::timer::Timer;
/// use simcore::SimTime;
///
/// let mut t = Timer::new(2, vec![]);
/// t.start(0, SimTime::ZERO);
/// t.start(1, SimTime::ZERO);
/// assert_eq!(t.stop(0, SimTime::from_micros(10)), None); // rank 1 pending
/// let (iter, max) = t.stop(1, SimTime::from_micros(30)).unwrap();
/// assert_eq!(iter, 0);
/// assert!((max - 30e-6).abs() < 1e-12); // slowest rank defines the cost
/// ```
#[derive(Debug)]
pub struct Timer {
    /// Number of participating ranks (completions needed per iteration).
    participants: usize,
    /// Whether a given global rank participates (None = all ranks do).
    member: Option<Vec<bool>>,
    /// Open window start per rank.
    open: Vec<Option<SimTime>>,
    /// Completed iterations per rank.
    stops: Vec<usize>,
    /// In-flight aggregation: iteration → (ranks reported, max elapsed s).
    agg: BTreeMap<usize, (usize, f64)>,
    /// Completed per-iteration max elapsed times, in seconds.
    history: Vec<f64>,
    /// Operation ids (indices into the session's op table) co-tuned under
    /// this timer.
    pub ops: Vec<usize>,
    /// Which attached op was actively learning in each iteration
    /// (memoized by the runner at assignment time).
    pub active_memo: Vec<Option<usize>>,
}

impl Timer {
    /// A timer over `nranks` ranks tuning the given operations.
    pub fn new(nranks: usize, ops: Vec<usize>) -> Timer {
        Timer {
            participants: nranks,
            member: None,
            open: vec![None; nranks],
            stops: vec![0; nranks],
            agg: BTreeMap::new(),
            history: Vec::new(),
            ops,
            active_memo: Vec::new(),
        }
    }

    /// A timer whose measurement window is only executed by the ranks of a
    /// sub-communicator. `nranks` is the world size; `members` the global
    /// ranks that start/stop this timer.
    pub fn new_subset(nranks: usize, members: &[usize], ops: Vec<usize>) -> Timer {
        assert!(!members.is_empty(), "empty timer subset");
        let mut member = vec![false; nranks];
        for &m in members {
            member[m] = true;
        }
        Timer {
            participants: members.len(),
            member: Some(member),
            open: vec![None; nranks],
            stops: vec![0; nranks],
            agg: BTreeMap::new(),
            history: Vec::new(),
            ops,
            active_memo: Vec::new(),
        }
    }

    /// True if `rank` participates in this timer.
    pub fn is_member(&self, rank: usize) -> bool {
        self.member.as_ref().is_none_or(|m| m[rank])
    }

    /// The iteration `rank` is currently in (number of windows it has
    /// closed).
    pub fn iter_of(&self, rank: usize) -> usize {
        self.stops[rank]
    }

    /// Open the measurement window on `rank`.
    ///
    /// # Panics
    /// Panics if the rank already has an open window.
    pub fn start(&mut self, rank: usize, now: SimTime) {
        assert!(
            self.is_member(rank),
            "rank {rank} is not a member of this timer"
        );
        assert!(
            self.open[rank].is_none(),
            "rank {rank}: timer started twice without stop"
        );
        self.open[rank] = Some(now);
    }

    /// Close the window on `rank`. Returns `Some((iteration, max_elapsed))`
    /// exactly once per iteration — when the last rank reports.
    ///
    /// # Panics
    /// Panics if the rank has no open window.
    pub fn stop(&mut self, rank: usize, now: SimTime) -> Option<(usize, f64)> {
        let begun = self.open[rank]
            .take()
            .unwrap_or_else(|| panic!("rank {rank}: timer stopped without start"));
        let elapsed = (now - begun).as_secs_f64();
        let iter = self.stops[rank];
        self.stops[rank] += 1;
        let entry = self.agg.entry(iter).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 = entry.1.max(elapsed);
        if entry.0 == self.participants {
            let (_, max) = self.agg.remove(&iter).expect("entry exists");
            debug_assert_eq!(iter, self.history.len(), "iterations complete in order");
            self.history.push(max);
            return Some((iter, max));
        }
        None
    }

    /// Per-iteration max elapsed times completed so far.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Sum of all completed iteration times (seconds).
    pub fn total(&self) -> f64 {
        self.history.iter().sum()
    }

    /// Sum of iteration times from `from_iter` onwards — used to separate
    /// the learning phase from steady-state execution (§IV-B, Fig. 11).
    pub fn total_from(&self, from_iter: usize) -> f64 {
        self.history.iter().skip(from_iter).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    #[test]
    fn max_across_ranks() {
        let mut t = Timer::new(3, vec![0]);
        t.start(0, us(0));
        t.start(1, us(0));
        t.start(2, us(0));
        assert_eq!(t.stop(0, us(10)), None);
        assert_eq!(t.stop(2, us(30)), None);
        let (iter, max) = t.stop(1, us(20)).expect("last rank completes");
        assert_eq!(iter, 0);
        assert!((max - 30e-6).abs() < 1e-12);
        assert_eq!(t.history().len(), 1);
    }

    #[test]
    fn ranks_may_lag_iterations() {
        let mut t = Timer::new(2, vec![]);
        // Rank 0 runs two iterations before rank 1 finishes its first.
        t.start(0, us(0));
        t.stop(0, us(5));
        t.start(0, us(5));
        t.stop(0, us(9));
        assert_eq!(t.iter_of(0), 2);
        t.start(1, us(0));
        let (i0, m0) = t.stop(1, us(7)).unwrap();
        assert_eq!(i0, 0);
        assert!((m0 - 7e-6).abs() < 1e-12);
        t.start(1, us(7));
        let done1 = t.stop(1, us(8));
        // iteration 1: max(4us for rank0, 1us rank1) = 4us
        let (i, m) = done1.unwrap();
        assert_eq!(i, 1);
        assert!((m - 4e-6).abs() < 1e-12);
    }

    #[test]
    fn totals_and_learning_split() {
        let mut t = Timer::new(1, vec![]);
        for (s, e) in [(0u64, 10u64), (10, 30), (30, 60)] {
            t.start(0, us(s));
            t.stop(0, us(e));
        }
        assert!((t.total() - 60e-6).abs() < 1e-12);
        assert!((t.total_from(1) - 50e-6).abs() < 1e-12);
        assert_eq!(t.total_from(3), 0.0);
    }

    #[test]
    #[should_panic(expected = "started twice")]
    fn double_start_panics() {
        let mut t = Timer::new(1, vec![]);
        t.start(0, us(0));
        t.start(0, us(1));
    }

    #[test]
    #[should_panic(expected = "stopped without start")]
    fn stop_without_start_panics() {
        let mut t = Timer::new(1, vec![]);
        t.stop(0, us(1));
    }
}
