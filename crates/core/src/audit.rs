//! Tuner decision audit log.
//!
//! Every time a [`crate::tuner::Tuner`] commits a winner during *live*
//! learning, it records what it saw at the moment of the decision: every
//! candidate's raw sample count, how many samples survived the outlier
//! filter, the robust score each candidate earned, the committed winner and
//! its margin over the runner-up. The record answers the question the
//! paper's evaluation keeps returning to — *why* did the library pick this
//! implementation, and how close was the call?
//!
//! Recording is gated on [`simcore::trace::enabled`] (the `NBC_TRACE`
//! switch): with tracing off, [`record`] is a single branch and the
//! collector stays empty, so figure binaries are bit-identical to the
//! untraced build. Records are exported as the `adclAudit` array alongside
//! `traceEvents` in the combined trace file (see `autonbc::traceout`) and
//! summarized by the `trace_inspect` binary.
//!
//! Historic-learning tuners ([`crate::tuner::Tuner::with_known_winner`])
//! never emit a record: they skip the learning phase, so there is no live
//! decision to audit.

use simcore::trace;
use std::sync::Mutex;

/// What the tuner knew about one candidate implementation at decision time.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateAudit {
    /// Function index within the set.
    pub func: usize,
    /// Human-readable implementation name (e.g. `"binomial-seg32k"`).
    pub name: String,
    /// Raw measurements taken (post-warm-up).
    pub samples: usize,
    /// Measurements surviving the outlier filter.
    pub kept: usize,
    /// Robust score in seconds (`f64::INFINITY` if never measured).
    pub score: f64,
    /// 1-based racing block after which the candidate was permanently
    /// eliminated; `None` for survivors and for non-racing strategies.
    pub eliminated_at_block: Option<usize>,
}

/// One committed tuning decision.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionAudit {
    /// Context label set by the driver (e.g.
    /// `"whale/ibcast/p16/m262144/g4/BruteForce"`); empty if never set.
    pub label: String,
    /// Operation name from the function set (e.g. `"ibcast"`).
    pub op: String,
    /// Selection strategy that made the call.
    pub strategy: &'static str,
    /// Outlier filter in effect (e.g. `"iqr(1.5)"`).
    pub filter: String,
    /// Iteration index at which the strategy committed.
    pub decided_at_iter: usize,
    /// Winning function index.
    pub winner: usize,
    /// Winning function name.
    pub winner_name: String,
    /// Relative margin over the runner-up: `(runner_up - winner) / winner`
    /// on robust scores. `0.0` when there is no measured runner-up.
    pub margin: f64,
    /// Per-candidate evidence, indexed by function.
    pub candidates: Vec<CandidateAudit>,
}

fn number(v: f64) -> String {
    // JSON has no Infinity/NaN literal; unmeasured candidates score
    // infinite and serialize as null.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

impl DecisionAudit {
    /// Render this record as one JSON object (single line, hand-written —
    /// the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let cands: Vec<String> = self
            .candidates
            .iter()
            .map(|c| {
                format!(
                    "{{\"func\":{},\"name\":\"{}\",\"samples\":{},\"kept\":{},\"score\":{},\
                     \"eliminated_at_block\":{}}}",
                    c.func,
                    trace::escape(&c.name),
                    c.samples,
                    c.kept,
                    number(c.score),
                    c.eliminated_at_block
                        .map(|b| b.to_string())
                        .unwrap_or_else(|| "null".into())
                )
            })
            .collect();
        format!(
            "{{\"label\":\"{}\",\"op\":\"{}\",\"strategy\":\"{}\",\"filter\":\"{}\",\
             \"decided_at_iter\":{},\"winner\":{},\"winner_name\":\"{}\",\"margin\":{},\
             \"candidates\":[{}]}}",
            trace::escape(&self.label),
            trace::escape(&self.op),
            trace::escape(self.strategy),
            trace::escape(&self.filter),
            self.decided_at_iter,
            self.winner,
            trace::escape(&self.winner_name),
            number(self.margin),
            cands.join(",")
        )
    }
}

/// One candidate demoted (removed from contention) because its
/// microbenchmark samples timed out under fault injection.
///
/// Demotions are how the tuner degrades gracefully: a candidate whose
/// rendezvous handshake exhausts its retry budget is dropped from the
/// function set and the sweep reruns with the survivors, rather than
/// wedging the whole tuning session. See `autonbc::driver`.
#[derive(Debug, Clone, PartialEq)]
pub struct DemotionAudit {
    /// Context label set by the driver; empty if never set.
    pub label: String,
    /// Operation name from the function set (e.g. `"ialltoall"`).
    pub op: String,
    /// Function index within the set *at the time of demotion*.
    pub func: usize,
    /// Human-readable implementation name.
    pub name: String,
    /// Why the candidate was demoted (the rendered `SimError`).
    pub reason: String,
    /// Samples collected for the candidate before it was demoted.
    pub samples: usize,
}

impl DemotionAudit {
    /// Render this record as one JSON object (single line, hand-written —
    /// the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"op\":\"{}\",\"func\":{},\"name\":\"{}\",\
             \"reason\":\"{}\",\"samples\":{}}}",
            trace::escape(&self.label),
            trace::escape(&self.op),
            self.func,
            trace::escape(&self.name),
            trace::escape(&self.reason),
            self.samples
        )
    }
}

/// One decision served by the `adcld` tuning daemon, with where the answer
/// came from: a history-store hit, a memo replay, a fresh sweep, or a
/// fresh sweep whose winner the guideline observatory flagged as
/// dominated. Exported as the `adclServed` array in the combined trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedAudit {
    /// Encoded query key (e.g. `"ialltoall|whale|8|4096"`).
    pub key: String,
    /// Operation name.
    pub op: String,
    /// Winning function name.
    pub winner: String,
    /// Winner's robust score in seconds.
    pub score: f64,
    /// Relative margin over the runner-up.
    pub margin: f64,
    /// `"history-hit"` / `"memo-replay"` / `"fresh-sweep"` /
    /// `"guideline-flagged"`.
    pub source: String,
}

impl ServedAudit {
    /// Render this record as one JSON object (single line, hand-written —
    /// the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"key\":\"{}\",\"op\":\"{}\",\"winner\":\"{}\",\"score\":{},\
             \"margin\":{},\"source\":\"{}\"}}",
            trace::escape(&self.key),
            trace::escape(&self.op),
            trace::escape(&self.winner),
            number(self.score),
            number(self.margin),
            trace::escape(&self.source)
        )
    }
}

fn collector() -> &'static Mutex<Vec<DecisionAudit>> {
    static LOG: Mutex<Vec<DecisionAudit>> = Mutex::new(Vec::new());
    &LOG
}

fn demotion_collector() -> &'static Mutex<Vec<DemotionAudit>> {
    static LOG: Mutex<Vec<DemotionAudit>> = Mutex::new(Vec::new());
    &LOG
}

fn demotion_lock() -> std::sync::MutexGuard<'static, Vec<DemotionAudit>> {
    demotion_collector()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn served_collector() -> &'static Mutex<Vec<ServedAudit>> {
    static LOG: Mutex<Vec<ServedAudit>> = Mutex::new(Vec::new());
    &LOG
}

fn served_lock() -> std::sync::MutexGuard<'static, Vec<ServedAudit>> {
    served_collector().lock().unwrap_or_else(|e| e.into_inner())
}

fn lock() -> std::sync::MutexGuard<'static, Vec<DecisionAudit>> {
    collector().lock().unwrap_or_else(|e| e.into_inner())
}

/// Append `rec` to the process-wide audit log. A no-op (one branch) unless
/// tracing is enabled.
pub fn record(rec: DecisionAudit) {
    if !trace::enabled() {
        return;
    }
    lock().push(rec);
}

/// Snapshot of every decision recorded so far, in commit order.
pub fn records() -> Vec<DecisionAudit> {
    lock().clone()
}

/// Number of decisions recorded.
pub fn len() -> usize {
    lock().len()
}

/// Drop all recorded decisions and demotions (tests and multi-experiment
/// binaries).
pub fn clear() {
    lock().clear();
    demotion_lock().clear();
    served_lock().clear();
}

/// Render the full log as the *contents* of a JSON array (comma-separated
/// objects, one per line).
pub fn render_json() -> String {
    lock()
        .iter()
        .map(|r| r.to_json())
        .collect::<Vec<_>>()
        .join(",\n")
}

/// Append `rec` to the process-wide demotion log. A no-op (one branch)
/// unless tracing is enabled.
pub fn record_demotion(rec: DemotionAudit) {
    if !trace::enabled() {
        return;
    }
    demotion_lock().push(rec);
}

/// Snapshot of every demotion recorded so far, in occurrence order.
pub fn demotions() -> Vec<DemotionAudit> {
    demotion_lock().clone()
}

/// Number of demotions recorded.
pub fn demotions_len() -> usize {
    demotion_lock().len()
}

/// Render the demotion log as the *contents* of a JSON array
/// (comma-separated objects, one per line).
pub fn render_demotions_json() -> String {
    demotion_lock()
        .iter()
        .map(|r| r.to_json())
        .collect::<Vec<_>>()
        .join(",\n")
}

/// Append `rec` to the process-wide served-decisions log. A no-op (one
/// branch) unless tracing is enabled.
pub fn record_served(rec: ServedAudit) {
    if !trace::enabled() {
        return;
    }
    served_lock().push(rec);
}

/// Snapshot of every served decision recorded so far, in serve order.
pub fn served() -> Vec<ServedAudit> {
    served_lock().clone()
}

/// Number of served decisions recorded.
pub fn served_len() -> usize {
    served_lock().len()
}

/// Render the served-decisions log as the *contents* of a JSON array
/// (comma-separated objects, one per line).
pub fn render_served_json() -> String {
    served_lock()
        .iter()
        .map(|r| r.to_json())
        .collect::<Vec<_>>()
        .join(",\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(winner: usize) -> DecisionAudit {
        DecisionAudit {
            label: "test/ibcast".into(),
            op: "ibcast".into(),
            strategy: "brute-force",
            filter: "iqr(1.5)".into(),
            decided_at_iter: 12,
            winner,
            winner_name: format!("f{winner}"),
            margin: 0.25,
            candidates: vec![
                CandidateAudit {
                    func: 0,
                    name: "f0".into(),
                    samples: 4,
                    kept: 3,
                    score: 0.002,
                    eliminated_at_block: None,
                },
                CandidateAudit {
                    func: 1,
                    name: "f1".into(),
                    samples: 4,
                    kept: 4,
                    score: f64::INFINITY,
                    eliminated_at_block: Some(2),
                },
            ],
        }
    }

    /// The trace-enabled override is process-global; tests toggling it
    /// must not interleave.
    static TOGGLE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_record_is_dropped() {
        let _g = TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        trace::set_enabled(false);
        record(sample_record(0));
        assert!(
            records().iter().all(|r| r.label != "test/ibcast"),
            "record landed despite tracing off"
        );
        trace::clear_enabled_override();
    }

    #[test]
    fn enabled_record_round_trips() {
        let _g = TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        trace::set_enabled(true);
        record(sample_record(1));
        let recs = records();
        let ours: Vec<_> = recs.iter().filter(|r| r.label == "test/ibcast").collect();
        assert!(!ours.is_empty());
        assert_eq!(ours[0].winner, 1);
        trace::clear_enabled_override();
        clear();
    }

    #[test]
    fn demotions_record_and_render() {
        let _g = TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        trace::set_enabled(false);
        record_demotion(DemotionAudit {
            label: "off/x".into(),
            op: "ibcast".into(),
            func: 0,
            name: "linear".into(),
            reason: "timeout".into(),
            samples: 2,
        });
        assert!(
            demotions().iter().all(|d| d.label != "off/x"),
            "demotion landed despite tracing off"
        );
        trace::set_enabled(true);
        record_demotion(DemotionAudit {
            label: "on/x".into(),
            op: "ialltoall".into(),
            func: 3,
            name: "pairwise-seg64k".into(),
            reason: "send timeout: 65536-byte message 0->1".into(),
            samples: 1,
        });
        let ours: Vec<_> = demotions()
            .into_iter()
            .filter(|d| d.label == "on/x")
            .collect();
        assert_eq!(ours.len(), 1);
        let j = ours[0].to_json();
        let doc = simcore::json::parse(&j).expect("demotion json parses");
        assert_eq!(doc.get("func").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(
            doc.get("name").and_then(|v| v.as_str()),
            Some("pairwise-seg64k")
        );
        trace::clear_enabled_override();
        clear();
        assert_eq!(demotions_len(), 0);
    }

    #[test]
    fn served_records_gate_and_render() {
        let _g = TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        trace::set_enabled(false);
        record_served(ServedAudit {
            key: "off|whale|8|64".into(),
            op: "ibcast".into(),
            winner: "linear".into(),
            score: 1.0e-3,
            margin: 0.0,
            source: "fresh-sweep".into(),
        });
        assert!(served().iter().all(|s| s.key != "off|whale|8|64"));
        trace::set_enabled(true);
        record_served(ServedAudit {
            key: "ialltoall|whale|8|4096".into(),
            op: "ialltoall".into(),
            winner: "pairwise".into(),
            score: 2.5e-4,
            margin: 0.125,
            source: "history-hit".into(),
        });
        let ours: Vec<_> = served()
            .into_iter()
            .filter(|s| s.key == "ialltoall|whale|8|4096")
            .collect();
        assert_eq!(ours.len(), 1);
        let doc = simcore::json::parse(&ours[0].to_json()).expect("served json parses");
        assert_eq!(
            doc.get("source").and_then(|v| v.as_str()),
            Some("history-hit")
        );
        assert_eq!(doc.get("margin").and_then(|v| v.as_f64()), Some(0.125));
        trace::clear_enabled_override();
        clear();
        assert_eq!(served_len(), 0);
    }

    #[test]
    fn json_encodes_infinity_as_null() {
        let j = sample_record(0).to_json();
        assert!(j.contains("\"score\":null"), "{j}");
        assert!(j.contains("\"winner\":0"), "{j}");
        // Must parse as a standalone JSON document.
        let doc = simcore::json::parse(&j).expect("audit json parses");
        assert_eq!(doc.get("winner_name").and_then(|v| v.as_str()), Some("f0"));
        let cands = doc.get("candidates").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(cands.len(), 2);
        assert!(matches!(
            cands[1].get("score"),
            Some(simcore::json::Json::Null)
        ));
        // Elimination records: null for survivors, the 1-based block for
        // racing-eliminated candidates.
        assert!(matches!(
            cands[0].get("eliminated_at_block"),
            Some(simcore::json::Json::Null)
        ));
        assert_eq!(
            cands[1].get("eliminated_at_block").and_then(|v| v.as_u64()),
            Some(2)
        );
    }
}
