//! Statistical filtering of run-time measurements.
//!
//! Measurements taken while the application runs are contaminated by OS
//! noise and process-arrival skew. ADCL filters each function's sample set
//! before comparing implementations; the paper notes that the few wrong
//! decisions ADCL makes are caused by "a larger number of data outliers
//! during the evaluation phase". These filters are what keeps that rate low.

use simcore::stats;

/// Outlier-filtering policy applied to a function's sample set before
/// scoring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterKind {
    /// No filtering: plain arithmetic mean.
    None,
    /// Tukey-fence IQR rejection with factor `k` (conventional `k` = 1.5),
    /// then the mean of the survivors.
    Iqr(f64),
    /// Trimmed mean, dropping fraction `t` from each tail.
    Trimmed(f64),
    /// Median (maximally robust location estimate).
    Median,
}

impl Default for FilterKind {
    fn default() -> Self {
        FilterKind::Iqr(1.5)
    }
}

impl FilterKind {
    /// Robust location estimate of a sample set under this policy.
    /// Returns `f64::INFINITY` for an empty sample (an unmeasured function
    /// never wins).
    pub fn score(&self, samples: &[f64]) -> f64 {
        if samples.is_empty() {
            return f64::INFINITY;
        }
        match *self {
            FilterKind::None => stats::mean(samples),
            FilterKind::Iqr(k) => stats::mean(&stats::iqr_filter(samples, k)),
            FilterKind::Trimmed(t) => stats::trimmed_mean(samples, t),
            FilterKind::Median => stats::median(samples),
        }
    }

    /// Number of samples that survive this filter (the population whose
    /// mean [`FilterKind::score`] reports). Feeds the tuner decision audit
    /// log, where `samples - survivors` is the outlier-rejection count.
    pub fn survivors(&self, samples: &[f64]) -> usize {
        if samples.is_empty() {
            return 0;
        }
        match *self {
            // Mean and median are computed over the full sample set.
            FilterKind::None | FilterKind::Median => samples.len(),
            FilterKind::Iqr(k) => stats::iqr_filter(samples, k).len(),
            FilterKind::Trimmed(t) => {
                // Mirror the clamp in `stats::trimmed_mean`: the drop per
                // tail never exceeds (len-1)/2, so at least one sample
                // always survives even for aggressive trim fractions on
                // tiny sample sets.
                let drop =
                    (((samples.len() as f64) * t).floor() as usize).min((samples.len() - 1) / 2);
                samples.len() - 2 * drop
            }
        }
    }

    /// Short human-readable name of this policy for audit records.
    pub fn describe(&self) -> String {
        match *self {
            FilterKind::None => "none".into(),
            FilterKind::Iqr(k) => format!("iqr({k})"),
            FilterKind::Trimmed(t) => format!("trimmed({t})"),
            FilterKind::Median => "median".into(),
        }
    }

    /// The sample subset that survives this filter (the population whose
    /// mean [`FilterKind::score`] reports). Mean/median policies keep the
    /// full set; IQR and trimmed policies drop their outliers.
    fn surviving(&self, samples: &[f64]) -> Vec<f64> {
        match *self {
            FilterKind::None | FilterKind::Median => samples.to_vec(),
            FilterKind::Iqr(k) => stats::iqr_filter(samples, k),
            FilterKind::Trimmed(t) => {
                // Mirror the clamp in `stats::trimmed_mean`.
                let drop =
                    (((samples.len() as f64) * t).floor() as usize).min((samples.len() - 1) / 2);
                let mut sorted = samples.to_vec();
                sorted.sort_by(f64::total_cmp);
                sorted[drop..samples.len() - drop].to_vec()
            }
        }
    }

    /// Smallest sample surviving this filter: an optimistic bound on any
    /// robust location estimate the function can still achieve. Returns
    /// `f64::INFINITY` for an empty set (an unmeasured function has no
    /// evidence either way). Racing elimination compares a candidate's
    /// lower bound against the leader's [`FilterKind::upper_bound`].
    pub fn lower_bound(&self, samples: &[f64]) -> f64 {
        if samples.is_empty() {
            return f64::INFINITY;
        }
        self.surviving(samples)
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest sample surviving this filter: a pessimistic bound on the
    /// leader's final score. A candidate whose [`FilterKind::lower_bound`]
    /// exceeds this can never overtake the leader under this policy.
    pub fn upper_bound(&self, samples: &[f64]) -> f64 {
        if samples.is_empty() {
            return f64::NEG_INFINITY;
        }
        self.surviving(samples)
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Index of the best (lowest-scoring) sample set among `sets`, or
    /// `None` if every set is empty.
    pub fn argmin(&self, sets: &[Vec<f64>]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in sets.iter().enumerate() {
            let sc = self.score(s);
            if sc.is_finite() && best.is_none_or(|(_, b)| sc < b) {
                best = Some((i, sc));
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_scores_infinite() {
        assert_eq!(FilterKind::default().score(&[]), f64::INFINITY);
    }

    #[test]
    fn iqr_ignores_spike() {
        let mut clean: Vec<f64> = (0..20).map(|i| 1.0 + 0.001 * i as f64).collect();
        let clean_score = FilterKind::Iqr(1.5).score(&clean);
        clean.push(50.0); // one massive outlier
        let spiked_score = FilterKind::Iqr(1.5).score(&clean);
        assert!((clean_score - spiked_score).abs() < 1e-6);
        // The unfiltered mean, by contrast, is badly skewed.
        assert!(FilterKind::None.score(&clean) > 3.0);
    }

    #[test]
    fn median_robust() {
        let xs = [1.0, 1.0, 1.0, 1.0, 100.0];
        assert_eq!(FilterKind::Median.score(&xs), 1.0);
    }

    #[test]
    fn survivors_counts_filter_population() {
        let xs = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 20.0];
        assert_eq!(FilterKind::None.survivors(&xs), 9);
        assert_eq!(FilterKind::Median.survivors(&xs), 9);
        assert_eq!(FilterKind::Iqr(1.5).survivors(&xs), 8); // spike rejected
        assert_eq!(FilterKind::Trimmed(0.2).survivors(&xs), 7); // 1 per tail
        assert_eq!(FilterKind::default().survivors(&[]), 0);
    }

    #[test]
    fn trimmed_overtrim_keeps_a_survivor() {
        // Aggressive trim fractions on tiny sample sets (common right
        // after a demotion rerun) must leave at least one survivor and a
        // finite score.
        let xs = [1.0, 2.0, 30.0];
        assert_eq!(FilterKind::Trimmed(0.7).survivors(&xs), 1);
        assert_eq!(FilterKind::Trimmed(0.7).score(&xs), 2.0);
        assert_eq!(FilterKind::Trimmed(0.4).survivors(&[1.0, 2.0]), 2);
        assert_eq!(FilterKind::Trimmed(0.9).survivors(&[7.0]), 1);
        assert!(FilterKind::Trimmed(0.9).score(&[7.0]).is_finite());
    }

    #[test]
    fn argmin_picks_lowest() {
        let sets = vec![vec![3.0, 3.1], vec![1.0, 1.1], vec![2.0]];
        assert_eq!(FilterKind::default().argmin(&sets), Some(1));
    }

    #[test]
    fn argmin_skips_empty_sets() {
        let sets = vec![vec![], vec![5.0], vec![]];
        assert_eq!(FilterKind::default().argmin(&sets), Some(1));
        assert_eq!(FilterKind::default().argmin(&[vec![], vec![]]), None);
    }

    #[test]
    fn argmin_with_outliers_still_correct() {
        // Function 0 is truly faster but has one huge spike; IQR filtering
        // must still rank it first, while the raw mean would not.
        let f0 = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 20.0];
        let f1 = vec![2.0; 9];
        assert_eq!(
            FilterKind::Iqr(1.5).argmin(&[f0.clone(), f1.clone()]),
            Some(0)
        );
        assert_eq!(FilterKind::None.argmin(&[f0, f1]), Some(1));
    }
}
