//! Property-based tests for the selection machinery, on the in-tree
//! `simcore::check` harness (no external crates).

use adcl::attr::AttributeSet;
use adcl::filter::FilterKind;
use adcl::function::FunctionSet;
use adcl::strategy::SelectionLogic;
use adcl::tuner::{Tuner, TunerConfig};
use nbc::schedule::CollSpec;
use simcore::check::run_cases;
use simcore::rng::SplitMix64;

/// Drive a tuner with a synthetic cost oracle plus bounded noise until it
/// converges (or a generous iteration cap).
fn drive(tuner: &mut Tuner, costs: &[f64], noise_rel: f64, seed: u64) -> Option<usize> {
    let mut rng = SplitMix64::new(seed);
    for iter in 0..10_000 {
        if tuner.winner().is_some() {
            return tuner.winner();
        }
        let f = tuner.function_for_iter(iter);
        let noisy = costs[f] * (1.0 + (rng.next_f64() - 0.5) * 2.0 * noise_rel);
        tuner.record(iter, noisy);
    }
    tuner.winner()
}

fn alltoall_set() -> FunctionSet {
    FunctionSet::ialltoall_default(CollSpec::new(8, 1024))
}

fn ibcast_set() -> FunctionSet {
    FunctionSet::ibcast_default(CollSpec::new(8, 1 << 20))
}

/// With separation larger than the noise band, brute force always
/// commits to the true minimum.
#[test]
fn brute_force_finds_min_under_bounded_noise() {
    run_cases("brute_force_finds_min_under_bounded_noise", 64, |g| {
        let seed = g.u64_in(0, 1_000_000);
        let best = g.usize_in(0, 3);
        let reps = g.usize_in(3, 10);
        let fnset = alltoall_set();
        let mut costs = vec![2.0; 3];
        costs[best] = 1.0;
        let mut tuner = Tuner::new(
            &fnset,
            TunerConfig {
                logic: SelectionLogic::BruteForce,
                reps,
                warmup: 1,
                filter: FilterKind::Iqr(1.5),
            },
        );
        let w = drive(&mut tuner, &costs, 0.10, seed);
        assert_eq!(w, Some(best));
    });
}

/// The heuristic finds the optimum of any separable cost over the
/// 21-function Ibcast attribute grid.
#[test]
fn heuristic_solves_separable_costs() {
    run_cases("heuristic_solves_separable_costs", 64, |g| {
        let seed = g.u64_in(0, 1_000_000);
        let fan_best = g.usize_in(0, 7);
        let seg_best = g.usize_in(0, 3);
        let fnset = ibcast_set();
        let attrs = fnset.attribute_set();
        let fan_val = attrs.attrs[0].values[fan_best];
        let seg_val = attrs.attrs[1].values[seg_best];
        let costs: Vec<f64> = fnset
            .functions
            .iter()
            .map(|f| {
                let fan_rank = attrs.attrs[0]
                    .values
                    .iter()
                    .position(|&v| v == f.attrs[0])
                    .unwrap() as f64;
                let fan_target = fan_best as f64;
                let seg_rank = attrs.attrs[1]
                    .values
                    .iter()
                    .position(|&v| v == f.attrs[1])
                    .unwrap() as f64;
                let seg_target = seg_best as f64;
                1.0 + (fan_rank - fan_target).abs() + 0.3 * (seg_rank - seg_target).abs()
            })
            .collect();
        let mut tuner = Tuner::new(
            &fnset,
            TunerConfig {
                logic: SelectionLogic::AttributeHeuristic,
                reps: 4,
                warmup: 1,
                filter: FilterKind::Iqr(1.5),
            },
        );
        let w = drive(&mut tuner, &costs, 0.03, seed).expect("converges");
        let wf = &fnset.functions[w];
        assert_eq!(wf.attrs[0], fan_val, "fanout");
        assert_eq!(wf.attrs[1], seg_val, "segsize");
    });
}

/// The heuristic never needs more learning iterations than brute force.
#[test]
fn heuristic_cheaper_than_brute_force() {
    run_cases("heuristic_cheaper_than_brute_force", 64, |g| {
        let seed = g.u64_in(0, 1_000_000);
        let fnset = ibcast_set();
        let costs: Vec<f64> = (0..fnset.len())
            .map(|i| 1.0 + (i % 5) as f64 * 0.3)
            .collect();
        let mk = |logic| {
            Tuner::new(
                &fnset,
                TunerConfig {
                    logic,
                    reps: 3,
                    warmup: 1,
                    filter: FilterKind::Iqr(1.5),
                },
            )
        };
        let mut h = mk(SelectionLogic::AttributeHeuristic);
        drive(&mut h, &costs, 0.01, seed);
        let mut b = mk(SelectionLogic::BruteForce);
        drive(&mut b, &costs, 0.01, seed);
        assert!(h.converged_at().unwrap() <= b.converged_at().unwrap());
    });
}

/// Warm-up discards never change the winner in noiseless conditions.
#[test]
fn warmup_invariant_in_noiseless_runs() {
    run_cases("warmup_invariant_in_noiseless_runs", 64, |g| {
        let warmup = g.usize_in(0, 3);
        let best = g.usize_in(0, 3);
        let fnset = alltoall_set();
        let mut costs = vec![5.0; 3];
        costs[best] = 3.0;
        let mut tuner = Tuner::new(
            &fnset,
            TunerConfig {
                logic: SelectionLogic::BruteForce,
                reps: 4,
                warmup,
                filter: FilterKind::default(),
            },
        );
        let w = drive(&mut tuner, &costs, 0.0, 0);
        assert_eq!(w, Some(best));
    });
}

/// Assignments are memoized: re-querying any prefix returns identical
/// choices regardless of interleaved records.
#[test]
fn assignment_memoization() {
    run_cases("assignment_memoization", 64, |g| {
        let seed = g.u64_in(0, 1_000_000);
        let queries = g.vec(1, 30, |g| g.usize_in(0, 40));
        let fnset = alltoall_set();
        let mut tuner = Tuner::new(
            &fnset,
            TunerConfig {
                logic: SelectionLogic::BruteForce,
                reps: 3,
                warmup: 1,
                filter: FilterKind::default(),
            },
        );
        let mut rng = SplitMix64::new(seed);
        let mut first_seen: Vec<Option<usize>> = vec![None; 64];
        for &q in &queries {
            let f = tuner.function_for_iter(q);
            match first_seen[q] {
                None => first_seen[q] = Some(f),
                Some(prev) => assert_eq!(prev, f, "assignment changed for iter {q}"),
            }
            // Interleave some records.
            tuner.record(q, 1.0 + rng.next_f64());
        }
    });
}

/// Attribute sets derived from any function grid have sorted, deduped
/// domains covering every function's values.
#[test]
fn attribute_domains_cover() {
    run_cases("attribute_domains_cover", 64, |g| {
        let vals = g.vec(1, 40, |g| (g.u64_in(0, 10) as i64, g.u64_in(0, 4) as i64));
        let vecs: Vec<Vec<i64>> = vals.iter().map(|&(a, b)| vec![a, b]).collect();
        let set = AttributeSet::from_functions(&["a", "b"], &vecs);
        for v in &vecs {
            assert!(set.attrs[0].values.contains(&v[0]));
            assert!(set.attrs[1].values.contains(&v[1]));
        }
        for a in &set.attrs {
            let mut sorted = a.values.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(&sorted, &a.values);
        }
    });
}

/// The filter's argmin is invariant under sample-set permutation.
#[test]
fn filter_argmin_permutation_invariant() {
    run_cases("filter_argmin_permutation_invariant", 64, |g| {
        let sets = g.vec(1, 6, |g| g.vec(1, 20, |g| g.f64_in(0.1, 100.0)));
        let seed = g.u64_in(0, 1000);
        let filter = FilterKind::Iqr(1.5);
        let a = filter.argmin(&sets);
        let mut rng = SplitMix64::new(seed);
        let shuffled: Vec<Vec<f64>> = sets
            .iter()
            .map(|s| {
                let mut s2 = s.clone();
                // Fisher-Yates
                for i in (1..s2.len()).rev() {
                    let j = rng.next_below(i as u64 + 1) as usize;
                    s2.swap(i, j);
                }
                s2
            })
            .collect();
        assert_eq!(a, filter.argmin(&shuffled));
    });
}
