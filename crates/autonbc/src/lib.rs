//! `autonbc` — the public facade of the auto-tuned non-blocking collective
//! stack.
//!
//! This crate re-exports the full layer cake in one place and adds the
//! [`driver`] module: ready-made experiment drivers for the paper's §IV-A
//! micro-benchmark, shared by the examples, the integration tests and the
//! figure-generation benchmarks.
//!
//! # Layer overview
//!
//! | layer | crate | role |
//! |---|---|---|
//! | tuning runtime | [`adcl`] | function-sets, timers, selection logics |
//! | collective engine | [`nbc`] | LibNBC-style schedules + executor |
//! | message passing | [`mpisim`] | non-blocking p2p, progress engine |
//! | network model | [`netmodel`] | LogGP + contention, platform presets |
//! | simulation core | [`simcore`] | virtual time, events, statistics |
//! | application kernel | [`fft3d`] | real FFT + the 3-D FFT patterns |
//!
//! # Quickstart
//!
//! ```
//! use autonbc::driver::{CollectiveOp, MicrobenchSpec};
//! use autonbc::prelude::*;
//!
//! let spec = MicrobenchSpec {
//!     platform: Platform::whale(),
//!     nprocs: 8,
//!     op: CollectiveOp::Ialltoall,
//!     msg_bytes: 1024,
//!     iters: 20,
//!     compute_total: SimTime::from_millis(20),
//!     num_progress: 5,
//!     noise: NoiseConfig::none(),
//!     reps: 3,
//!     placement: Placement::Block,
//!     imbalance: Imbalance::None,
//! };
//! let outcome = spec.run(SelectionLogic::BruteForce);
//! assert!(outcome.winner.is_some());
//! ```

pub use adcl;
pub use fft3d;
pub use mpisim;
pub use nbc;
pub use netmodel;
pub use simcore;

pub mod driver;
pub mod traceout;

/// Commonly used items in one import.
pub mod prelude {
    pub use adcl::filter::FilterKind;
    pub use adcl::function::FunctionSet;
    pub use adcl::history::{HistoryKey, HistoryStore};
    pub use adcl::microbench::{Imbalance, MicroBenchConfig, MicroBenchScript};
    pub use adcl::runner::{Instr, Runner, Script, TuningSession, VecScript};
    pub use adcl::strategy::SelectionLogic;
    pub use adcl::timer::Timer;
    pub use adcl::tuner::{Tuner, TunerConfig};
    pub use fft3d::patterns::{run_fft_kernel, FftKernelConfig, FftMode, FftPattern};
    pub use mpisim::{NoiseConfig, World};
    pub use nbc::schedule::CollSpec;
    pub use netmodel::{Placement, Platform};
    pub use simcore::SimTime;
}
