//! Combined trace-file writer.
//!
//! The observability layer collects two things while `NBC_TRACE` is
//! active: per-rank timeline events (`simcore::trace`) and tuner decision
//! records (`adcl::audit`). This module merges them into one JSON document
//!
//! ```text
//! { "traceEvents":    [ ... ],   // Chrome trace_event format
//!   "adclAudit":      [ ... ],   // one object per committed tuning decision
//!   "adclDemotions":  [ ... ] }  // one object per fault-demoted candidate
//! ```
//!
//! which Perfetto / `chrome://tracing` open directly (unknown top-level
//! keys are ignored by viewers) and `trace_inspect` parses for its
//! summary. Figure binaries call [`write_if_requested`] as their last
//! statement: it is a no-op unless tracing is on *and* an output path was
//! given (`NBC_TRACE=<path>` or `--trace-out <path>`), and it reports only
//! to stderr so tuned stdout stays byte-identical to an untraced run.

use simcore::trace;

/// Render everything collected so far as one combined JSON document.
/// Drains the timeline collector (worlds publish on drop); audit records
/// are left in place.
pub fn render_combined() -> String {
    let traces = trace::take_all();
    let events = trace::render_trace_events(&traces);
    let audit = adcl::audit::render_json();
    let demotions = adcl::audit::render_demotions_json();
    format!(
        "{{\n\"traceEvents\":[\n{events}\n],\n\"adclAudit\":[\n{audit}\n],\
         \n\"adclDemotions\":[\n{demotions}\n]\n}}\n"
    )
}

/// Write the combined document to `path`.
pub fn write_to(path: &str) -> std::io::Result<()> {
    std::fs::write(path, render_combined())
}

/// Write the combined document to the configured output path, if any.
/// Figure binaries call this once, after all experiments have run. Status
/// goes to stderr; stdout is never touched.
pub fn write_if_requested() {
    if !trace::enabled() {
        return;
    }
    let Some(path) = trace::out_path() else {
        return;
    };
    let runs = trace::collected_runs();
    let audits = adcl::audit::len();
    let demotions = adcl::audit::demotions_len();
    let dropped = trace::dropped_runs();
    match write_to(&path) {
        Ok(()) => {
            eprintln!("trace: wrote {runs} run(s), {audits} audit record(s) to {path}");
            if demotions > 0 {
                eprintln!("trace: {demotions} candidate demotion(s) recorded");
            }
            if dropped > 0 {
                eprintln!("trace: {dropped} run(s) dropped (global event cap reached)");
            }
        }
        Err(e) => eprintln!("trace: cannot write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_document_parses_when_empty() {
        // Whatever other tests have published, the document must be valid
        // JSON with both arrays present.
        let doc = render_combined();
        let parsed = simcore::json::parse(&doc).expect("combined doc parses");
        assert!(parsed.get("traceEvents").and_then(|v| v.as_arr()).is_some());
        assert!(parsed.get("adclAudit").and_then(|v| v.as_arr()).is_some());
        assert!(parsed
            .get("adclDemotions")
            .and_then(|v| v.as_arr())
            .is_some());
    }
}
