//! Combined trace-file writer.
//!
//! The observability layer collects two things while `NBC_TRACE` is
//! active: per-rank timeline events (`simcore::trace`) and tuner decision
//! records (`adcl::audit`). This module merges them into one JSON document
//!
//! ```text
//! { "traceEvents":     [ ... ],   // Chrome trace_event format
//!   "adclAudit":       [ ... ],   // one object per committed tuning decision
//!   "adclDemotions":   [ ... ],   // one object per fault-demoted candidate
//!   "adclServed":      [ ... ],   // one object per decision served by adcld
//!   "guidelineFlags":  [ ... ] }  // decisions a guideline probe proves dominated
//! ```
//!
//! which Perfetto / `chrome://tracing` open directly (unknown top-level
//! keys are ignored by viewers) and `trace_inspect` parses for its
//! summary. Figure binaries call [`write_if_requested`] as their last
//! statement: it is a no-op unless tracing is on *and* an output path was
//! given (`NBC_TRACE=<path>` or `--trace-out <path>`), and it reports only
//! to stderr so tuned stdout stays byte-identical to an untraced run.
//!
//! The `guidelineFlags` section is gated by `NBC_GUIDELINES`
//! (`off` | `quick` | `full`, default off → always the empty array): when
//! enabled, each committed decision is re-measured with clean fixed
//! schedules (`adcl::guidelines::cross_check_audit`, memoized, tracing
//! suppressed) and winners left more than 10 % on the table are flagged.

use simcore::trace;

/// Render everything collected so far as one combined JSON document.
/// Drains the timeline collector (worlds publish on drop); audit records
/// are left in place.
pub fn render_combined() -> String {
    let traces = trace::take_all();
    let events = trace::render_trace_events(&traces);
    let audit = adcl::audit::render_json();
    let demotions = adcl::audit::render_demotions_json();
    let served = adcl::audit::render_served_json();
    let flags = render_guideline_flags();
    format!(
        "{{\n\"traceEvents\":[\n{events}\n],\n\"adclAudit\":[\n{audit}\n],\
         \n\"adclDemotions\":[\n{demotions}\n],\
         \n\"adclServed\":[\n{served}\n],\
         \n\"guidelineFlags\":[\n{flags}\n]\n}}\n"
    )
}

/// Cross-check the collected audit records per the `NBC_GUIDELINES` mode
/// and render the flag list (empty string when off or nothing flagged).
fn render_guideline_flags() -> String {
    use adcl::guidelines;
    let mode = guidelines::mode();
    if mode == guidelines::Mode::Off {
        return String::new();
    }
    let records = adcl::audit::records();
    let flags = guidelines::cross_check_audit(&records, guidelines::FLAG_TOLERANCE, mode.cap());
    guidelines::render_flags_json(&flags)
}

/// Write the combined document to `path`.
pub fn write_to(path: &str) -> std::io::Result<()> {
    std::fs::write(path, render_combined())
}

/// Write the combined document to the configured output path, if any.
/// Figure binaries call this once, after all experiments have run. Status
/// goes to stderr; stdout is never touched.
pub fn write_if_requested() {
    if !trace::enabled() {
        return;
    }
    let Some(path) = trace::out_path() else {
        return;
    };
    let runs = trace::collected_runs();
    let audits = adcl::audit::len();
    let demotions = adcl::audit::demotions_len();
    let dropped = trace::dropped_runs();
    match write_to(&path) {
        Ok(()) => {
            eprintln!("trace: wrote {runs} run(s), {audits} audit record(s) to {path}");
            if demotions > 0 {
                eprintln!("trace: {demotions} candidate demotion(s) recorded");
            }
            if dropped > 0 {
                eprintln!("trace: {dropped} run(s) dropped (global event cap reached)");
            }
        }
        Err(e) => eprintln!("trace: cannot write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_document_parses_when_empty() {
        // Whatever other tests have published, the document must be valid
        // JSON with both arrays present.
        let doc = render_combined();
        let parsed = simcore::json::parse(&doc).expect("combined doc parses");
        assert!(parsed.get("traceEvents").and_then(|v| v.as_arr()).is_some());
        assert!(parsed.get("adclAudit").and_then(|v| v.as_arr()).is_some());
        assert!(parsed
            .get("adclDemotions")
            .and_then(|v| v.as_arr())
            .is_some());
        assert!(parsed.get("adclServed").and_then(|v| v.as_arr()).is_some());
        assert!(parsed
            .get("guidelineFlags")
            .and_then(|v| v.as_arr())
            .is_some());
    }

    #[test]
    fn guideline_flags_empty_when_off() {
        adcl::guidelines::set_mode_override(Some(adcl::guidelines::Mode::Off));
        let doc = render_combined();
        let parsed = simcore::json::parse(&doc).expect("parses");
        let flags = parsed
            .get("guidelineFlags")
            .and_then(|v| v.as_arr())
            .expect("flags array present");
        assert!(flags.is_empty(), "off mode must export an empty flag list");
        adcl::guidelines::set_mode_override(None);
    }
}
