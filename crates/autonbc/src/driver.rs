//! Experiment drivers for the §IV-A micro-benchmark.
//!
//! A [`MicrobenchSpec`] describes one benchmark scenario (platform, process
//! count, operation, message length, compute time, progress-call count);
//! [`MicrobenchSpec::run`] executes it under a chosen selection logic, and
//! [`MicrobenchSpec::run_all_fixed`] produces the per-implementation
//! reference data the paper calls the *verification runs*.

use adcl::filter::FilterKind;
use adcl::function::FunctionSet;
use adcl::microbench::{Imbalance, MicroBenchConfig, MicroBenchScript};
use adcl::runner::TuningSession;
use adcl::runner::{Runner, Script};
use adcl::strategy::SelectionLogic;
use adcl::tuner::TunerConfig;
use mpisim::{NoiseConfig, World};
use nbc::schedule::CollSpec;
use netmodel::{Placement, Platform};
use simcore::SimTime;

/// Which collective the benchmark exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveOp {
    /// Non-blocking all-to-all (3 implementations).
    Ialltoall,
    /// Non-blocking all-to-all, extended with blocking variants (6).
    IalltoallExtended,
    /// Non-blocking broadcast (21 implementations).
    Ibcast,
    /// Non-blocking all-gather (3 implementations).
    Iallgather,
    /// Non-blocking reduce (3 implementations).
    Ireduce,
    /// Non-blocking all-reduce (3 implementations).
    Iallreduce,
    /// Non-blocking gather (2 implementations).
    Igather,
    /// Non-blocking scatter (2 implementations).
    Iscatter,
}

impl CollectiveOp {
    /// Operation name for reports and history keys.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveOp::Ialltoall => "ialltoall",
            CollectiveOp::IalltoallExtended => "ialltoall-ext",
            CollectiveOp::Ibcast => "ibcast",
            CollectiveOp::Iallgather => "iallgather",
            CollectiveOp::Ireduce => "ireduce",
            CollectiveOp::Iallreduce => "iallreduce",
            CollectiveOp::Igather => "igather",
            CollectiveOp::Iscatter => "iscatter",
        }
    }

    /// Inverse of [`CollectiveOp::name`]: look an operation up by its
    /// report/history name (used by the `adcld` daemon to resolve query
    /// strings). Returns `None` for unknown names.
    pub fn by_name(name: &str) -> Option<CollectiveOp> {
        let all = [
            CollectiveOp::Ialltoall,
            CollectiveOp::IalltoallExtended,
            CollectiveOp::Ibcast,
            CollectiveOp::Iallgather,
            CollectiveOp::Ireduce,
            CollectiveOp::Iallreduce,
            CollectiveOp::Igather,
            CollectiveOp::Iscatter,
        ];
        all.into_iter().find(|op| op.name() == name)
    }

    /// Build the default function-set for this operation.
    pub fn fnset(self, spec: CollSpec) -> FunctionSet {
        match self {
            CollectiveOp::Ialltoall => FunctionSet::ialltoall_default(spec),
            CollectiveOp::IalltoallExtended => FunctionSet::ialltoall_extended(spec),
            CollectiveOp::Ibcast => FunctionSet::ibcast_default(spec),
            CollectiveOp::Iallgather => FunctionSet::iallgather_default(spec),
            CollectiveOp::Ireduce => FunctionSet::ireduce_default(spec),
            CollectiveOp::Iallreduce => FunctionSet::iallreduce_default(spec),
            CollectiveOp::Igather => FunctionSet::igather_default(spec),
            CollectiveOp::Iscatter => FunctionSet::iscatter_default(spec),
        }
    }
}

/// One micro-benchmark scenario.
#[derive(Debug, Clone)]
pub struct MicrobenchSpec {
    /// The simulated machine.
    pub platform: Platform,
    /// Number of processes.
    pub nprocs: usize,
    /// The collective under test.
    pub op: CollectiveOp,
    /// Message size (full payload for bcast/reduce; per-pair block for
    /// alltoall/allgather — the paper's convention).
    pub msg_bytes: usize,
    /// Benchmark loop iterations.
    pub iters: usize,
    /// Total compute time across the loop (the paper uses 10–100 s).
    pub compute_total: SimTime,
    /// Progress calls per iteration.
    pub num_progress: usize,
    /// Compute-noise model.
    pub noise: NoiseConfig,
    /// Measurements per implementation during learning.
    pub reps: usize,
    /// Rank placement policy (`Block` fills nodes first; `RoundRobin`
    /// scatters one rank per node, maximizing network traffic).
    pub placement: Placement,
    /// Systematic load imbalance across ranks (process arrival patterns).
    pub imbalance: Imbalance,
}

/// Result of one micro-benchmark run.
#[derive(Debug, Clone)]
pub struct MicrobenchOutcome {
    /// Total measured loop time in seconds (the paper's y-axis).
    pub total: f64,
    /// Loop time excluding the learning phase.
    pub post_learning: f64,
    /// Name of the winning implementation, if the logic converged.
    pub winner: Option<String>,
    /// Iteration at which learning finished.
    pub converged_at: Option<usize>,
    /// Per-iteration times.
    pub history: Vec<f64>,
    /// Name of the strategy used.
    pub strategy: &'static str,
    /// Aggregate time accounting across ranks (compute / library /
    /// blocked) — `blocked + library` is the exposed communication cost.
    pub accounting: mpisim::RankAccounting,
    /// Discrete events this run's world processed; a memo replay credits
    /// this many avoided events to `adcl::simmemo`.
    pub sim_events: u64,
    /// Implementations demoted because their microbenchmark samples timed
    /// out under fault injection, in demotion order. Empty on healthy runs.
    pub demoted: Vec<String>,
    /// Winner margin over the best credible alternative (filtered score
    /// for survivors, filtered lower bound for racing-eliminated
    /// candidates). `0.0` when no tuning decision was made.
    pub margin: f64,
}

/// Why one attempt of the benchmark loop could not finish: a candidate's
/// rendezvous handshake exhausted its retry budget (fault injection).
struct AttemptTimedOut {
    /// Index of the suspected candidate within the attempt's function set.
    victim: usize,
    /// Its implementation name.
    victim_name: String,
    /// Rendered `SimError::Timeout`.
    reason: String,
    /// Benchmark iterations the candidate was assigned before the timeout.
    samples: usize,
    /// Strategy name, for the degraded outcome.
    strategy: &'static str,
}

impl MicrobenchSpec {
    /// The collective-operation parameters implied by this spec.
    pub fn coll_spec(&self) -> CollSpec {
        CollSpec::new(self.nprocs, self.msg_bytes)
    }

    /// Benchmark-loop parameters.
    pub fn bench_config(&self) -> MicroBenchConfig {
        MicroBenchConfig {
            iters: self.iters,
            compute_total: self.compute_total,
            num_progress: self.num_progress,
        }
    }

    /// Run the benchmark under `logic`.
    pub fn run(&self, logic: SelectionLogic) -> MicrobenchOutcome {
        let fnset = self.op.fnset(self.coll_spec());
        self.run_with_fnset(fnset, logic)
    }

    /// Run the benchmark with an explicit function-set (e.g. a pinned
    /// baseline).
    ///
    /// Under fault injection a candidate whose rendezvous handshake
    /// exhausts its retry budget surfaces as [`mpisim::SimError::Timeout`].
    /// Rather than wedging the tuning session, the driver *demotes* the
    /// candidate the tuner was measuring (recording it in the audit log and
    /// in [`MicrobenchOutcome::demoted`]) and reruns the sweep with the
    /// survivors. A fixed-logic run, or a set with no survivors left, has
    /// nothing to fall back to and returns a degraded outcome (no winner,
    /// infinite total) instead.
    pub fn run_with_fnset(&self, fnset: FunctionSet, logic: SelectionLogic) -> MicrobenchOutcome {
        let mut fnset = fnset;
        let mut demoted: Vec<String> = Vec::new();
        loop {
            match self.try_run(fnset.clone(), logic) {
                Ok(mut out) => {
                    out.demoted = demoted;
                    return out;
                }
                Err(t) => {
                    adcl::audit::record_demotion(adcl::audit::DemotionAudit {
                        label: self.trace_label(logic),
                        op: self.op.name().into(),
                        func: t.victim,
                        name: t.victim_name.clone(),
                        reason: t.reason,
                        samples: t.samples,
                    });
                    demoted.push(t.victim_name);
                    let dead_end = matches!(logic, SelectionLogic::Fixed(_)) || fnset.len() <= 1;
                    if dead_end {
                        // Nothing left to tune over: report the degradation
                        // instead of looping on the same doomed candidate.
                        return MicrobenchOutcome {
                            total: f64::INFINITY,
                            post_learning: f64::INFINITY,
                            winner: None,
                            converged_at: None,
                            history: Vec::new(),
                            strategy: t.strategy,
                            accounting: mpisim::RankAccounting::default(),
                            sim_events: 0,
                            demoted,
                            margin: 0.0,
                        };
                    }
                    fnset = fnset.without(t.victim);
                }
            }
        }
    }

    /// The label naming this run in traces and audit records.
    fn trace_label(&self, logic: SelectionLogic) -> String {
        format!(
            "{}/{}/p{}/m{}/g{}/{:?}",
            self.platform.name,
            self.op.name(),
            self.nprocs,
            self.msg_bytes,
            self.num_progress,
            logic
        )
    }

    /// One attempt of the benchmark loop over `fnset`. The world comes
    /// from the per-thread reuse pool (`mpisim::worldpool`): consecutive
    /// sweep points on the same worker share arenas and payload slabs
    /// instead of rebuilding them, with byte-identical results.
    fn try_run(
        &self,
        fnset: FunctionSet,
        logic: SelectionLogic,
    ) -> Result<MicrobenchOutcome, AttemptTimedOut> {
        mpisim::worldpool::with_world(
            &self.platform,
            self.nprocs,
            self.placement,
            self.noise,
            |world| self.try_run_in(world, fnset, logic),
        )
    }

    fn try_run_in(
        &self,
        world: &mut World,
        fnset: FunctionSet,
        logic: SelectionLogic,
    ) -> Result<MicrobenchOutcome, AttemptTimedOut> {
        let mut session = TuningSession::new(self.nprocs);
        let op = session.add_op(
            self.op.name(),
            fnset,
            TunerConfig {
                logic,
                reps: self.reps,
                warmup: 1,
                filter: FilterKind::default(),
            },
        );
        if world.tracing() {
            // One label names both the timeline (process row in the Chrome
            // trace) and the tuner's audit records for this run.
            let label = self.trace_label(logic);
            world.set_trace_label(&label);
            session.ops[op].tuner.set_label(&label);
        }
        let timer = session.add_timer(vec![op]);
        let scripts: Vec<Box<dyn Script>> = MicroBenchScript::per_rank_imbalanced(
            self.bench_config(),
            op,
            timer,
            self.nprocs,
            self.imbalance,
        );
        let mut runner = Runner::new(session, scripts);
        match world.run(&mut runner) {
            Ok(_) => {}
            Err(err @ mpisim::SimError::Timeout { .. }) => {
                // Blame the candidate the tuner was measuring when the
                // retry budget ran out — the last assigned function.
                let s = runner.session;
                let tuner = &s.ops[op].tuner;
                let victim = tuner.assignments().last().copied().unwrap_or(0);
                let samples = tuner.assignments().iter().filter(|&&f| f == victim).count();
                return Err(AttemptTimedOut {
                    victim,
                    victim_name: s.ops[op].fnset.functions[victim].name.clone(),
                    reason: err.to_string(),
                    samples,
                    strategy: tuner.strategy_name(),
                });
            }
            Err(err) => panic!("microbenchmark deadlocked: {err}"),
        }
        let accounting = world.accounting_total();
        let sim_events = world.events_processed();
        let s = runner.session;
        let tuner = &s.ops[op].tuner;
        let converged = tuner.converged_at();
        if tuner.winner().is_some() && !matches!(logic, SelectionLogic::Fixed(_)) {
            // Per-decision measurement economy: how many simulated events
            // this *fresh* tuning decision cost (memo replays credit
            // `adcl.simmemo` instead and never reach this path).
            simcore::metrics::histogram("adcl.sweep.sim_events_per_decision").record(sim_events);
        }
        Ok(MicrobenchOutcome {
            total: s.timers[timer].total(),
            post_learning: s.timers[timer].total_from(converged.unwrap_or(0)),
            winner: tuner
                .winner()
                .map(|w| s.ops[op].fnset.functions[w].name.clone()),
            converged_at: converged,
            history: s.timers[timer].history().to_vec(),
            strategy: tuner.strategy_name(),
            accounting,
            sim_events,
            demoted: Vec::new(),
            margin: tuner.decision_margin(),
        })
    }

    /// Fingerprint covering every input that can influence this spec's
    /// outcome under `logic`: platform preset, collective, process count,
    /// message length, loop shape, noise seeds, placement, imbalance, the
    /// process-wide fault-injection config, and the selection logic itself.
    /// The simulation is a pure function of this string (see
    /// `adcl::simmemo`), so two specs with equal keys produce bit-identical
    /// outcomes.
    pub fn memo_key(&self, logic: SelectionLogic) -> String {
        format!(
            "ub/{plat}/{op}/p{np}/m{mb}/i{it}/c{ct}/g{npg}/{ns:?}/r{reps}/{pl:?}/{imb:?}/F{flt}/{logic:?}",
            plat = self.platform.name,
            op = self.op.name(),
            np = self.nprocs,
            mb = self.msg_bytes,
            it = self.iters,
            ct = self.compute_total,
            npg = self.num_progress,
            ns = self.noise,
            reps = self.reps,
            pl = self.placement,
            imb = self.imbalance,
            flt = mpisim::fault::current().describe(),
        )
    }

    /// Memoized [`MicrobenchSpec::run`]: consult `adcl::simmemo` before
    /// simulating. On a replay the run's event count is credited to the
    /// memo's replayed-events counter (the work a fresh run would have
    /// done). With memoization disabled this is exactly `run`.
    pub fn run_memo(&self, logic: SelectionLogic) -> std::sync::Arc<MicrobenchOutcome> {
        self.run_memo_flagged(logic).0
    }

    /// [`MicrobenchSpec::run_memo`] that also reports whether the outcome
    /// was replayed from the memo (`true`) or freshly simulated (`false`).
    /// The `adcld` daemon uses the flag to tag served decisions as
    /// `memo-replay` vs `fresh-sweep`.
    pub fn run_memo_flagged(
        &self,
        logic: SelectionLogic,
    ) -> (std::sync::Arc<MicrobenchOutcome>, bool) {
        let key = self.memo_key(logic);
        let (out, replayed) = adcl::simmemo::get_or_run(&key, || self.run(logic));
        if replayed {
            adcl::simmemo::credit_replay(out.sim_events);
        }
        (out, replayed)
    }

    /// Pre-build (intern) every schedule this spec's runs will need, so
    /// schedule construction happens before any timed region instead of
    /// inside the first measured iteration. All default function-sets
    /// route their builders through the global schedule cache
    /// (`nbc::cache`), so calling each builder for each rank both interns
    /// the schedule globally and warms the calling thread's front cache.
    pub fn prebuild_schedules(&self) {
        let fnset = self.op.fnset(self.coll_spec());
        let coll = self.coll_spec();
        for f in &fnset.functions {
            for rank in 0..self.nprocs {
                let _ = (f.builder)(rank, &coll);
            }
        }
    }

    /// Order-of-magnitude estimate of one run's wall-clock cost in
    /// nanoseconds, for the serial-cutoff heuristic
    /// (`simcore::par::plan_participants`): roughly 2µs of host time per
    /// rank per benchmark iteration, which matches the measured scale of
    /// the 8-rank microbenchmarks (hundreds of microseconds). Only the
    /// comparison against the ~100µs pool-handoff floor matters, so being
    /// off by 2–3× either way does not change any sensible decision.
    pub fn est_run_nanos(&self) -> u64 {
        2_000u64
            .saturating_mul(self.nprocs as u64)
            .saturating_mul(self.iters as u64)
    }

    /// Untimed sweep pre-warm: on every thread a `par_map(jobs, specs, …)`
    /// sweep will use (pool workers and the caller), lease-and-release a
    /// warm world for each distinct shape in `specs`, pre-warm its payload
    /// slabs for the largest message the shape will carry, and pre-build
    /// the schedules (warming each thread's schedule front cache). After
    /// this, a timed sweep over `specs` neither constructs worlds, nor
    /// heap-allocates payload slabs, nor builds schedules.
    pub fn prewarm_sweep(jobs: usize, specs: &[MicrobenchSpec]) {
        if specs.is_empty() {
            return;
        }
        let participants = simcore::par::plan_participants(
            jobs,
            specs.len().max(2),
            simcore::par::hardware_parallelism(),
            simcore::par::COST_UNKNOWN,
            0,
        );
        // Distinct world shapes, each with the largest payload it will see.
        let mut shapes: Vec<&MicrobenchSpec> = Vec::new();
        for s in specs {
            match shapes.iter_mut().find(|p| {
                p.nprocs == s.nprocs && p.placement == s.placement && p.platform == s.platform
            }) {
                Some(p) => {
                    if s.msg_bytes > p.msg_bytes {
                        *p = s;
                    }
                }
                None => shapes.push(s),
            }
        }
        simcore::par::on_all_workers(participants.saturating_sub(1), || {
            for s in &shapes {
                mpisim::worldpool::prewarm(
                    &s.platform,
                    s.nprocs,
                    s.placement,
                    s.noise,
                    s.msg_bytes,
                    2 * s.nprocs,
                );
                s.prebuild_schedules();
            }
        });
    }

    /// The verification runs: execute every implementation of the
    /// function-set with the selection logic bypassed. Returns
    /// `(name, total_seconds)` per implementation, in function-set order.
    pub fn run_all_fixed(&self) -> Vec<(String, f64)> {
        self.run_all_fixed_jobs(1)
    }

    /// Parallel [`MicrobenchSpec::run_all_fixed`]: each fixed run is an
    /// independent simulation, so they fan out over `jobs` worker threads
    /// (`simcore::par::par_map_costed`, with this spec's estimated run
    /// cost feeding the serial cutoff — a sub-handoff sweep stays on the
    /// calling thread). The output is bit-identical to the serial method
    /// for every `jobs` value — results merge in input order and each
    /// simulation owns its world and noise streams.
    pub fn run_all_fixed_jobs(&self, jobs: usize) -> Vec<(String, f64)> {
        self.run_all_fixed_jobs_flagged(jobs).0
    }

    /// [`MicrobenchSpec::run_all_fixed_jobs`] that also counts how many of
    /// the fixed runs were memo replays (0 = everything freshly simulated,
    /// `len()` = the whole sweep was answered from the memo).
    pub fn run_all_fixed_jobs_flagged(&self, jobs: usize) -> (Vec<(String, f64)>, usize) {
        let names: Vec<String> = {
            // Function sets hold `Rc` builders, so build one locally for
            // the names and let every worker build its own for the runs.
            let fnset = self.op.fnset(self.coll_spec());
            (0..fnset.len())
                .map(|i| fnset.functions[i].name.clone())
                .collect()
        };
        let idx: Vec<usize> = (0..names.len()).collect();
        let results = simcore::par::par_map_costed(jobs, &idx, self.est_run_nanos(), |_, &i| {
            let (out, replayed) = self.run_memo_flagged(SelectionLogic::Fixed(i));
            (out.total, replayed)
        });
        let replayed = results.iter().filter(|(_, r)| *r).count();
        let rows = names
            .into_iter()
            .zip(results.into_iter().map(|(t, _)| t))
            .collect();
        (rows, replayed)
    }

    /// The implementation a fully informed oracle would pick: the name and
    /// total time of the fastest fixed run.
    pub fn oracle(&self) -> (String, f64) {
        self.run_all_fixed()
            .into_iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN time"))
            .expect("nonempty function set")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MicrobenchSpec {
        MicrobenchSpec {
            platform: Platform::whale(),
            nprocs: 8,
            op: CollectiveOp::Ialltoall,
            msg_bytes: 1024,
            iters: 15,
            compute_total: SimTime::from_millis(15),
            num_progress: 4,
            noise: NoiseConfig::none(),
            reps: 3,
            placement: Placement::Block,
            imbalance: Imbalance::None,
        }
    }

    #[test]
    fn tuned_run_converges() {
        let out = spec().run(SelectionLogic::BruteForce);
        assert!(out.winner.is_some());
        assert_eq!(out.history.len(), 15);
        assert!(out.total >= 15e-3, "cannot beat the compute floor");
        assert!(out.post_learning <= out.total);
    }

    #[test]
    fn accounting_reported() {
        let out = spec().run(SelectionLogic::Fixed(0));
        // 8 ranks x 15 ms of compute each.
        assert!(out.accounting.compute >= SimTime::from_millis(8 * 15));
        assert!(out.accounting.library > SimTime::ZERO);
        assert!(out.accounting.exposed_fraction() < 0.5);
    }

    #[test]
    fn fixed_runs_cover_all_functions() {
        let rows = spec().run_all_fixed();
        assert_eq!(rows.len(), 3);
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["linear", "pairwise", "dissemination"]);
        assert!(rows.iter().all(|(_, t)| *t > 0.0));
    }

    #[test]
    fn adcl_close_to_oracle_after_learning() {
        let s = spec();
        let tuned = s.run(SelectionLogic::BruteForce);
        let (oracle_name, oracle_total) = s.oracle();
        // ADCL pays the learning phase, so compare steady-state rates: its
        // post-learning per-iteration cost should be within 10% of the
        // oracle's per-iteration cost.
        let learn = tuned
            .converged_at
            .expect("tuner did not converge within the benchmark loop");
        let tuned_rate = tuned.post_learning / (s.iters - learn) as f64;
        let oracle_rate = oracle_total / s.iters as f64;
        assert!(
            tuned_rate <= oracle_rate * 1.10,
            "tuned {tuned_rate} vs oracle {oracle_rate} ({oracle_name})"
        );
    }

    #[test]
    fn memo_key_distinguishes_every_field() {
        let base = spec();
        let k0 = base.memo_key(SelectionLogic::Fixed(0));
        let mut variants = Vec::new();
        let mut s = base.clone();
        s.nprocs = 16;
        variants.push(s.memo_key(SelectionLogic::Fixed(0)));
        let mut s = base.clone();
        s.msg_bytes = 2048;
        variants.push(s.memo_key(SelectionLogic::Fixed(0)));
        let mut s = base.clone();
        s.noise = NoiseConfig::light(7);
        variants.push(s.memo_key(SelectionLogic::Fixed(0)));
        let mut s = base.clone();
        s.placement = Placement::RoundRobin;
        variants.push(s.memo_key(SelectionLogic::Fixed(0)));
        let mut s = base.clone();
        s.platform = Platform::crill();
        variants.push(s.memo_key(SelectionLogic::Fixed(0)));
        variants.push(base.memo_key(SelectionLogic::Fixed(1)));
        variants.push(base.memo_key(SelectionLogic::BruteForce));
        for v in &variants {
            assert_ne!(&k0, v, "memo key failed to capture a varied field");
        }
        // And the key is stable for an identical spec.
        assert_eq!(k0, base.clone().memo_key(SelectionLogic::Fixed(0)));
    }

    #[test]
    fn memoized_run_replays_identically() {
        let s = spec();
        let fresh = s.run(SelectionLogic::Fixed(1));
        adcl::simmemo::set_enabled(true);
        let a = s.run_memo(SelectionLogic::Fixed(1));
        let b = s.run_memo(SelectionLogic::Fixed(1));
        adcl::simmemo::clear_enabled_override();
        assert_eq!(a.total, fresh.total);
        assert_eq!(a.history, fresh.history);
        assert!(a.sim_events > 0);
        // The replay is the same shared outcome, not a re-simulation.
        assert!(std::sync::Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn prebuild_then_run_is_identical() {
        let s = spec();
        let fresh = s.run(SelectionLogic::Fixed(0));
        s.prebuild_schedules();
        let warm = s.run(SelectionLogic::Fixed(0));
        assert_eq!(fresh.total.to_bits(), warm.total.to_bits());
        assert_eq!(fresh.history, warm.history);
    }

    #[test]
    fn prewarm_sweep_then_parallel_run_is_identical() {
        let specs: Vec<MicrobenchSpec> = (0..4)
            .map(|k| {
                let mut s = spec();
                s.msg_bytes = 1024 << k;
                s
            })
            .collect();
        let serial: Vec<f64> = specs
            .iter()
            .map(|s| s.run(SelectionLogic::Fixed(1)).total)
            .collect();
        MicrobenchSpec::prewarm_sweep(4, &specs);
        let warm = simcore::par::par_map(4, &specs, |_, s| s.run(SelectionLogic::Fixed(1)).total);
        for (a, b) in serial.iter().zip(&warm) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn est_run_nanos_scales_with_work() {
        let s = spec();
        let small = s.est_run_nanos();
        let mut big = s.clone();
        big.iters *= 10;
        big.nprocs *= 2;
        assert!(big.est_run_nanos() > small * 10);
        assert!(small > 0);
    }

    #[test]
    fn all_ops_run() {
        for op in [
            CollectiveOp::Ialltoall,
            CollectiveOp::IalltoallExtended,
            CollectiveOp::Iallgather,
            CollectiveOp::Ireduce,
            CollectiveOp::Iallreduce,
            CollectiveOp::Igather,
            CollectiveOp::Iscatter,
        ] {
            let mut s = spec();
            s.op = op;
            s.iters = 8;
            s.reps = 1;
            let out = s.run(SelectionLogic::BruteForce);
            assert_eq!(out.history.len(), 8, "{:?}", op);
        }
        // Ibcast has 21 functions; use heuristic with few reps.
        let mut s = spec();
        s.op = CollectiveOp::Ibcast;
        s.msg_bytes = 64 * 1024;
        s.iters = 25;
        s.reps = 2;
        let out = s.run(SelectionLogic::AttributeHeuristic);
        assert!(out.winner.is_some(), "heuristic should finish in 20 iters");
    }
}
