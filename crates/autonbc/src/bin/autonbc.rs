//! `autonbc` — command-line driver for the auto-tuning simulator.
//!
//! ```text
//! autonbc platforms
//! autonbc tune --platform whale --op ialltoall --procs 32 --msg 128K \
//!              --iters 50 --compute 200ms --progress 5 --logic brute \
//!              [--all-fixed] [--noise SEED] [--roundrobin]
//! autonbc fft  --platform crill --procs 96 --grid 256 --iters 40 \
//!              [--mode adcl|adcl-ext|libnbc|mpi] [--pattern window-tiled]
//! ```

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use fft3d::patterns::run_fft_kernel;
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  autonbc platforms\n  autonbc tune --platform <name> --op <op> --procs <n> --msg <size> \\\n               [--iters N] [--compute DUR] [--progress N] [--logic brute|heuristic|factorial]\\\n               [--reps N] [--all-fixed] [--noise SEED] [--roundrobin]\n  autonbc fft  --platform <name> --procs <n> [--grid N] [--iters N] \\\n               [--mode adcl|adcl-ext|libnbc|mpi] [--pattern NAME]\n\nops: ialltoall ialltoall-ext ibcast iallgather ireduce iallreduce igather iscatter\nsizes accept K/M suffixes; durations accept us/ms/s suffixes\n\nany command also accepts --trace-out <file> (or NBC_TRACE=<file>): write a\nChrome trace_event timeline plus the tuner decision audit log\n\nany command also accepts --faults <spec> (or NBC_FAULTS=<spec>): inject\ndeterministic faults; spec is off | light[:seed] | heavy[:seed] | k=v list\n(see `mpisim::fault`)"
    );
    exit(2)
}

/// Look up a platform preset, exiting with a diagnostic (never a panic)
/// when the user typos the name.
fn platform_or_exit(name: &str) -> Platform {
    Platform::by_name(name).unwrap_or_else(|| {
        eprintln!(
            "unknown platform '{name}'; valid presets: {}",
            Platform::preset_names().join(", ")
        );
        exit(2)
    })
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            let boolean = matches!(key, "all-fixed" | "roundrobin" | "help");
            if boolean {
                map.insert(key.to_string(), "true".to_string());
                i += 1;
            } else {
                if i + 1 >= args.len() {
                    eprintln!("missing value for --{key}");
                    usage();
                }
                map.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            }
        } else {
            eprintln!("unexpected argument {a}");
            usage();
        }
    }
    map
}

fn parse_size(s: &str) -> usize {
    let s = s.trim();
    let (num, mult) = if let Some(n) = s.strip_suffix('M') {
        (n, 1024 * 1024)
    } else if let Some(n) = s.strip_suffix('K') {
        (n, 1024)
    } else {
        (s, 1)
    };
    num.parse::<usize>().unwrap_or_else(|_| {
        eprintln!("bad size: {s}");
        usage()
    }) * mult
}

fn parse_duration(s: &str) -> SimTime {
    let s = s.trim();
    if let Some(n) = s.strip_suffix("us") {
        SimTime::from_micros(n.parse().unwrap_or_else(|_| usage()))
    } else if let Some(n) = s.strip_suffix("ms") {
        SimTime::from_millis(n.parse().unwrap_or_else(|_| usage()))
    } else if let Some(n) = s.strip_suffix('s') {
        SimTime::from_secs_f64(n.parse().unwrap_or_else(|_| usage()))
    } else {
        eprintln!("bad duration: {s} (use us/ms/s)");
        usage()
    }
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> &'a str {
    flags.get(key).map(|s| s.as_str()).unwrap_or_else(|| {
        eprintln!("missing required flag --{key}");
        usage()
    })
}

fn cmd_platforms() {
    println!(
        "{:<12} {:>6} {:>6} {:>5}  interconnect",
        "name", "nodes", "cores", "nics"
    );
    for name in Platform::preset_names() {
        let p = platform_or_exit(name);
        println!(
            "{:<12} {:>6} {:>6} {:>5}  {} (L={}, {:.2} GB/s)",
            p.name,
            p.nodes,
            p.cores_per_node,
            p.nics_per_node,
            p.inter.name,
            p.inter.latency,
            1.0 / p.inter.gap_ns_per_byte
        );
    }
}

fn cmd_tune(flags: HashMap<String, String>) {
    let platform = platform_or_exit(get(&flags, "platform"));
    let op = match get(&flags, "op") {
        "ialltoall" => CollectiveOp::Ialltoall,
        "ialltoall-ext" => CollectiveOp::IalltoallExtended,
        "ibcast" => CollectiveOp::Ibcast,
        "iallgather" => CollectiveOp::Iallgather,
        "ireduce" => CollectiveOp::Ireduce,
        "iallreduce" => CollectiveOp::Iallreduce,
        "igather" => CollectiveOp::Igather,
        "iscatter" => CollectiveOp::Iscatter,
        other => {
            eprintln!("unknown op {other}");
            usage()
        }
    };
    let logic = match flags.get("logic").map(|s| s.as_str()).unwrap_or("brute") {
        "brute" => SelectionLogic::BruteForce,
        "heuristic" => SelectionLogic::AttributeHeuristic,
        "factorial" => SelectionLogic::TwoKFactorial,
        other => {
            eprintln!("unknown logic {other}");
            usage()
        }
    };
    let spec = MicrobenchSpec {
        platform,
        nprocs: get(&flags, "procs").parse().unwrap_or_else(|_| usage()),
        op,
        msg_bytes: parse_size(get(&flags, "msg")),
        iters: flags
            .get("iters")
            .map(|s| s.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(50),
        compute_total: flags
            .get("compute")
            .map(|s| parse_duration(s))
            .unwrap_or(SimTime::from_millis(100)),
        num_progress: flags
            .get("progress")
            .map(|s| s.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(5),
        noise: flags
            .get("noise")
            .map(|s| NoiseConfig::light(s.parse().unwrap_or_else(|_| usage())))
            .unwrap_or(NoiseConfig::none()),
        reps: flags
            .get("reps")
            .map(|s| s.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(5),
        placement: if flags.contains_key("roundrobin") {
            Placement::RoundRobin
        } else {
            Placement::Block
        },
        imbalance: flags
            .get("imbalance")
            .map(|s| Imbalance::Ramp {
                spread: s.parse().unwrap_or_else(|_| usage()),
            })
            .unwrap_or(Imbalance::None),
    };
    println!(
        "{} on {}: {} procs, {} B, {} iters, {} compute, {} progress calls",
        spec.op.name(),
        spec.platform.name,
        spec.nprocs,
        spec.msg_bytes,
        spec.iters,
        spec.compute_total,
        spec.num_progress
    );
    if flags.contains_key("all-fixed") {
        println!("\nfixed implementations:");
        for (name, total) in spec.run_all_fixed() {
            println!("  {name:<24} {:>10.3} ms", total * 1e3);
        }
    }
    if let Some(path) = flags.get("trace") {
        // Re-run the winning configuration with tracing enabled and dump a
        // Chrome trace-event file (viewable in Perfetto).
        write_trace(&spec, path);
    }
    let out = spec.run(logic);
    println!("\n{} tuning:", out.strategy);
    println!(
        "  winner        : {}",
        out.winner.unwrap_or_else(|| "(not converged)".into())
    );
    println!(
        "  converged at  : {}",
        out.converged_at
            .map(|c| c.to_string())
            .unwrap_or_else(|| "-".into())
    );
    println!("  total         : {:>10.3} ms", out.total * 1e3);
    println!("  post-learning : {:>10.3} ms", out.post_learning * 1e3);
    let a = out.accounting;
    println!(
        "  time split    : compute {} | library {} | blocked {} (exposed {:.1}%)",
        a.compute,
        a.library,
        a.blocked,
        a.exposed_fraction() * 100.0
    );
}

/// Run one fixed-implementation pass with tracing and write the timeline.
fn write_trace(spec: &MicrobenchSpec, path: &str) {
    use adcl::microbench::MicroBenchScript;
    use adcl::runner::{Runner, Script, TuningSession};
    use adcl::tuner::TunerConfig;
    let mut world = World::new(
        spec.platform.clone(),
        spec.nprocs,
        spec.placement,
        spec.noise,
    );
    world.enable_trace();
    let mut session = TuningSession::new(spec.nprocs);
    let op = session.add_op(
        spec.op.name(),
        spec.op.fnset(spec.coll_spec()),
        TunerConfig {
            logic: SelectionLogic::Fixed(0),
            reps: 1,
            warmup: 0,
            filter: FilterKind::default(),
        },
    );
    let timer = session.add_timer(vec![op]);
    let scripts: Vec<Box<dyn Script>> =
        MicroBenchScript::per_rank(spec.bench_config(), op, timer, spec.nprocs);
    let mut runner = Runner::new(session, scripts);
    world.run(&mut runner).expect("trace run deadlocked");
    let mut f = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        exit(1)
    });
    world.write_chrome_trace(&mut f).expect("write trace");
    println!(
        "wrote {} trace segments to {path} (open in Perfetto / chrome://tracing)",
        world.trace().len()
    );
}

fn cmd_fft(flags: HashMap<String, String>) {
    let platform = platform_or_exit(get(&flags, "platform"));
    let procs: usize = get(&flags, "procs").parse().unwrap_or_else(|_| usage());
    let cfg = FftKernelConfig {
        n: flags
            .get("grid")
            .map(|s| s.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(256),
        iters: flags
            .get("iters")
            .map(|s| s.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(40),
        ..FftKernelConfig::default()
    };
    let mode = match flags.get("mode").map(|s| s.as_str()).unwrap_or("adcl") {
        "adcl" => FftMode::Adcl(SelectionLogic::BruteForce),
        "adcl-ext" => FftMode::AdclExtended(SelectionLogic::BruteForce),
        "libnbc" => FftMode::LibNbc,
        "mpi" => FftMode::BlockingMpi,
        other => {
            eprintln!("unknown mode {other}");
            usage()
        }
    };
    let patterns: Vec<FftPattern> = match flags.get("pattern") {
        None => FftPattern::all(),
        Some(name) => {
            let p = FftPattern::all()
                .into_iter()
                .find(|p| p.name() == name)
                .unwrap_or_else(|| {
                    eprintln!("unknown pattern {name}");
                    usage()
                });
            vec![p]
        }
    };
    println!(
        "3-D FFT on {}: {} procs, {}^2 x {} grid, {} iterations, mode {}",
        platform.name,
        procs,
        cfg.n,
        procs * cfg.planes_per_rank,
        cfg.iters,
        mode.name()
    );
    for pattern in patterns {
        let r = run_fft_kernel(&platform, procs, &cfg, pattern, mode, NoiseConfig::none());
        println!(
            "  {:<14} total {:>9.3} ms  steady {:>9.3} ms  winner {}",
            pattern.name(),
            r.total_time * 1e3,
            r.post_learning_time * 1e3,
            r.winner.unwrap_or_else(|| "-".into())
        );
    }
}

/// Strip the global `--trace-out <path>` / `--trace-out=<path>` flag from
/// `args`, enabling span tracing and the decision audit log to `path`.
fn take_trace_out(args: &mut Vec<String>) {
    let mut i = 0;
    while i < args.len() {
        if let Some(p) = args[i].strip_prefix("--trace-out=") {
            simcore::trace::set_out_path(p);
            args.remove(i);
        } else if args[i] == "--trace-out" {
            if i + 1 >= args.len() {
                eprintln!("missing value for --trace-out");
                usage();
            }
            simcore::trace::set_out_path(&args[i + 1]);
            args.drain(i..=i + 1);
        } else {
            i += 1;
        }
    }
}

/// Strip the global `--faults <spec>` / `--faults=<spec>` flag from `args`,
/// overriding the `NBC_FAULTS` fault-injection configuration.
fn take_faults(args: &mut Vec<String>) {
    let apply = |spec: &str| match mpisim::fault::FaultConfig::parse(spec) {
        Ok(cfg) => mpisim::fault::set_override(Some(cfg)),
        Err(e) => {
            eprintln!("bad --faults spec: {e}");
            exit(2)
        }
    };
    let mut i = 0;
    while i < args.len() {
        if let Some(spec) = args[i].strip_prefix("--faults=") {
            apply(spec);
            args.remove(i);
        } else if args[i] == "--faults" {
            if i + 1 >= args.len() {
                eprintln!("missing value for --faults");
                usage();
            }
            apply(&args[i + 1]);
            args.drain(i..=i + 1);
        } else {
            i += 1;
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    take_trace_out(&mut args);
    take_faults(&mut args);
    match args.first().map(|s| s.as_str()) {
        Some("platforms") => cmd_platforms(),
        Some("tune") => cmd_tune(parse_flags(&args[1..])),
        Some("fft") => cmd_fft(parse_flags(&args[1..])),
        _ => usage(),
    }
    autonbc::traceout::write_if_requested();
}
