//! Property-based tests over the full stack: arbitrary benchmark
//! scenarios complete, respect invariants, and reproduce deterministically.
//! Runs on the in-tree `simcore::check` harness (no external crates).

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use simcore::check::{run_cases, Gen};

fn gen_op(g: &mut Gen) -> CollectiveOp {
    g.choose(&[
        CollectiveOp::Ialltoall,
        CollectiveOp::Iallgather,
        CollectiveOp::Ireduce,
        CollectiveOp::Iallreduce,
        CollectiveOp::Igather,
        CollectiveOp::Iscatter,
    ])
}

fn gen_platform(g: &mut Gen) -> Platform {
    match g.usize_in(0, 3) {
        0 => Platform::whale(),
        1 => Platform::crill(),
        _ => Platform::bluegene_p(),
    }
}

fn gen_spec(g: &mut Gen) -> MicrobenchSpec {
    let platform = gen_platform(g);
    let op = gen_op(g);
    let nprocs = g.usize_in(2, 12);
    let msg_exp = g.u64_in(6, 18) as u32;
    let iters = g.usize_in(4, 12);
    let num_progress = g.usize_in(1, 6);
    let seed = g.u64_in(0, 1000);
    MicrobenchSpec {
        platform,
        nprocs,
        op,
        msg_bytes: 1usize << msg_exp,
        iters,
        compute_total: SimTime::from_micros(300 * iters as u64),
        num_progress,
        noise: if seed == 0 {
            NoiseConfig::none()
        } else {
            NoiseConfig::light(seed)
        },
        reps: 2,
        placement: if seed.is_multiple_of(2) {
            Placement::Block
        } else {
            Placement::RoundRobin
        },
        imbalance: Imbalance::None,
    }
}

/// Any scenario completes without deadlock, measures every iteration,
/// and never beats its compute floor.
#[test]
fn any_scenario_completes() {
    run_cases("any_scenario_completes", 40, |g| {
        let spec = gen_spec(g);
        let out = spec.run(SelectionLogic::BruteForce);
        assert_eq!(out.history.len(), spec.iters);
        assert!(
            out.total >= spec.compute_total.as_secs_f64() * 0.99,
            "total {} below compute floor {}",
            out.total,
            spec.compute_total.as_secs_f64()
        );
        assert!(out.post_learning <= out.total + 1e-12);
        // Accounting is self-consistent.
        let a = out.accounting;
        assert!(a.compute.as_secs_f64() > 0.0);
        assert!((0.0..=1.0).contains(&a.exposed_fraction()));
    });
}

/// Every iteration's measured time is positive and no larger than the
/// whole run.
#[test]
fn iteration_times_sane() {
    run_cases("iteration_times_sane", 40, |g| {
        let spec = gen_spec(g);
        let out = spec.run(SelectionLogic::Fixed(0));
        for &h in &out.history {
            assert!(h > 0.0);
            assert!(h <= out.total + 1e-12);
        }
        assert!((out.history.iter().sum::<f64>() - out.total).abs() < 1e-9);
    });
}

/// Determinism across the whole stack for arbitrary scenarios.
#[test]
fn scenarios_deterministic() {
    run_cases("scenarios_deterministic", 40, |g| {
        let spec = gen_spec(g);
        let a = spec.run(SelectionLogic::BruteForce);
        let b = spec.run(SelectionLogic::BruteForce);
        assert_eq!(a.history, b.history);
        assert_eq!(a.winner, b.winner);
    });
}

/// The heuristic and brute force agree with each other's oracle on
/// noiseless single-attribute sets (they test the same functions).
#[test]
fn logics_agree_noiseless() {
    run_cases("logics_agree_noiseless", 40, |g| {
        let mut spec = gen_spec(g);
        spec.noise = NoiseConfig::none();
        spec.iters = 16;
        spec.op = CollectiveOp::Ialltoall;
        let b = spec.run(SelectionLogic::BruteForce);
        let h = spec.run(SelectionLogic::AttributeHeuristic);
        assert_eq!(b.winner, h.winner);
    });
}
