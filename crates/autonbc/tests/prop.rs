//! Property-based tests over the full stack: arbitrary benchmark
//! scenarios complete, respect invariants, and reproduce deterministically.

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = CollectiveOp> {
    prop_oneof![
        Just(CollectiveOp::Ialltoall),
        Just(CollectiveOp::Iallgather),
        Just(CollectiveOp::Ireduce),
        Just(CollectiveOp::Iallreduce),
        Just(CollectiveOp::Igather),
        Just(CollectiveOp::Iscatter),
    ]
}

fn platform_strategy() -> impl Strategy<Value = Platform> {
    (0usize..3).prop_map(|i| match i {
        0 => Platform::whale(),
        1 => Platform::crill(),
        _ => Platform::bluegene_p(),
    })
}

fn spec_strategy() -> impl Strategy<Value = MicrobenchSpec> {
    (
        platform_strategy(),
        op_strategy(),
        2usize..12,          // nprocs
        6u32..18,            // msg = 2^e bytes
        4usize..12,          // iters
        1usize..6,           // num_progress
        0u64..1000,          // noise seed (0 => none)
    )
        .prop_map(|(platform, op, nprocs, msg_exp, iters, num_progress, seed)| {
            MicrobenchSpec {
                platform,
                nprocs,
                op,
                msg_bytes: 1usize << msg_exp,
                iters,
                compute_total: SimTime::from_micros(300 * iters as u64),
                num_progress,
                noise: if seed == 0 {
                    NoiseConfig::none()
                } else {
                    NoiseConfig::light(seed)
                },
                reps: 2,
                placement: if seed % 2 == 0 {
                    Placement::Block
                } else {
                    Placement::RoundRobin
                },
                imbalance: Imbalance::None,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any scenario completes without deadlock, measures every iteration,
    /// and never beats its compute floor.
    #[test]
    fn any_scenario_completes(spec in spec_strategy()) {
        let out = spec.run(SelectionLogic::BruteForce);
        prop_assert_eq!(out.history.len(), spec.iters);
        prop_assert!(out.total >= spec.compute_total.as_secs_f64() * 0.99,
            "total {} below compute floor {}", out.total, spec.compute_total.as_secs_f64());
        prop_assert!(out.post_learning <= out.total + 1e-12);
        // Accounting is self-consistent.
        let a = out.accounting;
        prop_assert!(a.compute.as_secs_f64() > 0.0);
        prop_assert!((0.0..=1.0).contains(&a.exposed_fraction()));
    }

    /// Every iteration's measured time is positive and no larger than the
    /// whole run.
    #[test]
    fn iteration_times_sane(spec in spec_strategy()) {
        let out = spec.run(SelectionLogic::Fixed(0));
        for &h in &out.history {
            prop_assert!(h > 0.0);
            prop_assert!(h <= out.total + 1e-12);
        }
        prop_assert!((out.history.iter().sum::<f64>() - out.total).abs() < 1e-9);
    }

    /// Determinism across the whole stack for arbitrary scenarios.
    #[test]
    fn scenarios_deterministic(spec in spec_strategy()) {
        let a = spec.run(SelectionLogic::BruteForce);
        let b = spec.run(SelectionLogic::BruteForce);
        prop_assert_eq!(a.history, b.history);
        prop_assert_eq!(a.winner, b.winner);
    }

    /// The heuristic and brute force agree with each other's oracle on
    /// noiseless single-attribute sets (they test the same functions).
    #[test]
    fn logics_agree_noiseless(mut spec in spec_strategy()) {
        spec.noise = NoiseConfig::none();
        spec.iters = 16;
        spec.op = CollectiveOp::Ialltoall;
        let b = spec.run(SelectionLogic::BruteForce);
        let h = spec.run(SelectionLogic::AttributeHeuristic);
        prop_assert_eq!(b.winner, h.winner);
    }
}
