//! CLI regression tests for the `autonbc` binary.
//!
//! A mistyped `--platform` name used to reach `Option::unwrap` and panic
//! with a backtrace; it must instead exit with code 2 and a message
//! listing the valid presets. Same contract for a malformed `--faults`
//! spec.

use std::process::Command;

fn autonbc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autonbc"))
}

#[test]
fn unknown_platform_is_an_error_not_a_panic() {
    let out = autonbc()
        .args(["tune", "--platform", "wahle"]) // typo for "whale"
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "bad input exits 2, not a panic");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown platform 'wahle'"), "stderr: {err}");
    // The message must name every valid preset so the user can recover.
    for preset in ["crill", "whale", "whale-tcp", "bluegene-p"] {
        assert!(err.contains(preset), "missing preset {preset}: {err}");
    }
    assert!(
        !err.contains("panicked"),
        "must not reach a panic handler: {err}"
    );
}

#[test]
fn unknown_platform_in_fft_is_an_error() {
    let out = autonbc()
        .args(["fft", "--platform", "nope", "--procs", "8"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown platform 'nope'"), "stderr: {err}");
    assert!(!err.contains("panicked"), "stderr: {err}");
}

#[test]
fn platform_listing_succeeds() {
    let out = autonbc().arg("platforms").output().expect("binary runs");
    assert!(out.status.success(), "status: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for preset in ["crill", "whale", "whale-tcp", "bluegene-p"] {
        assert!(stdout.contains(preset), "stdout: {stdout}");
    }
}

#[test]
fn malformed_faults_spec_is_an_error() {
    let out = autonbc()
        .args(["--faults", "drop=eleven", "platforms"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("bad --faults spec"), "stderr: {err}");
}
