//! Determinism matrix for racing selection (`SelectionLogic::Racing`):
//! winners, decision audit logs, and racing metric deltas must be
//! byte-identical across worker counts, fault profiles, and reruns —
//! and the racing winner must agree with brute force when healthy.
//!
//! Everything lives in one `#[test]` because the fault override and the
//! audit/metrics registries are process-global: parallel test threads
//! would race on them.

use autonbc::driver::{CollectiveOp, MicrobenchSpec};
use autonbc::prelude::*;
use mpisim::fault::{set_override, FaultConfig};

fn specs() -> Vec<MicrobenchSpec> {
    let mk = |platform: Platform, op, nprocs, msg_bytes, seed| MicrobenchSpec {
        platform,
        nprocs,
        op,
        msg_bytes,
        iters: 12,
        compute_total: SimTime::from_millis(12),
        num_progress: 4,
        noise: NoiseConfig::light(seed),
        reps: 3,
        placement: Placement::Block,
        imbalance: Imbalance::None,
    };
    vec![
        mk(Platform::whale(), CollectiveOp::Ialltoall, 8, 4096, 11),
        mk(Platform::crill(), CollectiveOp::Iallgather, 6, 2048, 22),
        mk(Platform::bluegene_p(), CollectiveOp::Ibcast, 8, 8192, 33),
    ]
}

/// Run every spec under `Racing(2)` with `jobs` workers and render one
/// canonical string: per-spec outcome bits, then the decision audit
/// records sorted by label (worker append order is scheduling-dependent,
/// the *contents* must not be), then the racing metric deltas.
fn fingerprint(jobs: usize, specs: &[MicrobenchSpec]) -> String {
    adcl::audit::clear();
    let scope = simcore::metrics::Scope::begin();
    let outs = simcore::par::par_map(jobs, specs, |_, s| s.run(SelectionLogic::Racing(2)));
    let mut fp = String::new();
    for out in &outs {
        fp.push_str(&format!(
            "winner={:?} total={:016x} margin={:016x} events={}\n",
            out.winner,
            out.total.to_bits(),
            out.margin.to_bits(),
            out.sim_events,
        ));
    }
    let mut recs = adcl::audit::records();
    recs.sort_by(|a, b| a.label.cmp(&b.label));
    for r in &recs {
        fp.push_str(&r.to_json());
        fp.push('\n');
    }
    let mut deltas: Vec<(&str, u64)> = scope
        .delta()
        .into_iter()
        .filter(|(name, _)| name.starts_with("adcl.sweep."))
        .collect();
    deltas.sort();
    for (name, v) in deltas {
        fp.push_str(&format!("{name}={v}\n"));
    }
    fp
}

#[test]
fn racing_is_byte_identical_across_jobs_faults_and_reruns() {
    // Audit records only flow when tracing is on; restore on exit.
    simcore::trace::set_enabled(true);

    // Healthy-run parity: racing must pick the same winner brute force
    // picks, on every matrix spec.
    set_override(Some(FaultConfig::parse("off").expect("valid spec")));
    for spec in &specs() {
        let brute = spec.run(SelectionLogic::BruteForce);
        let raced = spec.run(SelectionLogic::Racing(2));
        assert_eq!(
            raced.winner, brute.winner,
            "racing winner diverged from brute force on {:?}/{}",
            spec.op, spec.msg_bytes
        );
        // Interleaving shifts noise-dependent event counts a little even
        // when nothing is eliminated; racing must never cost materially
        // more. (The >=30% *savings* gate lives in perf_trajectory, on
        // configs where elimination fires.)
        assert!(
            raced.sim_events as f64 <= brute.sim_events as f64 * 1.10,
            "racing simulated materially more than brute force: {} vs {}",
            raced.sim_events,
            brute.sim_events
        );
    }

    // Full matrix: fault profile x worker count x rerun.
    let specs = specs();
    for faults in ["off", "light:42", "heavy:42"] {
        set_override(Some(FaultConfig::parse(faults).expect("valid spec")));
        let base = fingerprint(1, &specs);
        assert!(base.contains("winner=Some"), "no decision under {faults}");
        for jobs in [2usize, 8] {
            let fp = fingerprint(jobs, &specs);
            assert_eq!(fp, base, "jobs={jobs} diverged under faults={faults}");
        }
        let rerun = fingerprint(1, &specs);
        assert_eq!(rerun, base, "rerun diverged under faults={faults}");
    }

    set_override(None);
    simcore::trace::clear_enabled_override();
    adcl::audit::clear();
}
