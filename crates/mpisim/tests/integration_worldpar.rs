//! End-to-end determinism contract of the intra-world parallel engine.
//!
//! The conservative synchronizer promises *byte-identical* simulations for
//! any partition count. This test drives the full cross product
//!
//!   (serial vs `Fixed(2)`, `Fixed(4)`, `Fixed(8)`)
//! × (faults off / light / heavy)
//! × (trace off / on)
//!
//! through the splittable `NeighborExchange` workload on an 8-rank
//! round-robin `whale` world (8 distinct nodes, so every forced partition
//! count is honoured) and asserts that every observable agrees with the
//! serial run: outcome, event digest, per-rank finish times, event counts,
//! per-rank event counts, protocol actions, poll counts, fault tallies,
//! the recorded trace, and the deltas every run flushes into the global
//! metrics registry.
//!
//! Everything lives in one `#[test]` on purpose: registry deltas are
//! process-global, so concurrently running cases would blur into each
//! other's measurements.

use mpisim::{FaultConfig, NeighborExchange, NoiseConfig, ParMode, TraceSegment, World};
use netmodel::{Placement, Platform};
use std::collections::BTreeMap;

const NRANKS: usize = 8;
const ROUNDS: usize = 6;
const SMALL: usize = 2 * 1024;
const LARGE: usize = 1024 * 1024;

/// Counter values and histogram (count, sum) pairs from the registry.
/// Gauges are skipped (set-semantics, not deltas); histogram `max` is
/// skipped (a process-lifetime high-water mark, not additive).
fn registry_state() -> BTreeMap<String, (u64, u64)> {
    let mut out = BTreeMap::new();
    for (name, reading) in simcore::metrics::snapshot() {
        match reading {
            simcore::metrics::Reading::Counter(v) => {
                out.insert(name.to_string(), (v, 0));
            }
            simcore::metrics::Reading::Histogram { count, sum, .. } => {
                out.insert(name.to_string(), (count, sum));
            }
            simcore::metrics::Reading::Gauge(_) => {}
        }
    }
    out
}

fn registry_delta(
    before: &BTreeMap<String, (u64, u64)>,
    after: &BTreeMap<String, (u64, u64)>,
) -> BTreeMap<String, (u64, u64)> {
    after
        .iter()
        .map(|(k, &(c, s))| {
            let (c0, s0) = before.get(k).copied().unwrap_or((0, 0));
            (k.clone(), (c - c0, s - s0))
        })
        .collect()
}

/// Everything one case observes. Derives `PartialEq` so a whole case can
/// be compared against the serial reference in one assert.
#[derive(Debug, PartialEq)]
struct Observed {
    outcome: String,
    digest: u64,
    events: u64,
    rank_events: Vec<u64>,
    finish: Vec<simcore::SimTime>,
    protocol_actions: u64,
    polls: u64,
    fault_stats: mpisim::FaultStats,
    trace: Vec<TraceSegment>,
    metrics: BTreeMap<String, (u64, u64)>,
}

fn run_case(mode: ParMode, faults: &FaultConfig, traced: bool) -> Observed {
    let mut w = World::new(
        Platform::whale(),
        NRANKS,
        Placement::RoundRobin,
        NoiseConfig::none(),
    );
    w.set_faults(faults);
    w.set_par_mode(Some(mode));
    if traced {
        w.enable_trace();
    }
    let mut b = NeighborExchange::new(NRANKS, ROUNDS, SMALL, LARGE);
    let before = registry_state();
    let out = w.run(&mut b);
    let after = registry_state();
    if let ParMode::Fixed(n) = mode {
        let info = w.par_info().expect("forced Fixed(n) must partition");
        assert_eq!(info.nparts, n, "plan honoured the forced partition count");
        assert!(info.windows > 0);
        assert_eq!(
            info.per_part_events.iter().sum::<u64>(),
            w.events_processed(),
            "partition diagnostics must cover every dispatched event"
        );
    } else {
        assert!(w.par_info().is_none(), "serial runs report no partitions");
    }
    Observed {
        outcome: format!("{out:?}"),
        digest: w.event_digest(),
        events: w.events_processed(),
        rank_events: w.rank_event_counts(),
        finish: b.finish_times(),
        protocol_actions: w.protocol_actions(),
        polls: w.polls(),
        fault_stats: w.fault_stats(),
        trace: w.trace(),
        metrics: registry_delta(&before, &after),
    }
}

#[test]
fn partitioned_runs_are_byte_identical_to_serial_across_the_matrix() {
    let fault_cases: [(&str, FaultConfig); 3] = [
        ("off", FaultConfig::off()),
        ("light", FaultConfig::light(2015)),
        ("heavy", FaultConfig::heavy(7)),
    ];
    for (fname, faults) in &fault_cases {
        for traced in [false, true] {
            let serial = run_case(ParMode::Off, faults, traced);
            assert!(
                serial.events > 0,
                "faults={fname} traced={traced}: empty serial run"
            );
            if traced {
                assert!(
                    !serial.trace.is_empty(),
                    "faults={fname}: traced run recorded nothing"
                );
            }
            for nparts in [2usize, 4, 8] {
                let par = run_case(ParMode::Fixed(nparts), faults, traced);
                assert_eq!(
                    par, serial,
                    "faults={fname} traced={traced} parts={nparts}: \
                     partitioned run diverged from serial"
                );
            }
        }
    }
}
