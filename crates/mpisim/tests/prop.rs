//! Property-based tests: arbitrary communication patterns complete
//! without deadlock and respect physical lower bounds. Runs on the
//! in-tree `simcore::check` harness (no external crates).

use mpisim::{NoiseConfig, RankBehavior, RankId, RecvHandle, SendHandle, Step, Tag, World};
use netmodel::{Placement, Platform};
use simcore::check::{run_cases, Gen};
use simcore::SimTime;

/// Behaviour executing a precomputed message matrix: each rank sends to a
/// set of peers and receives whatever is addressed to it, then waits.
struct Exchange {
    /// sends[r] = list of (dst, bytes)
    sends: Vec<Vec<(usize, usize)>>,
    /// recvs[r] = list of (src, bytes) in the matching order
    recvs: Vec<Vec<(usize, usize)>>,
    posted: Vec<bool>,
    shandles: Vec<Vec<SendHandle>>,
    rhandles: Vec<Vec<RecvHandle>>,
    finish: Vec<SimTime>,
}

impl Exchange {
    fn new(n: usize, msgs: &[(usize, usize, usize)]) -> Exchange {
        let mut sends = vec![Vec::new(); n];
        let mut recvs = vec![Vec::new(); n];
        for &(src, dst, bytes) in msgs {
            sends[src].push((dst, bytes));
            recvs[dst].push((src, bytes));
        }
        Exchange {
            sends,
            recvs,
            posted: vec![false; n],
            shandles: vec![Vec::new(); n],
            rhandles: vec![Vec::new(); n],
            finish: vec![SimTime::ZERO; n],
        }
    }
}

impl RankBehavior for Exchange {
    fn step(&mut self, w: &mut World, r: RankId) -> Step {
        if !self.posted[r] {
            self.posted[r] = true;
            let mut t = w.rank_now(r);
            for &(dst, bytes) in &self.sends[r] {
                t += w.o_send(r, dst);
                let h = w.isend(r, dst, Tag(0), bytes, t);
                self.shandles[r].push(h);
            }
            for &(src, bytes) in &self.recvs[r] {
                t += w.o_recv(r, src);
                let h = w.irecv(r, src, Tag(0), bytes, t);
                self.rhandles[r].push(h);
            }
            return Step::Busy(t - w.rank_now(r));
        }
        let now = w.rank_now(r);
        w.poll(r, now);
        let done = self.shandles[r].iter().all(|&h| w.send_done(h, now))
            && self.rhandles[r].iter().all(|&h| w.recv_done(h, now));
        if done {
            self.finish[r] = now;
            Step::Done
        } else {
            Step::Block
        }
    }
}

/// Generate a random message list over `n` ranks. Messages between a given
/// ordered pair use FIFO matching, so any multiset is valid as long as the
/// per-pair send order equals the receive order — which `Exchange`
/// guarantees by construction.
fn gen_msgs(g: &mut Gen, n: usize) -> Vec<(usize, usize, usize)> {
    let count = g.usize_in(0, 60);
    let mut msgs = Vec::with_capacity(count);
    while msgs.len() < count {
        let a = g.usize_in(0, n);
        let b = g.usize_in(0, n);
        if a == b {
            continue; // no self sends
        }
        msgs.push((a, b, g.usize_in(1, 200_000)));
    }
    msgs
}

/// Any acyclic-free random exchange completes (no deadlock) on every
/// platform, because all receives are pre-posted before waiting.
#[test]
fn random_exchanges_complete() {
    run_cases("random_exchanges_complete", 48, |g| {
        let msgs = gen_msgs(g, 12);
        let platform = match g.usize_in(0, 3) {
            0 => Platform::whale(),
            1 => Platform::crill(),
            _ => Platform::whale_tcp(),
        };
        let mut w = World::new(platform, 12, Placement::Block, NoiseConfig::none());
        let mut b = Exchange::new(12, &msgs);
        let makespan = w.run(&mut b);
        assert!(makespan.is_ok(), "deadlock on {msgs:?}");
    });
}

/// Each receiver finishes no earlier than the pure serialization time
/// of its incoming bytes (a physical lower bound).
#[test]
fn completion_respects_bandwidth_bound() {
    run_cases("completion_respects_bandwidth_bound", 48, |g| {
        let msgs = gen_msgs(g, 8);
        let platform = Platform::whale();
        let inter = platform.inter.clone();
        let mut w = World::new(platform, 8, Placement::RoundRobin, NoiseConfig::none());
        let mut b = Exchange::new(8, &msgs);
        w.run(&mut b).expect("completes");
        for r in 0..8 {
            let incoming: usize = msgs
                .iter()
                .filter(|&&(_, d, _)| d == r)
                .map(|&(_, _, s)| s)
                .sum();
            if incoming > 0 {
                let bound = inter.serialize(incoming);
                assert!(
                    b.finish[r] >= bound,
                    "rank {r}: finished {} < bandwidth bound {bound}",
                    b.finish[r]
                );
            }
        }
    });
}

/// Simulated time is deterministic: the same exchange gives the same
/// makespan twice.
#[test]
fn exchange_deterministic() {
    run_cases("exchange_deterministic", 48, |g| {
        let msgs = gen_msgs(g, 10);
        let run = || {
            let mut w = World::new(Platform::crill(), 10, Placement::Block, NoiseConfig::none());
            let mut b = Exchange::new(10, &msgs);
            w.run(&mut b).expect("completes")
        };
        assert_eq!(run(), run());
    });
}

/// Message and byte accounting matches the plan.
#[test]
fn network_accounting() {
    run_cases("network_accounting", 48, |g| {
        let msgs = gen_msgs(g, 6);
        let mut w = World::new(
            Platform::whale(),
            6,
            Placement::RoundRobin,
            NoiseConfig::none(),
        );
        let mut b = Exchange::new(6, &msgs);
        w.run(&mut b).expect("completes");
        let total: u64 = msgs.iter().map(|&(_, _, s)| s as u64).sum();
        // Every payload crosses the network exactly once (control messages
        // are not counted as payload).
        assert_eq!(w.network().bytes_moved(), total);
    });
}
