//! The discrete-event world: rank scheduling, point-to-point messaging and
//! the progress engine — runnable serially or partitioned across threads.
//!
//! # Partitioned execution
//!
//! A world's ranks can be split into node-aligned partitions, each driven by
//! its own thread running the same event loop over a sub-`World` that owns
//! the partition's rank state, network shard, fault streams and event queue.
//! Cross-partition events travel through bounded SPSC rings and the threads
//! advance in lockstep *safe-time windows* of width `L`, the minimum LogGP
//! latency between ranks of different partitions (conservative "null
//! message"-free synchronization): an event processed at time `t` can only
//! schedule work on a foreign rank at `t + L` or later, so every event with
//! a timestamp inside the current window is already present in its owner's
//! queue when the window opens.
//!
//! Determinism is anchored in a *content-keyed* total order: every scheduled
//! event carries a `(time, (acting_rank, per-rank counter))` key instead of
//! a global insertion counter, so the serial and partitioned engines pop the
//! same per-rank event sequences — same state machines, same RNG draws, same
//! metrics deltas, same traces, byte for byte, for any partition count
//! ([`World::event_digest`] asserts it cheaply).

use crate::bufpool::{BufPool, Payload};
use crate::fault::{self, FaultConfig, FaultModel};
use crate::message::{DstMsg, Protocol, RecvReq, RecvState, SendMsg, SendState};
use crate::types::{NoiseConfig, RankId, RecvHandle, SendHandle, Tag};
use crate::worldpar::{self, ParMode, ParPlan, ParRunInfo};
use netmodel::{NetworkState, Placement, Platform};
use simcore::metrics::{self, Counter, Histogram};
use simcore::rng::NoiseModel;
use simcore::spsc::Spsc;
use simcore::trace::{self, WorldTrace};
use simcore::{EventQueue, SimTime};
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex, OnceLock};

// Registry-backed engine metrics. Handles are cached in `OnceLock`s so the
// registry lock is taken once per metric, not per update; the hot counts
// (events, polls, unexpected matches) accumulate in plain per-world fields
// and flush here once per `World::run` so parallel sweeps never contend on
// a shared cache line inside the event loop.
fn m_sim_events() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.sim_events"))
}

fn m_polls() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.polls"))
}

fn m_unexpected() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.unexpected_msgs"))
}

fn m_rdv_stalls() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.rdv_stalls"))
}

fn m_rdv_stall_ns() -> &'static Histogram {
    static M: OnceLock<&'static Histogram> = OnceLock::new();
    M.get_or_init(|| metrics::histogram("mpisim.rdv_stall_ns"))
}

// Fault-injection metrics. Touched only when a world actually carries a
// fault model, so a healthy process never even registers them (keeping the
// default metrics dump, and thus BENCH_engine.json, unchanged).
fn m_fault_drops() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.fault.drops"))
}

fn m_fault_dups() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.fault.dups"))
}

fn m_fault_dup_suppressed() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.fault.dup_suppressed"))
}

fn m_fault_retries() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.fault.retries"))
}

fn m_fault_timeouts() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.fault.timeouts"))
}

fn m_fault_backoff_ns() -> &'static Histogram {
    static M: OnceLock<&'static Histogram> = OnceLock::new();
    M.get_or_init(|| metrics::histogram("mpisim.fault.backoff_ns"))
}

/// Total simulator events processed by completed runs in this process (the
/// `mpisim.sim_events` registry counter; flushed at the end of each
/// [`World::run`], successful or deadlocked).
pub fn sim_events_total() -> u64 {
    m_sim_events().get()
}

/// What a rank does next, as decided by its [`RankBehavior`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Compute (application work) for the given duration. Compute noise is
    /// applied by the world. While computing, eager messages still flow, but
    /// the rank does not enter the progress engine.
    Compute(SimTime),
    /// Spend CPU time inside the library (posting messages, progress-call
    /// overhead). No noise is applied. The behaviour is stepped again
    /// immediately afterwards.
    Busy(SimTime),
    /// Block until *any* network event involving this rank fires, then step
    /// again (this is how `wait` polls: each event re-runs the behaviour,
    /// which re-checks completion).
    Block,
    /// This rank's program is finished.
    Done,
}

/// A program driving every rank of the simulation.
///
/// `step` is called whenever rank `rank` is runnable; the implementation
/// typically keeps per-rank program state and uses the [`World`] API
/// (`isend` / `irecv` / `poll` / completion queries) to do message passing.
pub trait RankBehavior {
    /// Decide the next action for `rank` at its current local time
    /// (`world.rank_now(rank)`).
    fn step(&mut self, world: &mut World, rank: RankId) -> Step;

    /// Split this behaviour into `nparts` independently steppable parts for
    /// the partitioned engine; `owner[rank]` names the partition that will
    /// drive `rank`. Part `p` is only ever stepped for ranks it owns.
    ///
    /// Returning `None` (the default) declares the behaviour unsplittable
    /// and makes the engine fall back to serial execution — existing
    /// behaviours keep working unchanged. Implementations typically share
    /// per-rank state behind an `Arc` of per-rank locks: partitions own
    /// disjoint rank sets, so the locks are never contended.
    fn split_par(
        &mut self,
        _nparts: usize,
        _owner: &[u32],
    ) -> Option<Vec<Box<dyn RankBehavior + Send>>> {
        None
    }

    /// Re-absorb the parts handed out by [`RankBehavior::split_par`] after a
    /// partitioned run. A no-op by default (shared-state splits need none).
    fn merge_par(&mut self, _parts: Vec<Box<dyn RankBehavior + Send>>) {}
}

/// Why a simulation run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No pending events but some ranks have not finished: every remaining
    /// rank is blocked on a message that can never arrive.
    Deadlock {
        /// Ranks still blocked.
        blocked: Vec<RankId>,
    },
    /// A send exhausted its retransmission budget under fault injection:
    /// the handshake (or eager delivery) was never acknowledged within the
    /// hard deadline. Only reachable when a fault model is armed — it
    /// surfaces as a typed error instead of a hung event loop.
    Timeout {
        /// Sending rank.
        src: RankId,
        /// Destination rank.
        dst: RankId,
        /// Message size.
        bytes: usize,
        /// Retransmissions performed before giving up.
        attempts: u32,
        /// Simulated time from the original post to the deadline.
        waited: SimTime,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(f, "simulation deadlock; blocked ranks: {blocked:?}")
            }
            SimError::Timeout {
                src,
                dst,
                bytes,
                attempts,
                waited,
            } => write!(
                f,
                "send timeout: {bytes}-byte message {src}->{dst} unacknowledged \
                 after {attempts} retries ({waited} since post)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-run fault-injection tallies (cumulative over a world's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Control/eager messages lost in flight.
    pub drops: u64,
    /// Fault-injected duplicate deliveries.
    pub dups: u64,
    /// Duplicate deliveries suppressed by envelope sequencing and
    /// state-machine guards.
    pub dup_suppressed: u64,
    /// Retransmissions performed by the timeout engine.
    pub retries: u64,
    /// Sends that exhausted their retry budget.
    pub timeouts: u64,
}

impl FaultStats {
    fn delta(&self, flushed: &FaultStats) -> FaultStats {
        FaultStats {
            drops: self.drops - flushed.drops,
            dups: self.dups - flushed.dups,
            dup_suppressed: self.dup_suppressed - flushed.dup_suppressed,
            retries: self.retries - flushed.retries,
            timeouts: self.timeouts - flushed.timeouts,
        }
    }

    fn accumulate(&mut self, other: &FaultStats) {
        self.drops += other.drops;
        self.dups += other.dups;
        self.dup_suppressed += other.dup_suppressed;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankStatus {
    /// Wake event pending (computing or about to start).
    Scheduled,
    /// Waiting for a network event.
    Blocked,
    /// Program finished.
    Done,
}

/// An event local to the target rank's own partition: indices resolve
/// against that rank's arenas.
#[derive(Debug, Clone, Copy)]
enum LocalEv {
    /// The source buffer of send `sidx` (on the target rank) drained.
    SendDrained(u32),
    /// Retransmission deadline for send `sidx` (fault injection only).
    RetryTimer(u32),
    /// Eager payload `dmid` finished draining into the target's receive
    /// engine (or its unexpected-match copy finished).
    DeliverEager(u32),
    /// Rendezvous payload `dmid` fully delivered at the target.
    DeliverData(u32),
}

/// A message crossing the wire between two ranks — the only event kind that
/// can cross partitions. Carries everything the destination needs so no
/// foreign rank state is ever read.
enum WireMsg {
    /// An eager payload's leading edge reached the destination.
    Eager {
        src: RankId,
        sidx: u32,
        seq: u64,
        tag: Tag,
        bytes: usize,
        posted_at: SimTime,
        /// Pre-drawn relative jitter for this transmission.
        jfrac: f64,
        /// Arrival fully priced at the source (intra-node copy).
        priced: bool,
        /// Earliest possible full delivery (sender-side floor).
        floor: SimTime,
        payload: Option<Payload>,
    },
    /// Rendezvous request-to-send (full arrival time; control messages
    /// bypass the payload queues).
    Rts {
        src: RankId,
        sidx: u32,
        seq: u64,
        tag: Tag,
        bytes: usize,
        posted_at: SimTime,
    },
    /// Rendezvous clear-to-send, answering send `sidx` on the target;
    /// carries the receiver-side record so the payload can route back.
    Cts { sidx: u32, dmid: u32 },
    /// A rendezvous payload's leading edge reached the destination.
    Data {
        dmid: u32,
        bytes: usize,
        /// When the transfer started (jitter anchor).
        start: SimTime,
        jfrac: f64,
        priced: bool,
        floor: SimTime,
        payload: Option<Payload>,
    },
}

/// A queued event. Kept `Copy`-small (the heap sifts entries by value on
/// every push/pop): wire-message bodies live in the world's `wire_pool`
/// arena and the event carries only the slot index. Rank ids are stored as
/// `u32` so the whole event packs into 12 bytes.
#[derive(Clone, Copy)]
enum Event {
    Wake(u32),
    Local(u32, LocalEv),
    Wire(u32, u32),
}

impl Event {
    fn wake(r: RankId) -> Event {
        Event::Wake(r as u32)
    }

    fn local(r: RankId, le: LocalEv) -> Event {
        Event::Local(r as u32, le)
    }

    /// The rank whose partition must process this event.
    fn target(&self) -> RankId {
        match self {
            Event::Wake(r) | Event::Local(r, _) | Event::Wire(r, _) => *r as RankId,
        }
    }
}

/// A wire message in flight between partitions: the body travels inline
/// (pool indices are meaningless across worlds) and is interned into the
/// destination partition's arena on ingest.
type Handoff = (SimTime, u64, RankId, WireMsg);

/// Shared routing table of one partitioned run: rank ownership plus an SPSC
/// ring per ordered partition pair (`outbox[from * nparts + to]`).
struct ParRoute {
    owner: Vec<u32>,
    nparts: usize,
    outbox: Vec<Spsc<Handoff>>,
}

/// Mix one event key into a rank's running digest (an FNV/xorshift hybrid;
/// order-sensitive, so identical sequences are required, not just identical
/// sets).
fn fold_digest(d: u64, t_ns: u64, subkey: u64) -> u64 {
    let h = d ^ t_ns.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let h = h.rotate_left(23) ^ subkey.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h.wrapping_mul(0x0000_0100_0000_01B3)
}

/// What a rank was doing during a [`TraceSegment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Application compute phase.
    Compute,
    /// CPU inside the communication library.
    Library,
    /// Blocked in a wait.
    Blocked,
}

impl SegmentKind {
    /// Label used in trace exports.
    pub fn label(self) -> &'static str {
        match self {
            SegmentKind::Compute => "compute",
            SegmentKind::Library => "library",
            SegmentKind::Blocked => "blocked",
        }
    }
}

/// One interval of a rank's timeline (recorded when tracing is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSegment {
    /// The rank.
    pub rank: RankId,
    /// What it was doing.
    pub kind: SegmentKind,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
}

/// Where a rank's (virtual) time went, for overlap analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankAccounting {
    /// Time spent in application compute phases.
    pub compute: SimTime,
    /// CPU time spent inside the communication library (posting, progress
    /// calls, copies) — the non-overlappable communication cost.
    pub library: SimTime,
    /// Time spent blocked in waits — communication *exposed* to the
    /// application.
    pub blocked: SimTime,
}

impl RankAccounting {
    /// Fraction of non-compute time (library + blocked) relative to the
    /// total; 0 means perfect overlap.
    pub fn exposed_fraction(&self) -> f64 {
        let total = (self.compute + self.library + self.blocked).as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        (self.library + self.blocked).as_secs_f64() / total
    }
}

/// Everything one rank owns. All messaging state a handler mutates lives on
/// the rank the event targets, which is what lets a partition take its
/// ranks wholesale and run without synchronization.
///
/// Channel maps are `BTreeMap`s rather than flat `nranks`-length vectors:
/// a rank only talks to a handful of peers, and per-rank flat vectors would
/// cost O(nranks²) memory — fatal at the 4096-rank scale the partitioned
/// engine exists for.
struct RankState {
    now: SimTime,
    status: RankStatus,
    noise: NoiseModel,
    acct: RankAccounting,
    /// When the current blocked interval began, if blocked.
    block_since: Option<SimTime>,
    /// Sends posted by this rank (handles index here).
    sends: Vec<SendMsg>,
    /// Receiver-side halves of messages addressed to this rank.
    dmsgs: Vec<DstMsg>,
    /// Receives posted by this rank (handles index here).
    recvs: Vec<RecvReq>,
    /// Next send sequence number per destination (sender side).
    send_seq: BTreeMap<RankId, u64>,
    /// Next envelope sequence number expected per source (MPI
    /// non-overtaking: envelopes enter matching in send order).
    env_next: BTreeMap<RankId, u64>,
    /// Envelopes that arrived out of order: `(src, seq) -> dmid`.
    env_buf: BTreeMap<(RankId, u64), u32>,
    /// Wire-level arrival dedup: every `(src, seq)` whose first surviving
    /// transmission has arrived, with the receiver-side record it created.
    /// Duplicate transmissions (fault dups, retransmissions racing their
    /// original) are swallowed here.
    inbound: BTreeMap<(RankId, u64), u32>,
    /// Posted, unmatched receive requests (ids into `recvs`), post order.
    posted_recvs: Vec<u32>,
    /// Unmatched arrived messages (ids into `dmsgs`), arrival order.
    unexpected: Vec<u32>,
    /// Matched rendezvous messages awaiting a CTS from this rank (dst side).
    pending_cts: Vec<u32>,
    /// Sends whose CTS arrived, awaiting payload injection (src side).
    pending_data_start: Vec<u32>,
    /// Per-rank event-key counter: the deterministic tie-breaker replacing
    /// the queue's global insertion counter.
    key_seq: u64,
    /// Running digest of every event key dispatched to this rank.
    digest: u64,
    /// Events dispatched to this rank.
    ev_count: u64,
    /// Timeline segments (only filled when segment tracing is on).
    tseg: Vec<TraceSegment>,
}

impl RankState {
    fn fresh(r: usize, noise: &NoiseConfig) -> RankState {
        RankState {
            now: SimTime::ZERO,
            status: RankStatus::Scheduled,
            noise: if noise.is_none() {
                NoiseModel::none()
            } else {
                NoiseModel::for_rank(
                    noise.seed,
                    r,
                    noise.jitter,
                    noise.spike_prob,
                    noise.spike_scale,
                )
            },
            acct: RankAccounting::default(),
            block_since: None,
            sends: Vec::new(),
            dmsgs: Vec::new(),
            recvs: Vec::new(),
            send_seq: BTreeMap::new(),
            env_next: BTreeMap::new(),
            env_buf: BTreeMap::new(),
            inbound: BTreeMap::new(),
            posted_recvs: Vec::new(),
            unexpected: Vec::new(),
            pending_cts: Vec::new(),
            pending_data_start: Vec::new(),
            key_seq: 0,
            digest: 0,
            ev_count: 0,
            tseg: Vec::new(),
        }
    }

    /// A cheap stand-in for a rank owned by another partition (~400 bytes,
    /// never touched by the partition holding it).
    fn placeholder() -> RankState {
        let mut rs = RankState::fresh(0, &NoiseConfig::none());
        rs.status = RankStatus::Done;
        rs
    }

    fn reset(&mut self, r: usize, noise: &NoiseConfig) {
        let tseg = std::mem::take(&mut self.tseg);
        *self = RankState::fresh(r, noise);
        // Keep the segment buffer's allocation warm across reuse.
        self.tseg = tseg;
        self.tseg.clear();
    }
}

/// The simulated machine: ranks, network, in-flight messages and the event
/// queue. In a partitioned run, each worker thread drives a sub-`World`
/// holding the moved-in state of its owned ranks; `part`/`route` identify
/// the partition, and the parent world re-absorbs everything afterwards.
pub struct World {
    net: NetworkState,
    ranks: Vec<RankState>,
    events: EventQueue<Event>,
    /// Scratch buffers reused across [`World::poll`] calls so the progress
    /// engine does not allocate per invocation.
    scratch_cts: Vec<u32>,
    scratch_starts: Vec<u32>,
    /// Arena of in-flight wire-message bodies (including payload handles),
    /// indexed by `Event::Wire`'s slot. Slots are recycled via `wire_free`,
    /// so steady-state runs never grow the arena past the peak number of
    /// simultaneously in-flight messages.
    wire_pool: Vec<WireMsg>,
    wire_free: Vec<u32>,
    next_tag: u64,
    polls: u64,
    protocol_actions: u64,
    /// Polls already flushed to the metrics registry (delta tracking).
    polls_flushed: u64,
    /// Unexpected-message arrivals this run, flushed at the end of `run`.
    unexpected_msgs: u64,
    /// Rendezvous handshake stalls this run, flushed at the end of `run` —
    /// the shared registry counter/histogram must never be touched on the
    /// poll hot path (parallel sweeps would serialize on its cache line).
    rdv_stalls: u64,
    rdv_stall_ns: metrics::LocalHistogram,
    /// Fault-retry backoff intervals this run (same flush scheme).
    fault_backoff_ns: metrics::LocalHistogram,
    /// `events.popped()` at the last [`World::reset`]: the queue's lifetime
    /// counter survives reuse, so per-world accounting is a delta from here.
    popped_at_reset: u64,
    /// Record per-rank timeline segments into `RankState::tseg`?
    trace_on: bool,
    /// Span/instant timeline for the observability layer (`NBC_TRACE`);
    /// `None` when tracing is off, making every instrumentation site a
    /// single branch. Published to the global collector on drop.
    otrace: Option<Box<WorldTrace>>,
    /// Payload buffer pool shared by every rank of this world. The pool is
    /// thread-safe, so partition sub-worlds share it by handle clone.
    pool: BufPool,
    /// Fault-injection model; `None` (the default) makes every injection
    /// site a single branch and guarantees byte-identical behaviour to a
    /// build without fault support. Carries one RNG stream per rank, so a
    /// partition's clone only ever advances its owned ranks' streams.
    fault: Option<Box<FaultModel>>,
    /// First (by event key) retransmission-budget exhaustion observed. The
    /// run keeps draining — both engines must do identical work — and
    /// `outcome` surfaces the error that the *serial* order hits first.
    timed_out: Option<(u128, SimError)>,
    /// Key of the event currently being dispatched.
    cur_key: u128,
    /// Cumulative fault tallies, plus the portion already flushed to the
    /// metrics registry (same delta scheme as `polls_flushed`).
    faults: FaultStats,
    faults_flushed: FaultStats,
    /// Per-world partitioning override (None: follow `NBC_WORLD_PAR` / the
    /// process override). Survives `reset` — it describes how to run, not
    /// what was run.
    par_mode: Option<ParMode>,
    /// Which partition this sub-world is (0 and `route: None` for a
    /// serial/parent world).
    part: u32,
    route: Option<Arc<ParRoute>>,
    /// Diagnostics of the last partitioned run (None after a serial run).
    last_par: Option<ParRunInfo>,
}

impl World {
    /// Create a world of `nranks` ranks on `platform`.
    pub fn new(
        platform: Platform,
        nranks: usize,
        placement: Placement,
        noise: NoiseConfig,
    ) -> Self {
        let ranks = (0..nranks).map(|r| RankState::fresh(r, &noise)).collect();
        let fault_model =
            FaultModel::new(&fault::current(), &platform.fault_profile(), nranks).map(Box::new);
        World {
            net: NetworkState::new(platform, nranks, placement),
            ranks,
            events: EventQueue::with_capacity(nranks * 4),
            scratch_cts: Vec::new(),
            scratch_starts: Vec::new(),
            wire_pool: Vec::new(),
            wire_free: Vec::new(),
            next_tag: 0,
            polls: 0,
            protocol_actions: 0,
            polls_flushed: 0,
            unexpected_msgs: 0,
            rdv_stalls: 0,
            rdv_stall_ns: metrics::LocalHistogram::new(),
            fault_backoff_ns: metrics::LocalHistogram::new(),
            popped_at_reset: 0,
            trace_on: false,
            otrace: trace::enabled().then(|| Box::new(WorldTrace::new(nranks))),
            pool: BufPool::new(),
            fault: fault_model,
            timed_out: None,
            cur_key: 0,
            faults: FaultStats::default(),
            faults_flushed: FaultStats::default(),
            par_mode: None,
            part: 0,
            route: None,
            last_par: None,
        }
    }

    /// Replace this world's fault model with one built from `cfg` (scaled
    /// by the platform's fault profile). Overrides whatever `NBC_FAULTS` /
    /// `fault::set_override` chose at construction; call before `run`.
    /// Tests use this to inject faults without touching process-global
    /// state.
    pub fn set_faults(&mut self, cfg: &FaultConfig) {
        let nranks = self.ranks.len();
        self.fault =
            FaultModel::new(cfg, &self.net.platform().fault_profile(), nranks).map(Box::new);
    }

    /// Is a fault model armed on this world?
    pub fn faults_active(&self) -> bool {
        self.fault.is_some()
    }

    /// Cumulative fault-injection tallies for this world.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
    }

    /// Override how this world parallelizes its event loop: `Some(mode)`
    /// wins over the process override and `NBC_WORLD_PAR`; `None` restores
    /// environment resolution. Survives [`World::reset`]. The partition
    /// count only changes *how* the simulation executes — results are
    /// byte-identical for every setting.
    pub fn set_par_mode(&mut self, mode: Option<ParMode>) {
        self.par_mode = mode;
    }

    /// The per-world partitioning override, if any.
    pub fn par_mode(&self) -> Option<ParMode> {
        self.par_mode
    }

    /// Diagnostics of the last `run` if it executed partitioned (`None`
    /// after a serial run).
    pub fn par_info(&self) -> Option<&ParRunInfo> {
        self.last_par.as_ref()
    }

    /// Order-sensitive digest of every event dispatched so far, folded
    /// per-rank then combined in rank order. Two runs that processed the
    /// same per-rank event sequences — the partitioned-engine contract —
    /// produce the same digest; any ordering or content divergence shows up
    /// with overwhelming probability.
    pub fn event_digest(&self) -> u64 {
        let mut d = 0xcbf2_9ce4_8422_2325u64;
        for rs in &self.ranks {
            d = fold_digest(d, rs.digest, rs.ev_count);
        }
        d
    }

    /// Events dispatched per rank (imbalance diagnostics for the
    /// partition planner and the `--profile` report).
    pub fn rank_event_counts(&self) -> Vec<u64> {
        self.ranks.iter().map(|r| r.ev_count).collect()
    }

    /// A handle to this world's payload buffer pool (cheap clone).
    pub fn payload_pool(&self) -> BufPool {
        self.pool.clone()
    }

    /// Pre-warm the payload pool: shelve enough slabs of `bytes`'s size
    /// class that the first `count` concurrent acquires of a following run
    /// hit warm memory. Call outside any timed region — this is the
    /// amortization hook that keeps `allocs_per_event` at zero for worker
    /// threads whose worlds would otherwise fault their slabs in during
    /// the first measured pass.
    pub fn prewarm_payloads(&self, bytes: usize, count: usize) {
        self.pool.prewarm(bytes, count);
    }

    /// Events applied by this world so far (the per-run analogue of the
    /// process-wide [`sim_events_total`] — exact even when other worlds run
    /// concurrently on other threads). Partitioned runs fold every
    /// partition's count back in, so the value is engine-independent.
    pub fn events_processed(&self) -> u64 {
        self.events.popped() - self.popped_at_reset
    }

    /// Publish the observability timeline to the global trace collector now
    /// (instead of waiting for `Drop`). Used by the world-reuse pool:
    /// cached worlds live in thread-locals whose destructors may never run
    /// on pool threads, so traces must be pushed out at release time. A
    /// no-op when tracing is off or the trace was already published.
    pub fn publish_trace(&mut self) {
        if let Some(t) = self.otrace.take() {
            trace::publish(*t);
        }
    }

    /// Reset this world for a fresh simulation on the *same* platform,
    /// rank count and placement, keeping every allocation (rank vectors,
    /// event-queue heap, arena vectors, payload-pool slabs) warm.
    ///
    /// The post-state is observationally identical to
    /// `World::new(platform, nranks, placement, noise)` with the same
    /// process-global fault/trace configuration: noise models are re-seeded
    /// from `noise`, the fault model is rebuilt from [`fault::current`],
    /// and all logical state (clocks, tags, sequence numbers, in-flight
    /// messages, event digests, partition diagnostics) is zeroed. Only
    /// allocation capacity and recycled payload slab contents differ —
    /// neither is observable in simulated time or simulation output, so
    /// results stay byte-identical whether a world is fresh or reused, and
    /// regardless of the partition count of any previous run.
    pub fn reset(&mut self, noise: NoiseConfig) {
        self.publish_trace();
        let nranks = self.ranks.len();
        for (r, rs) in self.ranks.iter_mut().enumerate() {
            // Dropping in-flight messages releases their payload handles,
            // which recycles the slabs into `self.pool` — the reuse win.
            rs.reset(r, &noise);
        }
        self.net.reset();
        self.events.reset();
        self.popped_at_reset = self.events.popped();
        self.scratch_cts.clear();
        self.scratch_starts.clear();
        // Dropping undelivered wire bodies releases their payload handles
        // into the pool, like the per-rank arenas above.
        self.wire_pool.clear();
        self.wire_free.clear();
        self.next_tag = 0;
        self.polls = 0;
        self.protocol_actions = 0;
        self.polls_flushed = 0;
        self.unexpected_msgs = 0;
        self.rdv_stalls = 0;
        self.rdv_stall_ns = metrics::LocalHistogram::new();
        self.fault_backoff_ns = metrics::LocalHistogram::new();
        self.trace_on = false;
        self.otrace = trace::enabled().then(|| Box::new(WorldTrace::new(nranks)));
        self.fault = FaultModel::new(
            &fault::current(),
            &self.net.platform().fault_profile(),
            nranks,
        )
        .map(Box::new);
        self.timed_out = None;
        self.cur_key = 0;
        self.faults = FaultStats::default();
        self.faults_flushed = FaultStats::default();
        // `par_mode` intentionally survives: it configures the engine, not
        // the run. Partition-local residue does not.
        self.part = 0;
        self.route = None;
        self.last_par = None;
    }

    /// Start recording per-rank timeline segments (compute / library /
    /// blocked intervals). Costs memory proportional to the number of
    /// phases; off by default.
    pub fn enable_trace(&mut self) {
        self.trace_on = true;
    }

    /// The recorded timeline, flattened rank-major (empty unless
    /// [`World::enable_trace`] was called before the run). Within one rank,
    /// segments are in chronological order.
    pub fn trace(&self) -> Vec<TraceSegment> {
        let total = self.ranks.iter().map(|r| r.tseg.len()).sum();
        let mut out = Vec::with_capacity(total);
        for rs in &self.ranks {
            out.extend_from_slice(&rs.tseg);
        }
        out
    }

    /// Is the observability timeline (`NBC_TRACE`) being recorded? Callers
    /// with expensive-to-compute span attributes can skip the work when off.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.otrace.is_some()
    }

    /// Name this run in the exported timeline (the Perfetto process name).
    /// No-op when tracing is off.
    pub fn set_trace_label(&mut self, label: &str) {
        if let Some(t) = self.otrace.as_mut() {
            t.label = label.to_string();
        }
    }

    /// Record a span on the observability timeline (no-op when off). Used
    /// by the schedule executor for round and staging spans; all times are
    /// simulated, so recording never perturbs the run.
    #[inline]
    pub fn trace_span(
        &mut self,
        rank: RankId,
        name: &'static str,
        cat: &'static str,
        start: SimTime,
        end: SimTime,
        args: [(&'static str, u64); 2],
    ) {
        if let Some(t) = self.otrace.as_mut() {
            t.span(rank, name, cat, start, end, args);
        }
    }

    /// Record an instant event on the observability timeline (no-op when
    /// off).
    #[inline]
    pub fn trace_instant(
        &mut self,
        rank: RankId,
        name: &'static str,
        cat: &'static str,
        ts: SimTime,
        args: [(&'static str, u64); 2],
    ) {
        if let Some(t) = self.otrace.as_mut() {
            t.instant(rank, name, cat, ts, args);
        }
    }

    fn record(&mut self, rank: RankId, kind: SegmentKind, start: SimTime, end: SimTime) {
        if end > start {
            if self.trace_on {
                self.ranks[rank].tseg.push(TraceSegment {
                    rank,
                    kind,
                    start,
                    end,
                });
            }
            if let Some(t) = self.otrace.as_mut() {
                t.span(rank, kind.label(), "rank", start, end, trace::NO_ARGS);
            }
        }
    }

    /// Write the recorded timeline in the Chrome trace-event JSON format
    /// (loadable in `chrome://tracing` or Perfetto; timestamps in
    /// microseconds of *virtual* time).
    pub fn write_chrome_trace(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        writeln!(w, "[")?;
        let segs = self.trace();
        for (i, s) in segs.iter().enumerate() {
            let comma = if i + 1 == segs.len() { "" } else { "," };
            writeln!(
                w,
                "  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}}}{}",
                s.kind.label(),
                s.rank,
                s.start.as_micros_f64(),
                (s.end - s.start).as_micros_f64(),
                comma
            )?;
        }
        writeln!(w, "]")
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// The platform description.
    pub fn platform(&self) -> &Platform {
        self.net.platform()
    }

    /// The network state (topology queries, statistics).
    pub fn network(&self) -> &NetworkState {
        &self.net
    }

    /// Local clock of `rank`.
    pub fn rank_now(&self, rank: RankId) -> SimTime {
        self.ranks[rank].now
    }

    /// Allocate a fresh tag for a collective-operation instance. All ranks
    /// creating operations in the same order observe the same tag sequence.
    pub fn alloc_tag(&mut self) -> Tag {
        let t = Tag(self.next_tag);
        self.next_tag += 1;
        t
    }

    /// Total progress-engine invocations so far.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Total rendezvous protocol actions (CTS sends + payload starts).
    pub fn protocol_actions(&self) -> u64 {
        self.protocol_actions
    }

    /// Time accounting for `rank` (compute / library / blocked).
    pub fn accounting(&self, rank: RankId) -> RankAccounting {
        self.ranks[rank].acct
    }

    /// Aggregate accounting over all ranks.
    pub fn accounting_total(&self) -> RankAccounting {
        let mut total = RankAccounting::default();
        for r in &self.ranks {
            total.compute += r.acct.compute;
            total.library += r.acct.library;
            total.blocked += r.acct.blocked;
        }
        total
    }

    /// CPU overhead for posting one send to `dst`.
    pub fn o_send(&self, src: RankId, dst: RankId) -> SimTime {
        self.net.params(src, dst).o_send
    }

    /// CPU overhead for posting one receive from `src`.
    pub fn o_recv(&self, dst: RankId, src: RankId) -> SimTime {
        self.net.params(dst, src).o_recv
    }

    // ------------------------------------------------------------------
    // Partition plumbing
    // ------------------------------------------------------------------

    /// Does this world's partition own `rank`? Serial/parent worlds own
    /// everything.
    #[inline]
    fn owns(&self, rank: RankId) -> bool {
        match &self.route {
            None => true,
            Some(rt) => rt.owner[rank] as usize == self.part as usize,
        }
    }

    /// Next content-derived tie-break key for an event scheduled by
    /// `acting`'s handler. The sequence depends only on the order of
    /// `acting`'s own events — identical in serial and partitioned runs —
    /// so ties in `t` break the same way under every engine.
    #[inline]
    fn next_subkey(&mut self, acting: RankId) -> u64 {
        let ks = &mut self.ranks[acting].key_seq;
        debug_assert!(*ks < 1 << 40, "per-rank key counter overflow");
        let subkey = ((acting as u64) << 40) | *ks;
        *ks += 1;
        subkey
    }

    /// Intern a wire-message body, returning its arena slot.
    fn intern_wire(&mut self, wm: WireMsg) -> u32 {
        match self.wire_free.pop() {
            Some(i) => {
                self.wire_pool[i as usize] = wm;
                i
            }
            None => {
                debug_assert!(self.wire_pool.len() < u32::MAX as usize);
                self.wire_pool.push(wm);
                (self.wire_pool.len() - 1) as u32
            }
        }
    }

    /// Move a wire-message body out of its arena slot and recycle the slot.
    fn take_wire(&mut self, idx: u32) -> WireMsg {
        self.wire_free.push(idx);
        std::mem::replace(
            &mut self.wire_pool[idx as usize],
            WireMsg::Cts { sidx: 0, dmid: 0 },
        )
    }

    /// Schedule a rank-local event (`Wake`/`Local`) at `t`. These always
    /// target `acting`'s own partition; only wire messages cross (via
    /// [`World::push_wire`]).
    fn push_ev(&mut self, acting: RankId, t: SimTime, ev: Event) {
        let subkey = self.next_subkey(acting);
        debug_assert!(self.owns(ev.target()), "only wire events cross partitions");
        self.events.push_at(t, subkey, ev);
    }

    /// Schedule wire message `wm` for `dst` at `t`, keyed by `acting`'s
    /// counter. A message whose destination lives in another partition is
    /// handed off through the route's SPSC ring instead of the local queue;
    /// locally-targeted bodies are interned so the heap entry stays small.
    fn push_wire(&mut self, acting: RankId, t: SimTime, dst: RankId, wm: WireMsg) {
        let subkey = self.next_subkey(acting);
        if self.owns(dst) {
            let idx = self.intern_wire(wm);
            self.events.push_at(t, subkey, Event::Wire(dst as u32, idx));
        } else {
            let rt = self
                .route
                .as_ref()
                .expect("cross-partition push without route");
            let to = rt.owner[dst] as usize;
            rt.outbox[self.part as usize * rt.nparts + to].push((t, subkey, dst, wm));
        }
    }

    /// Record a retransmission-budget exhaustion, keeping the one the
    /// serial event order reaches first (smallest event key).
    fn record_timeout(&mut self, err: SimError) {
        match &self.timed_out {
            Some((k, _)) if *k <= self.cur_key => {}
            _ => self.timed_out = Some((self.cur_key, err)),
        }
    }

    // ------------------------------------------------------------------
    // Fault helpers
    // ------------------------------------------------------------------

    /// Draw the per-transmission fault decisions for one control/eager
    /// transmission performed by `acting` (always the rank whose handler is
    /// running, so draws come from its own stream in the same order under
    /// every engine). Returns `None` if the transmission is dropped,
    /// otherwise `Some((jitter_frac, duplicate_lag))`. With no fault model
    /// armed this is `Some((0.0, None))` and consumes no randomness.
    fn fault_tx(&mut self, acting: RankId) -> Option<(f64, Option<SimTime>)> {
        let Some(f) = self.fault.as_mut() else {
            return Some((0.0, None));
        };
        if f.drop_event(acting) {
            self.faults.drops += 1;
            return None;
        }
        let jfrac = f.jitter_frac(acting);
        if f.duplicate_event(acting) {
            let lag = f.dup_lag(acting);
            self.faults.dups += 1;
            Some((jfrac, Some(lag)))
        } else {
            Some((jfrac, None))
        }
    }

    /// Extra delivery delay (proportional jitter + brownout) for an arrival
    /// at `arrival` of a transmission anchored at `posted`. Pure — no RNG.
    fn extra(&self, jfrac: f64, posted: SimTime, arrival: SimTime) -> SimTime {
        match self.fault.as_ref() {
            Some(f) => f.extra_delay(jfrac, posted, arrival),
            None => SimTime::ZERO,
        }
    }

    /// Schedule the retransmission deadline for `src`'s send `sidx` given
    /// that `attempts` transmissions have happened so far. No-op without a
    /// fault model.
    fn schedule_retry(&mut self, src: RankId, sidx: u32, now: SimTime, attempts: u32) {
        let Some(f) = self.fault.as_ref() else {
            return;
        };
        let deadline = f.retry_deadline(now, attempts);
        self.push_ev(src, deadline, Event::local(src, LocalEv::RetryTimer(sidx)));
    }

    // ------------------------------------------------------------------
    // Point-to-point API (used by the collective-schedule executor)
    // ------------------------------------------------------------------

    /// Post a non-blocking send from `src` to `dst` at local time `at`.
    ///
    /// The *caller* is responsible for charging `o_send` CPU time; `at`
    /// should already include it.
    pub fn isend(
        &mut self,
        src: RankId,
        dst: RankId,
        tag: Tag,
        bytes: usize,
        at: SimTime,
    ) -> SendHandle {
        self.isend_payload(src, dst, tag, bytes, at, None)
    }

    /// [`World::isend`] carrying a payload handle. The handle rides on the
    /// in-flight message — eager delivery and rendezvous injection move it,
    /// never copy it — and transfers to the matched receive at completion
    /// ([`World::take_recv_payload`]). Timing is identical with or without
    /// a payload: only `bytes` feeds the network model.
    pub fn isend_payload(
        &mut self,
        src: RankId,
        dst: RankId,
        tag: Tag,
        bytes: usize,
        at: SimTime,
        payload: Option<Payload>,
    ) -> SendHandle {
        assert_ne!(src, dst, "self-sends are expressed as schedule copies");
        debug_assert!(self.owns(src), "send posted by a foreign partition");
        let seq = {
            let c = self.ranks[src].send_seq.entry(dst).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let sidx = self.ranks[src].sends.len() as u32;
        if self.net.is_eager(src, dst, bytes) {
            let plan = self.net.tx_plan(at, src, dst, bytes);
            let mut m = SendMsg::new(dst, tag, bytes, Protocol::Eager, seq, at);
            // The sender's buffer drains locally whether or not the network
            // later loses the payload.
            match self.fault_tx(src) {
                None => {
                    // Lost in flight: the payload stays on the send so the
                    // retransmission engine can resend it.
                    m.payload = payload;
                    self.ranks[src].sends.push(m);
                    self.push_ev(
                        src,
                        plan.src_drain,
                        Event::local(src, LocalEv::SendDrained(sidx)),
                    );
                    self.trace_instant(src, "drop", "fault", at, [("mid", sidx as u64), ("", 0)]);
                    self.schedule_retry(src, sidx, at, 0);
                }
                Some((jfrac, dup)) => {
                    m.best_arrival = Some(plan.floor + self.extra(jfrac, at, plan.floor));
                    // Healthy path: move the handle into the wire event
                    // (O(1)). With faults armed, each transmission carries a
                    // clone and the send keeps the original for retries.
                    let wire_payload = if self.fault.is_some() {
                        m.payload = payload;
                        m.payload.clone()
                    } else {
                        payload
                    };
                    self.ranks[src].sends.push(m);
                    self.push_ev(
                        src,
                        plan.src_drain,
                        Event::local(src, LocalEv::SendDrained(sidx)),
                    );
                    self.push_wire(
                        src,
                        plan.wire_at,
                        dst,
                        WireMsg::Eager {
                            src,
                            sidx,
                            seq,
                            tag,
                            bytes,
                            posted_at: at,
                            jfrac,
                            priced: plan.priced,
                            floor: plan.floor,
                            payload: wire_payload,
                        },
                    );
                    if let Some(lag) = dup {
                        // The duplicate trails its original on the same
                        // channel; the receiver's arrival dedup swallows it.
                        self.push_wire(
                            src,
                            plan.wire_at + lag,
                            dst,
                            WireMsg::Eager {
                                src,
                                sidx,
                                seq,
                                tag,
                                bytes,
                                posted_at: at,
                                jfrac,
                                priced: plan.priced,
                                floor: plan.floor,
                                payload: None,
                            },
                        );
                    }
                    if self.fault.is_some() {
                        self.schedule_retry(src, sidx, at, 0);
                    }
                }
            }
        } else {
            let rts = self.net.ctrl_arrival(at, src, dst);
            let mut m = SendMsg::new(dst, tag, bytes, Protocol::Rendezvous, seq, at);
            m.payload = payload;
            self.ranks[src].sends.push(m);
            match self.fault_tx(src) {
                None => {
                    self.trace_instant(src, "drop", "fault", at, [("mid", sidx as u64), ("", 0)]);
                }
                Some((jfrac, dup)) => {
                    let arr = rts + self.extra(jfrac, at, rts);
                    self.push_wire(
                        src,
                        arr,
                        dst,
                        WireMsg::Rts {
                            src,
                            sidx,
                            seq,
                            tag,
                            bytes,
                            posted_at: at,
                        },
                    );
                    if let Some(lag) = dup {
                        self.push_wire(
                            src,
                            arr + lag,
                            dst,
                            WireMsg::Rts {
                                src,
                                sidx,
                                seq,
                                tag,
                                bytes,
                                posted_at: at,
                            },
                        );
                    }
                }
            }
            // A rendezvous send always arms its deadline when faults are
            // active: it guards against a lost RTS *and* a lost CTS.
            self.schedule_retry(src, sidx, at, 0);
        }
        SendHandle {
            rank: src as u32,
            idx: sidx,
        }
    }

    /// Post a non-blocking receive on `rank` for a message from `src`.
    pub fn irecv(
        &mut self,
        rank: RankId,
        src: RankId,
        tag: Tag,
        bytes: usize,
        at: SimTime,
    ) -> RecvHandle {
        debug_assert!(self.owns(rank), "receive posted by a foreign partition");
        let rid = self.ranks[rank].recvs.len() as u32;
        self.ranks[rank].recvs.push(RecvReq::new(src, tag, bytes));
        // Try to match an already-arrived (unexpected) message, FIFO.
        let pos = self.ranks[rank].unexpected.iter().position(|&m| {
            let dm = &self.ranks[rank].dmsgs[m as usize];
            dm.src == src && dm.tag == tag
        });
        if let Some(pos) = pos {
            let dmid = self.ranks[rank].unexpected.remove(pos);
            if self.otrace.is_some() {
                // The message sat in the unexpected queue from its arrival
                // until this receive was posted: a match-queue stall.
                let dm = &self.ranks[rank].dmsgs[dmid as usize];
                let arrived = dm.data_arrival.or(dm.rts_arrival).unwrap_or(at);
                let args = [("src", dm.src as u64), ("bytes", dm.bytes as u64)];
                self.trace_span(rank, "unexpected", "match", arrived, at, args);
            }
            self.match_pair(rank, dmid, rid, at, true);
        } else {
            self.ranks[rank].posted_recvs.push(rid);
        }
        RecvHandle {
            rank: rank as u32,
            idx: rid,
        }
    }

    /// Complete receive `rid` on `rank` at time `t`: set its state and move
    /// the payload handle off the matched message (an O(1) pointer move —
    /// this is the zero-copy delivery step for both eager and rendezvous
    /// paths).
    fn complete_recv(&mut self, rank: RankId, rid: u32, t: SimTime) {
        let rs = &mut self.ranks[rank];
        rs.recvs[rid as usize].state = RecvState::Complete(t);
        // A receive can be completed twice on the eager fast path (match_pair
        // completes it, then the delivery event confirms); only move the
        // handle when the message still holds one so the second call is a
        // no-op.
        if let Some(dmid) = rs.recvs[rid as usize].msg {
            if let Some(p) = rs.dmsgs[dmid as usize].payload.take() {
                rs.recvs[rid as usize].payload = Some(p);
            }
        }
    }

    /// Take the delivered payload of a completed receive, if the sender
    /// staged one (and it has not been taken yet). Dropping the returned
    /// handle recycles the buffer into the sender's pool once all clones
    /// are gone.
    pub fn take_recv_payload(&mut self, h: RecvHandle) -> Option<Payload> {
        self.ranks[h.rank as usize].recvs[h.idx as usize]
            .payload
            .take()
    }

    /// Bind message `dmid` to receive `rid` (both on `rank`). `on_post` is
    /// true when matching happens at receive-post time (the message was
    /// unexpected).
    fn match_pair(&mut self, rank: RankId, dmid: u32, rid: u32, now: SimTime, on_post: bool) {
        let rs = &mut self.ranks[rank];
        debug_assert_eq!(
            rs.dmsgs[dmid as usize].bytes, rs.recvs[rid as usize].bytes,
            "size mismatch in match"
        );
        rs.dmsgs[dmid as usize].matched_recv = Some(rid);
        rs.recvs[rid as usize].msg = Some(dmid);
        rs.recvs[rid as usize].state = RecvState::Matched;
        match rs.dmsgs[dmid as usize].protocol {
            Protocol::Eager => {
                if let Some(arr) = rs.dmsgs[dmid as usize].data_arrival {
                    if on_post {
                        // Payload already buffered: completion costs a copy
                        // out of the bounce buffer, finishing slightly after
                        // `now`. Schedule a delivery event so a subsequent
                        // wait is woken when the copy is done.
                        let src = rs.dmsgs[dmid as usize].src;
                        let bytes = rs.dmsgs[dmid as usize].bytes;
                        let copy = self.net.params(src, rank).unexpected_copy(bytes);
                        let done = now.max(arr) + copy;
                        self.push_ev(rank, done, Event::local(rank, LocalEv::DeliverData(dmid)));
                    } else {
                        self.complete_recv(rank, rid, arr);
                    }
                }
                // else: completion set when the delivery event fires.
            }
            Protocol::Rendezvous => {
                // Receiver must answer the RTS from inside the library.
                if rs.dmsgs[dmid as usize].rts_arrival.is_some()
                    && !rs.dmsgs[dmid as usize].cts_sent
                {
                    rs.pending_cts.push(dmid);
                }
            }
        }
    }

    /// Drive protocol progress for `rank` at local time `now`: answer
    /// pending RTSes with CTSes and start payload transfers for sends whose
    /// CTS has arrived. This models the MPI library's progress engine — the
    /// CPU-bound part of rendezvous that only runs while the application is
    /// inside the library. Returns the number of protocol actions taken.
    pub fn poll(&mut self, rank: RankId, now: SimTime) -> usize {
        self.polls += 1;
        let mut actions = 0usize;

        // Phase 1: answer RTSes. Swap the pending list out so we can call
        // &mut self helpers while iterating.
        let mut cts = std::mem::take(&mut self.scratch_cts);
        std::mem::swap(&mut cts, &mut self.ranks[rank].pending_cts);
        for &dmid in &cts {
            let dm = &self.ranks[rank].dmsgs[dmid as usize];
            if dm.cts_sent {
                continue;
            }
            let src = dm.src;
            let bytes = dm.bytes;
            let rts = dm.rts_arrival;
            self.ranks[rank].dmsgs[dmid as usize].cts_sent = true;
            if let Some(rts) = rts {
                if now > rts {
                    // The handshake sat unanswered while this rank was busy:
                    // that gap is exactly the rendezvous overhead the paper's
                    // auto-tuner reshapes schedules to hide.
                    let stall = now - rts;
                    self.rdv_stalls += 1;
                    self.rdv_stall_ns.record(stall.as_nanos());
                    let args = [("src", src as u64), ("bytes", bytes as u64)];
                    self.trace_span(rank, "rdv_stall", "msg", rts, now, args);
                }
            }
            let arr = self.net.ctrl_arrival(now, rank, src);
            match self.fault_tx(rank) {
                Some((jfrac, dup)) => {
                    let at0 = arr + self.extra(jfrac, now, arr);
                    let sidx = self.ranks[rank].dmsgs[dmid as usize].sidx;
                    self.push_wire(rank, at0, src, WireMsg::Cts { sidx, dmid });
                    if let Some(lag) = dup {
                        self.push_wire(rank, at0 + lag, src, WireMsg::Cts { sidx, dmid });
                    }
                }
                None => {
                    self.trace_instant(rank, "drop", "fault", now, [("mid", dmid as u64), ("", 0)]);
                }
            }
            actions += 1;
        }
        cts.clear();
        self.scratch_cts = cts;

        // Phase 2: act on CTSes — start the payload transfer.
        let mut starts = std::mem::take(&mut self.scratch_starts);
        std::mem::swap(&mut starts, &mut self.ranks[rank].pending_data_start);
        for &sidx in &starts {
            let sm = &self.ranks[rank].sends[sidx as usize];
            if !matches!(sm.send_state, SendState::CtsArrived(_)) {
                continue;
            }
            let dst = sm.dst;
            let bytes = sm.bytes;
            let dmid = sm.peer_dmid.expect("CTS recorded without peer dmid");
            let plan = self.net.tx_plan(now, rank, dst, bytes);
            self.ranks[rank].sends[sidx as usize].send_state = SendState::DataInFlight;
            self.push_ev(
                rank,
                plan.src_drain,
                Event::local(rank, LocalEv::SendDrained(sidx)),
            );
            // Rendezvous data rides a handshake-confirmed channel: it is
            // never dropped or duplicated, only jittered.
            let jfrac = match self.fault.as_mut() {
                Some(f) => f.jitter_frac(rank),
                None => 0.0,
            };
            let payload = self.ranks[rank].sends[sidx as usize].payload.take();
            self.push_wire(
                rank,
                plan.wire_at,
                dst,
                WireMsg::Data {
                    dmid,
                    bytes,
                    start: now,
                    jfrac,
                    priced: plan.priced,
                    floor: plan.floor,
                    payload,
                },
            );
            actions += 1;
        }
        starts.clear();
        self.scratch_starts = starts;

        self.protocol_actions += actions as u64;
        if actions > 0 {
            self.trace_instant(
                rank,
                "progress",
                "prog",
                now,
                [("actions", actions as u64), ("", 0)],
            );
        }
        actions
    }

    /// True once the sender may reuse its buffer (observed at `now`).
    pub fn send_done(&self, h: SendHandle, now: SimTime) -> bool {
        self.send_complete_time(h).is_some_and(|t| t <= now)
    }

    /// Local completion time of a send, if drained.
    pub fn send_complete_time(&self, h: SendHandle) -> Option<SimTime> {
        self.ranks[h.rank as usize].sends[h.idx as usize].send_drained()
    }

    /// True once the receive's payload has fully arrived (observed at
    /// `now`).
    pub fn recv_done(&self, h: RecvHandle, now: SimTime) -> bool {
        self.recv_complete_time(h).is_some_and(|t| t <= now)
    }

    /// Completion time of a receive, if delivered.
    pub fn recv_complete_time(&self, h: RecvHandle) -> Option<SimTime> {
        self.ranks[h.rank as usize].recvs[h.idx as usize].complete_at()
    }

    // ------------------------------------------------------------------
    // Event application
    // ------------------------------------------------------------------

    /// Emit the lifecycle span of message `dmid` on `rank`'s track.
    fn trace_msg(
        &mut self,
        rank: RankId,
        name: &'static str,
        dmid: u32,
        start: SimTime,
        end: SimTime,
    ) {
        if self.otrace.is_none() {
            return;
        }
        let dm = &self.ranks[rank].dmsgs[dmid as usize];
        let args = [("src", dm.src as u64), ("bytes", dm.bytes as u64)];
        self.trace_span(rank, name, "msg", start, end, args);
    }

    /// Feed a newly arrived envelope into the per-channel reorder buffer.
    /// Envelopes reach the matching logic strictly in per-(src, dst)
    /// sequence order, which both enforces MPI's non-overtaking rule and
    /// suppresses duplicated envelopes that survived the arrival dedup
    /// (e.g. a retransmission of an envelope that already matched).
    fn enqueue_envelope(&mut self, rank: RankId, dmid: u32, t: SimTime) {
        let (src, seq) = {
            let dm = &self.ranks[rank].dmsgs[dmid as usize];
            (dm.src, dm.seq)
        };
        let next = self.ranks[rank].env_next.get(&src).copied().unwrap_or(0);
        if seq < next {
            self.faults.dup_suppressed += 1;
            return;
        }
        if self.ranks[rank].env_buf.contains_key(&(src, seq)) {
            self.faults.dup_suppressed += 1;
            return;
        }
        self.ranks[rank].env_buf.insert((src, seq), dmid);
        let mut next = next;
        while let Some(d) = self.ranks[rank].env_buf.remove(&(src, next)) {
            next += 1;
            self.ranks[rank].env_next.insert(src, next);
            self.deliver_envelope(rank, d, t);
        }
    }

    /// Deliver one in-order envelope to the matching logic.
    fn deliver_envelope(&mut self, rank: RankId, dmid: u32, t: SimTime) {
        let (src, tag, protocol) = {
            let dm = &self.ranks[rank].dmsgs[dmid as usize];
            (dm.src, dm.tag, dm.protocol)
        };
        let pos = self.ranks[rank].posted_recvs.iter().position(|&rid| {
            let r = &self.ranks[rank].recvs[rid as usize];
            r.src == src && r.tag == tag
        });
        let _ = protocol;
        match pos {
            Some(pos) => {
                let rid = self.ranks[rank].posted_recvs.remove(pos);
                // For eager, match_pair completes the receive (the payload
                // always precedes its envelope here); rendezvous queues the
                // CTS answer for the next poll.
                self.match_pair(rank, dmid, rid, t, false);
            }
            None => {
                self.unexpected_msgs += 1;
                self.ranks[rank].unexpected.push(dmid);
            }
        }
    }

    /// Apply a wire event targeting `rank` at time `t`.
    fn apply_wire(&mut self, rank: RankId, wm: WireMsg, t: SimTime) {
        match wm {
            WireMsg::Eager {
                src,
                sidx,
                seq,
                tag,
                bytes,
                posted_at,
                jfrac,
                priced,
                floor,
                payload,
            } => {
                if self.ranks[rank].inbound.contains_key(&(src, seq)) {
                    // Duplicate or retransmission of a message we already
                    // accepted: swallow it before it touches rx queues.
                    self.faults.dup_suppressed += 1;
                    return;
                }
                let dmid = self.ranks[rank].dmsgs.len() as u32;
                self.ranks[rank].dmsgs.push(DstMsg {
                    src,
                    sidx,
                    seq,
                    tag,
                    bytes,
                    protocol: Protocol::Eager,
                    posted_at,
                    matched_recv: None,
                    data_arrival: None,
                    rts_arrival: None,
                    cts_sent: false,
                    payload,
                });
                self.ranks[rank].inbound.insert((src, seq), dmid);
                let delivery0 = if priced {
                    floor
                } else {
                    self.net.rx_reserve(t, rank, bytes).drain.max(floor)
                };
                let arr = delivery0 + self.extra(jfrac, posted_at, delivery0);
                self.push_ev(rank, arr, Event::local(rank, LocalEv::DeliverEager(dmid)));
            }
            WireMsg::Rts {
                src,
                sidx,
                seq,
                tag,
                bytes,
                posted_at,
            } => {
                if let Some(&dmid) = self.ranks[rank].inbound.get(&(src, seq)) {
                    self.faults.dup_suppressed += 1;
                    // A retransmitted RTS doubles as CTS-loss recovery: if we
                    // already matched and answered but the payload never
                    // started, answer again.
                    let dm = &self.ranks[rank].dmsgs[dmid as usize];
                    if dm.matched_recv.is_some() && dm.cts_sent && dm.data_arrival.is_none() {
                        self.ranks[rank].dmsgs[dmid as usize].cts_sent = false;
                        if !self.ranks[rank].pending_cts.contains(&dmid) {
                            self.ranks[rank].pending_cts.push(dmid);
                        }
                    }
                    return;
                }
                let dmid = self.ranks[rank].dmsgs.len() as u32;
                self.ranks[rank].dmsgs.push(DstMsg {
                    src,
                    sidx,
                    seq,
                    tag,
                    bytes,
                    protocol: Protocol::Rendezvous,
                    posted_at,
                    matched_recv: None,
                    data_arrival: None,
                    rts_arrival: Some(t),
                    cts_sent: false,
                    payload: None,
                });
                self.ranks[rank].inbound.insert((src, seq), dmid);
                self.trace_msg(rank, "rts", dmid, posted_at, t);
                self.enqueue_envelope(rank, dmid, t);
            }
            WireMsg::Cts { sidx, dmid } => {
                let sm = &self.ranks[rank].sends[sidx as usize];
                if !matches!(sm.send_state, SendState::Posted) {
                    // Duplicate CTS, or one racing a retransmitted RTS's
                    // answer: the transfer is already underway.
                    self.faults.dup_suppressed += 1;
                    return;
                }
                let dst = sm.dst;
                self.ranks[rank].sends[sidx as usize].send_state = SendState::CtsArrived(t);
                self.ranks[rank].sends[sidx as usize].peer_dmid = Some(dmid);
                self.trace_instant(rank, "cts", "msg", t, [("dst", dst as u64), ("", 0)]);
                self.ranks[rank].pending_data_start.push(sidx);
            }
            WireMsg::Data {
                dmid,
                bytes,
                start,
                jfrac,
                priced,
                floor,
                payload,
            } => {
                let _ = bytes;
                let delivery0 = if priced {
                    floor
                } else {
                    self.net
                        .rx_reserve(t, rank, self.ranks[rank].dmsgs[dmid as usize].bytes)
                        .drain
                        .max(floor)
                };
                let arr = delivery0 + self.extra(jfrac, start, delivery0);
                self.ranks[rank].dmsgs[dmid as usize].payload = payload;
                self.push_ev(rank, arr, Event::local(rank, LocalEv::DeliverData(dmid)));
            }
        }
    }

    /// Apply a rank-local event on `rank` at time `t`.
    fn apply_local(&mut self, rank: RankId, le: LocalEv, t: SimTime) {
        match le {
            LocalEv::SendDrained(sidx) => {
                self.ranks[rank].sends[sidx as usize].send_state = SendState::Drained(t);
            }
            LocalEv::DeliverEager(dmid) => {
                self.ranks[rank].dmsgs[dmid as usize].data_arrival = Some(t);
                let posted_at = self.ranks[rank].dmsgs[dmid as usize].posted_at;
                self.trace_msg(rank, "eager", dmid, posted_at, t);
                self.enqueue_envelope(rank, dmid, t);
            }
            LocalEv::DeliverData(dmid) => {
                self.ranks[rank].dmsgs[dmid as usize].data_arrival = Some(t);
                if self.ranks[rank].dmsgs[dmid as usize].protocol == Protocol::Rendezvous {
                    let posted_at = self.ranks[rank].dmsgs[dmid as usize].posted_at;
                    self.trace_msg(rank, "rdv", dmid, posted_at, t);
                }
                let rid = self.ranks[rank].dmsgs[dmid as usize]
                    .matched_recv
                    .expect("payload delivery for unmatched message");
                self.complete_recv(rank, rid, t);
            }
            LocalEv::RetryTimer(sidx) => self.apply_retry_timer(rank, sidx, t),
        }
    }

    /// Retransmission deadline for `rank`'s send `sidx` fired at `t`.
    fn apply_retry_timer(&mut self, rank: RankId, sidx: u32, t: SimTime) {
        let sm = &self.ranks[rank].sends[sidx as usize];
        let acked = match sm.protocol {
            // Eager: sender-side lower bound on arrival — if the earliest
            // possible arrival of any surviving copy is in the past, the
            // message is through.
            Protocol::Eager => sm.best_arrival.is_some_and(|a| a <= t),
            // Rendezvous: any CTS activity means the RTS got through.
            Protocol::Rendezvous => !matches!(sm.send_state, SendState::Posted),
        };
        if acked {
            return;
        }
        let attempts = sm.attempts;
        let max_retries = self.fault.as_ref().map_or(0, |f| f.max_retries());
        if attempts >= max_retries {
            let dst = sm.dst;
            let bytes = sm.bytes;
            let posted_at = sm.posted_at;
            self.faults.timeouts += 1;
            self.record_timeout(SimError::Timeout {
                src: rank,
                dst,
                bytes,
                attempts,
                waited: t.saturating_sub(posted_at),
            });
            return;
        }
        let (dst, bytes, tag, seq, posted_at) = (sm.dst, sm.bytes, sm.tag, sm.seq, sm.posted_at);
        let protocol = sm.protocol;
        self.ranks[rank].sends[sidx as usize].attempts = attempts + 1;
        self.faults.retries += 1;
        if let Some(f) = self.fault.as_ref() {
            self.fault_backoff_ns.record(f.backoff(attempts).as_nanos());
        }
        self.trace_instant(
            rank,
            "retry",
            "fault",
            t,
            [("attempt", (attempts + 1) as u64), ("mid", sidx as u64)],
        );
        match protocol {
            Protocol::Rendezvous => {
                let base = self.net.ctrl_arrival(t, rank, dst);
                match self.fault_tx(rank) {
                    Some((jfrac, dup)) => {
                        let at0 = base + self.extra(jfrac, t, base);
                        self.push_wire(
                            rank,
                            at0,
                            dst,
                            WireMsg::Rts {
                                src: rank,
                                sidx,
                                seq,
                                tag,
                                bytes,
                                posted_at,
                            },
                        );
                        if let Some(lag) = dup {
                            self.push_wire(
                                rank,
                                at0 + lag,
                                dst,
                                WireMsg::Rts {
                                    src: rank,
                                    sidx,
                                    seq,
                                    tag,
                                    bytes,
                                    posted_at,
                                },
                            );
                        }
                    }
                    None => {
                        self.trace_instant(
                            rank,
                            "drop",
                            "fault",
                            t,
                            [("mid", sidx as u64), ("", 0)],
                        );
                    }
                }
            }
            Protocol::Eager => {
                let plan = self.net.tx_plan(t, rank, dst, bytes);
                match self.fault_tx(rank) {
                    Some((jfrac, dup)) => {
                        let cand = plan.floor + self.extra(jfrac, posted_at, plan.floor);
                        let sm = &mut self.ranks[rank].sends[sidx as usize];
                        sm.best_arrival = Some(sm.best_arrival.map_or(cand, |b| b.min(cand)));
                        let payload = sm.payload.clone();
                        self.push_wire(
                            rank,
                            plan.wire_at,
                            dst,
                            WireMsg::Eager {
                                src: rank,
                                sidx,
                                seq,
                                tag,
                                bytes,
                                posted_at,
                                jfrac,
                                priced: plan.priced,
                                floor: plan.floor,
                                payload,
                            },
                        );
                        if let Some(lag) = dup {
                            self.push_wire(
                                rank,
                                plan.wire_at + lag,
                                dst,
                                WireMsg::Eager {
                                    src: rank,
                                    sidx,
                                    seq,
                                    tag,
                                    bytes,
                                    posted_at,
                                    jfrac,
                                    priced: plan.priced,
                                    floor: plan.floor,
                                    payload: None,
                                },
                            );
                        }
                    }
                    None => {
                        self.trace_instant(
                            rank,
                            "drop",
                            "fault",
                            t,
                            [("mid", sidx as u64), ("", 0)],
                        );
                    }
                }
            }
        }
        self.schedule_retry(rank, sidx, t, attempts + 1);
    }

    // ------------------------------------------------------------------
    // Engine
    // ------------------------------------------------------------------

    /// Dispatch one popped event into its handler. The event's key is
    /// folded into the *target* rank's digest first, so the digest
    /// witnesses the dispatch order itself, not just the handler effects.
    fn dispatch(&mut self, behavior: &mut dyn RankBehavior, t: SimTime, subkey: u64, ev: Event) {
        // `cur_key` feeds `record_timeout`'s serial-order tie-break, which
        // only fault-armed runs can reach — skip the store on healthy runs.
        if self.fault.is_some() {
            self.cur_key = ((t.as_nanos() as u128) << 64) | subkey as u128;
        }
        let tgt = ev.target();
        let rs = &mut self.ranks[tgt];
        rs.digest = fold_digest(rs.digest, t.as_nanos(), subkey);
        rs.ev_count += 1;
        match ev {
            Event::Wake(r) => {
                let r = r as RankId;
                self.ranks[r].now = self.ranks[r].now.max(t);
                self.step_rank(behavior, r);
            }
            Event::Local(r, le) => {
                let r = r as RankId;
                self.apply_local(r, le, t);
                self.react(behavior, r, t);
            }
            Event::Wire(r, widx) => {
                let r = r as RankId;
                let wm = self.take_wire(widx);
                self.apply_wire(r, wm, t);
                self.react(behavior, r, t);
            }
        }
    }

    /// A message/local event touched `rank`: if it is blocked inside a
    /// wait, account the blocked interval and step it again.
    fn react(&mut self, behavior: &mut dyn RankBehavior, rank: RankId, t: SimTime) {
        if self.ranks[rank].status != RankStatus::Blocked {
            return;
        }
        self.ranks[rank].now = self.ranks[rank].now.max(t);
        if let Some(since) = self.ranks[rank].block_since.take() {
            let until = self.ranks[rank].now;
            self.ranks[rank].acct.blocked += until.saturating_sub(since);
            self.record(rank, SegmentKind::Blocked, since, until);
        }
        self.step_rank(behavior, rank);
    }

    fn step_rank(&mut self, behavior: &mut dyn RankBehavior, r: RankId) {
        loop {
            match behavior.step(self, r) {
                Step::Compute(d) => {
                    let factor = self.ranks[r].noise.factor();
                    let mut d = d.scale(factor);
                    // Straggler injection: fault-designated slow ranks pay
                    // a constant compute multiplier. Guarded so the healthy
                    // path never re-rounds durations through `scale`.
                    if let Some(f) = self.fault.as_ref() {
                        let rf = f.rank_factor(r);
                        if rf != 1.0 {
                            d = d.scale(rf);
                        }
                    }
                    self.ranks[r].acct.compute += d;
                    let wake = self.ranks[r].now + d;
                    self.record(r, SegmentKind::Compute, self.ranks[r].now, wake);
                    self.push_ev(r, wake, Event::wake(r));
                    self.ranks[r].status = RankStatus::Scheduled;
                    // Local clock advances when the wake event fires.
                    self.ranks[r].now = wake;
                    return;
                }
                Step::Busy(c) => {
                    let start = self.ranks[r].now;
                    self.ranks[r].now += c;
                    self.ranks[r].acct.library += c;
                    self.record(r, SegmentKind::Library, start, self.ranks[r].now);
                    // Immediately step again.
                }
                Step::Block => {
                    self.ranks[r].status = RankStatus::Blocked;
                    if self.ranks[r].block_since.is_none() {
                        self.ranks[r].block_since = Some(self.ranks[r].now);
                    }
                    return;
                }
                Step::Done => {
                    self.ranks[r].status = RankStatus::Done;
                    return;
                }
            }
        }
    }

    /// Seed the initial wake of every rank this world owns.
    fn seed_wakes(&mut self) {
        for r in 0..self.ranks.len() {
            if !self.owns(r) {
                continue;
            }
            self.ranks[r].status = RankStatus::Scheduled;
            let now = self.ranks[r].now;
            self.push_ev(r, now, Event::wake(r));
        }
    }

    /// Resolve the result of a fully drained run. Both engines drain the
    /// queue completely, so the outcome is a pure function of final state:
    /// a recorded timeout (first in serial event order) wins, then a
    /// deadlock if any rank never finished, else the makespan.
    fn outcome(&mut self) -> Result<SimTime, SimError> {
        if let Some((_, err)) = self.timed_out.take() {
            return Err(err);
        }
        if self.ranks.iter().any(|r| r.status != RankStatus::Done) {
            let blocked: Vec<RankId> = self
                .ranks
                .iter()
                .enumerate()
                .filter(|(_, s)| s.status == RankStatus::Blocked)
                .map(|(r, _)| r)
                .collect();
            return Err(SimError::Deadlock { blocked });
        }
        Ok(self
            .ranks
            .iter()
            .map(|r| r.now)
            .max()
            .unwrap_or(SimTime::ZERO))
    }

    /// Run `behavior` to completion. Returns the largest rank local time
    /// (the makespan).
    ///
    /// The engine is chosen per run: if partitioning is profitable (see
    /// [`crate::worldpar`]) *and* the behaviour supports
    /// [`RankBehavior::split_par`], the ranks are partitioned across
    /// threads under conservative LogGP-lookahead synchronization;
    /// otherwise a single thread drains the queue. The results — event
    /// digests, completion times, metrics deltas, traces, error outcomes —
    /// are byte-identical either way.
    pub fn run(&mut self, behavior: &mut dyn RankBehavior) -> Result<SimTime, SimError> {
        let popped_at_start = self.events.popped();
        let out = match worldpar::plan(self) {
            Some(plan) => match behavior.split_par(plan.nparts, &plan.owner) {
                Some(parts) => self.run_partitioned(behavior, &plan, parts),
                None => {
                    self.last_par = None;
                    self.run_serial(behavior)
                }
            },
            None => {
                self.last_par = None;
                self.run_serial(behavior)
            }
        };
        // Flush this run's per-world tallies to the registry in one shot —
        // the hot loop itself never touches shared cache lines.
        m_sim_events().add(self.events.popped() - popped_at_start);
        m_polls().add(self.polls - self.polls_flushed);
        self.polls_flushed = self.polls;
        m_unexpected().add(std::mem::take(&mut self.unexpected_msgs));
        m_rdv_stalls().add(std::mem::take(&mut self.rdv_stalls));
        m_rdv_stall_ns().absorb(&mut self.rdv_stall_ns);
        // Fault tallies flush only when a model is armed, so a healthy
        // process never registers the fault metrics at all.
        if self.fault.is_some() {
            let d = self.faults.delta(&self.faults_flushed);
            m_fault_drops().add(d.drops);
            m_fault_dups().add(d.dups);
            m_fault_dup_suppressed().add(d.dup_suppressed);
            m_fault_retries().add(d.retries);
            m_fault_timeouts().add(d.timeouts);
            self.faults_flushed = self.faults;
            m_fault_backoff_ns().absorb(&mut self.fault_backoff_ns);
        }
        out
    }

    fn run_serial(&mut self, behavior: &mut dyn RankBehavior) -> Result<SimTime, SimError> {
        self.seed_wakes();
        while let Some((t, k, ev)) = self.events.pop_keyed() {
            self.dispatch(behavior, t, k, ev);
        }
        self.outcome()
    }

    fn run_partitioned(
        &mut self,
        behavior: &mut dyn RankBehavior,
        plan: &ParPlan,
        mut parts: Vec<Box<dyn RankBehavior + Send>>,
    ) -> Result<SimTime, SimError> {
        let nparts = plan.nparts;
        assert_eq!(parts.len(), nparts, "split_par returned wrong part count");
        let route = Arc::new(ParRoute {
            owner: plan.owner.clone(),
            nparts,
            outbox: (0..nparts * nparts).map(|_| Spsc::new()).collect(),
        });
        let mut subs: Vec<World> = (0..nparts as u32)
            .map(|p| self.extract_subworld(plan, &route, p))
            .collect();
        let lookahead_ns = plan.lookahead.as_nanos();
        let next_min: Vec<AtomicU64> = (0..nparts).map(|_| AtomicU64::new(0)).collect();
        let barrier = Barrier::new(nparts);
        let panicked = AtomicBool::new(false);
        let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let windows = std::thread::scope(|s| {
            let mut pairs = subs.iter_mut().zip(parts.iter_mut());
            let (w0, b0) = pairs.next().expect("at least one partition");
            for (w, b) in pairs {
                let barrier = &barrier;
                let next_min = &next_min[..];
                let panicked = &panicked;
                let panic_slot = &panic_slot;
                s.spawn(move || {
                    window_loop(
                        w,
                        &mut **b,
                        barrier,
                        next_min,
                        lookahead_ns,
                        panicked,
                        panic_slot,
                    );
                });
            }
            // Partition 0 runs on the calling thread; its window count
            // equals everyone's (all partitions leave the loop together).
            window_loop(
                w0,
                &mut **b0,
                &barrier,
                &next_min,
                lookahead_ns,
                &panicked,
                &panic_slot,
            )
        });
        if let Some(p) = panic_slot.into_inner().unwrap() {
            // A partition panicked: drop the sub-worlds (the parent world
            // is left unusable, as after any panic mid-`run`) and re-raise
            // on the caller's thread.
            drop(subs);
            std::panic::resume_unwind(p);
        }
        let mut per_part_events = Vec::with_capacity(nparts);
        let mut per_part_max_depth = Vec::with_capacity(nparts);
        for (p, sub) in subs.into_iter().enumerate() {
            let (popped, max_depth) = self.absorb_subworld(sub, plan, p as u32);
            per_part_events.push(popped);
            per_part_max_depth.push(max_depth);
        }
        behavior.merge_par(parts);
        self.last_par = Some(ParRunInfo {
            nparts,
            lookahead: plan.lookahead,
            windows,
            per_part_events,
            per_part_max_depth,
        });
        self.outcome()
    }

    /// Move partition `part`'s slice of this world — its ranks' state, its
    /// network shard, its fault streams — into a sub-`World` that a worker
    /// thread can drive without any locking.
    fn extract_subworld(&mut self, plan: &ParPlan, route: &Arc<ParRoute>, part: u32) -> World {
        let nranks = self.ranks.len();
        let mut ranks = Vec::with_capacity(nranks);
        for r in 0..nranks {
            if plan.owner[r] == part {
                ranks.push(std::mem::replace(
                    &mut self.ranks[r],
                    RankState::placeholder(),
                ));
            } else {
                ranks.push(RankState::placeholder());
            }
        }
        World {
            net: self.net.extract_shard(&plan.owner, part),
            ranks,
            events: EventQueue::with_capacity(nranks * 4),
            scratch_cts: Vec::new(),
            scratch_starts: Vec::new(),
            wire_pool: Vec::new(),
            wire_free: Vec::new(),
            next_tag: self.next_tag,
            polls: 0,
            protocol_actions: 0,
            polls_flushed: 0,
            unexpected_msgs: 0,
            rdv_stalls: 0,
            rdv_stall_ns: metrics::LocalHistogram::new(),
            fault_backoff_ns: metrics::LocalHistogram::new(),
            popped_at_reset: 0,
            trace_on: self.trace_on,
            otrace: self
                .otrace
                .is_some()
                .then(|| Box::new(WorldTrace::new(nranks))),
            pool: self.pool.clone(),
            fault: self.fault.clone(),
            timed_out: None,
            cur_key: 0,
            faults: FaultStats::default(),
            faults_flushed: FaultStats::default(),
            par_mode: Some(ParMode::Off),
            part,
            route: Some(route.clone()),
            last_par: None,
        }
    }

    /// Fold a finished partition sub-world back into the parent. Returns
    /// `(events popped, peak queue depth)` for the diagnostics report.
    fn absorb_subworld(&mut self, mut sub: World, plan: &ParPlan, part: u32) -> (u64, u64) {
        let nranks = self.ranks.len();
        for r in 0..nranks {
            if plan.owner[r] != part {
                continue;
            }
            self.ranks[r] = std::mem::replace(&mut sub.ranks[r], RankState::placeholder());
            if let Some(f) = self.fault.as_mut() {
                // Take back the advanced RNG stream so a later serial run
                // (or reset-free rerun) continues where the partition left
                // off, exactly as a serial run would have.
                f.adopt_rank_stream(sub.fault.as_ref().expect("sub-world lost fault model"), r);
            }
        }
        let shard = std::mem::replace(
            &mut sub.net,
            NetworkState::new(self.net.platform().clone(), 0, Placement::Block),
        );
        self.net.absorb_shard(shard, &plan.owner, part);
        self.polls += sub.polls;
        self.protocol_actions += sub.protocol_actions;
        self.unexpected_msgs += sub.unexpected_msgs;
        self.rdv_stalls += sub.rdv_stalls;
        self.rdv_stall_ns.merge(&sub.rdv_stall_ns);
        self.fault_backoff_ns.merge(&sub.fault_backoff_ns);
        self.faults.accumulate(&sub.faults);
        self.next_tag = self.next_tag.max(sub.next_tag);
        let popped = sub.events.popped();
        self.events.add_popped(popped);
        let max_depth = sub.events.max_len() as u64;
        if let Some(ot) = sub.otrace.take() {
            if let Some(mine) = self.otrace.as_mut() {
                mine.absorb(*ot);
            }
        }
        if let Some((k, err)) = sub.timed_out.take() {
            match &self.timed_out {
                Some((k0, _)) if *k0 <= k => {}
                _ => self.timed_out = Some((k, err)),
            }
        }
        (popped, max_depth)
    }
}

/// One partition's conservative event loop.
///
/// Windows alternate between a *sync* step and an *execute* step, separated
/// by barriers. In the sync step every partition drains its inbound SPSC
/// rings, then publishes the timestamp of its earliest pending event; the
/// global minimum `wmin` defines the window `[wmin, wmin + lookahead)`. In
/// the execute step each partition processes exactly its events inside the
/// window. Every cross-partition event lands at least `lookahead` (the
/// minimum LogGP wire latency between cross-partition node pairs) after the
/// handler that produced it, so nothing can arrive *inside* the current
/// window — each partition's per-rank dispatch order is provably the serial
/// order.
///
/// Returns the number of windows executed. A panic in any partition is
/// parked in `panic_slot`, every partition exits at the next barrier, and
/// the caller re-raises.
fn window_loop(
    w: &mut World,
    behavior: &mut dyn RankBehavior,
    barrier: &Barrier,
    next_min: &[AtomicU64],
    lookahead_ns: u64,
    panicked: &AtomicBool,
    panic_slot: &Mutex<Option<Box<dyn Any + Send>>>,
) -> u64 {
    let mut windows = 0u64;
    w.seed_wakes();
    let route = w.route.clone().expect("partitioned world without route");
    let me = w.part as usize;
    let nparts = route.nparts;
    let mut inbox: Vec<Handoff> = Vec::new();
    loop {
        // Sync step: collect cross-partition arrivals produced during the
        // previous window (their producers all passed the last barrier).
        for sp in 0..nparts {
            if sp != me {
                route.outbox[sp * nparts + me].drain_into(&mut inbox);
            }
        }
        for (t, k, r, wm) in inbox.drain(..) {
            let idx = w.intern_wire(wm);
            w.events.push_at(t, k, Event::Wire(r as u32, idx));
        }
        let head = w.events.peek_key().map_or(u64::MAX, |k| (k >> 64) as u64);
        next_min[me].store(head, Ordering::Release);
        barrier.wait();
        if panicked.load(Ordering::Acquire) {
            return windows;
        }
        let wmin = next_min
            .iter()
            .map(|a| a.load(Ordering::Acquire))
            .min()
            .unwrap_or(u64::MAX);
        if wmin == u64::MAX {
            // No partition has anything left and nothing is in flight:
            // the simulation is fully drained everywhere.
            return windows;
        }
        windows += 1;
        // Execute step: everything strictly before wmin + lookahead is
        // safe — no in-flight or future cross-partition event can land
        // there.
        let w_end = wmin.saturating_add(lookahead_ns);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            while let Some(k) = w.events.peek_key() {
                if (k >> 64) as u64 >= w_end {
                    break;
                }
                let (t, sk, ev) = w.events.pop_keyed().expect("peeked event vanished");
                w.dispatch(behavior, t, sk, ev);
            }
        }));
        if let Err(p) = res {
            panicked.store(true, Ordering::Release);
            let mut slot = panic_slot.lock().unwrap();
            slot.get_or_insert(p);
        }
        barrier.wait();
        if panicked.load(Ordering::Acquire) {
            return windows;
        }
    }
}

impl Drop for World {
    fn drop(&mut self) {
        // Publish the observability timeline when the world goes away (not
        // at the end of `run`: a world can run multiple times, and a
        // deadlocked or panicked run should still surface its trace).
        if let Some(t) = self.otrace.take() {
            trace::publish(*t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(nranks: usize) -> World {
        World::new(
            Platform::whale(),
            nranks,
            Placement::RoundRobin,
            NoiseConfig::none(),
        )
    }

    /// A tiny per-rank script interpreter for tests.
    enum Ins {
        Compute(SimTime),
        Send { dst: RankId, bytes: usize },
        Recv { src: RankId, bytes: usize },
        WaitAll,
    }

    struct Script {
        prog: Vec<Vec<Ins>>,
        pc: Vec<usize>,
        sends: Vec<Vec<SendHandle>>,
        recvs: Vec<Vec<RecvHandle>>,
        tag: Tag,
        finish: Vec<SimTime>,
    }

    impl Script {
        fn new(prog: Vec<Vec<Ins>>) -> Self {
            let n = prog.len();
            Script {
                prog,
                pc: vec![0; n],
                sends: vec![Vec::new(); n],
                recvs: vec![Vec::new(); n],
                tag: Tag(0),
                finish: vec![SimTime::ZERO; n],
            }
        }
    }

    impl RankBehavior for Script {
        fn step(&mut self, w: &mut World, r: RankId) -> Step {
            loop {
                let pc = self.pc[r];
                if pc >= self.prog[r].len() {
                    self.finish[r] = w.rank_now(r);
                    return Step::Done;
                }
                match self.prog[r][pc] {
                    Ins::Compute(d) => {
                        self.pc[r] += 1;
                        return Step::Compute(d);
                    }
                    Ins::Send { dst, bytes } => {
                        self.pc[r] += 1;
                        let at = w.rank_now(r) + w.o_send(r, dst);
                        let h = w.isend(r, dst, self.tag, bytes, at);
                        self.sends[r].push(h);
                        return Step::Busy(w.o_send(r, dst));
                    }
                    Ins::Recv { src, bytes } => {
                        self.pc[r] += 1;
                        let at = w.rank_now(r) + w.o_recv(r, src);
                        let h = w.irecv(r, src, self.tag, bytes, at);
                        self.recvs[r].push(h);
                        return Step::Busy(w.o_recv(r, src));
                    }
                    Ins::WaitAll => {
                        let now = w.rank_now(r);
                        w.poll(r, now);
                        let done = self.sends[r].iter().all(|&h| w.send_done(h, now))
                            && self.recvs[r].iter().all(|&h| w.recv_done(h, now));
                        if done {
                            self.pc[r] += 1;
                            // go round the loop for the next instruction
                        } else {
                            return Step::Block;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn reset_reproduces_fresh_world_byte_identically() {
        let mb = 1 << 20;
        let prog = || {
            Script::new(vec![
                vec![Ins::Send { dst: 1, bytes: mb }, Ins::WaitAll],
                vec![
                    Ins::Compute(SimTime::from_millis(5)),
                    Ins::Recv { src: 0, bytes: mb },
                    Ins::WaitAll,
                ],
            ])
        };
        let mut fresh = world(2);
        let mut s1 = prog();
        let t1 = fresh.run(&mut s1).unwrap();

        // A reused world first runs a *different* workload (dirtying tags,
        // sequence numbers, pool slabs, the event queue), then resets.
        let mut reused = world(2);
        let mut warm = Script::new(vec![
            vec![
                Ins::Send {
                    dst: 1,
                    bytes: 4096,
                },
                Ins::WaitAll,
            ],
            vec![
                Ins::Recv {
                    src: 0,
                    bytes: 4096,
                },
                Ins::WaitAll,
            ],
        ]);
        reused.run(&mut warm).unwrap();
        assert!(reused.events_processed() > 0);
        reused.reset(NoiseConfig::none());
        assert_eq!(reused.events_processed(), 0, "delta base must move");
        let mut s2 = prog();
        let t2 = reused.run(&mut s2).unwrap();

        assert_eq!(t1, t2, "makespan must not depend on reuse");
        assert_eq!(s1.finish, s2.finish, "per-rank finish times must match");
        assert_eq!(fresh.events_processed(), reused.events_processed());
        assert_eq!(fresh.protocol_actions(), reused.protocol_actions());
    }

    #[test]
    fn reset_reseeds_noise_like_a_fresh_world() {
        let noisy = NoiseConfig::light(99);
        let prog = || {
            Script::new(vec![
                vec![
                    Ins::Compute(SimTime::from_millis(2)),
                    Ins::Send {
                        dst: 1,
                        bytes: 4096,
                    },
                    Ins::WaitAll,
                ],
                vec![
                    Ins::Recv {
                        src: 0,
                        bytes: 4096,
                    },
                    Ins::WaitAll,
                ],
            ])
        };
        let mut fresh = World::new(Platform::whale(), 2, Placement::RoundRobin, noisy);
        let t1 = fresh.run(&mut prog()).unwrap();

        let mut reused = world(2); // built with *no* noise
        reused.run(&mut prog()).unwrap();
        reused.reset(noisy);
        let t2 = reused.run(&mut prog()).unwrap();
        assert_eq!(t1, t2, "reset must re-seed noise models identically");
    }

    #[test]
    fn eager_pingpong_completes() {
        let mut w = world(2);
        let mut s = Script::new(vec![
            vec![
                Ins::Send {
                    dst: 1,
                    bytes: 1024,
                },
                Ins::WaitAll,
            ],
            vec![
                Ins::Recv {
                    src: 0,
                    bytes: 1024,
                },
                Ins::WaitAll,
            ],
        ]);
        let makespan = w.run(&mut s).unwrap();
        assert!(makespan > SimTime::ZERO);
        // Receiver finishes after roughly o + G*s + L.
        let expect = w.platform().inter.uncontended_oneway(1024);
        let got = s.finish[1];
        assert!(
            got >= expect.scale(0.8) && got <= expect.scale(2.0),
            "got {got}, expected about {expect}"
        );
    }

    #[test]
    fn rendezvous_needs_both_sides() {
        // 1 MB message (rendezvous on whale). Both ranks post then wait;
        // wait polls continuously, so the handshake resolves inside it.
        let mut w = world(2);
        let mb = 1 << 20;
        let mut s = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes: mb }, Ins::WaitAll],
            vec![Ins::Recv { src: 0, bytes: mb }, Ins::WaitAll],
        ]);
        let makespan = w.run(&mut s).unwrap();
        let min = w.platform().inter.serialize(mb);
        assert!(
            makespan > min,
            "payload must at least serialize: {makespan} <= {min}"
        );
        assert!(w.protocol_actions() >= 2, "CTS + data start");
    }

    #[test]
    fn rendezvous_stalls_while_receiver_computes() {
        // The receiver computes for 50 ms before waiting; the sender waits
        // immediately. The payload cannot start until the receiver's wait
        // begins, so the sender is also stuck for ~50 ms. This is the
        // progress problem at the heart of the paper.
        let mb = 1 << 20;
        let mut w = world(2);
        let mut s = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes: mb }, Ins::WaitAll],
            vec![
                Ins::Recv { src: 0, bytes: mb },
                Ins::Compute(SimTime::from_millis(50)),
                Ins::WaitAll,
            ],
        ]);
        w.run(&mut s).unwrap();
        assert!(
            s.finish[0] >= SimTime::from_millis(50),
            "sender should stall on the unanswered RTS: {}",
            s.finish[0]
        );
    }

    #[test]
    fn eager_overlaps_with_compute() {
        // Eager message sent while the receiver computes: payload is already
        // buffered when the receiver finally posts+waits, so the receiver
        // finishes just after its compute phase.
        let bytes = 4096;
        let mut w = world(2);
        let mut s = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes }, Ins::WaitAll],
            vec![
                Ins::Compute(SimTime::from_millis(10)),
                Ins::Recv { src: 0, bytes },
                Ins::WaitAll,
            ],
        ]);
        w.run(&mut s).unwrap();
        let slack = SimTime::from_micros(100);
        assert!(
            s.finish[1] < SimTime::from_millis(10) + slack,
            "eager payload should already be there: {}",
            s.finish[1]
        );
    }

    #[test]
    fn unexpected_eager_pays_copy() {
        // Same as above but compare with a pre-posted receive: the
        // unexpected path must not be faster.
        let bytes = 8192;
        let mut w1 = world(2);
        let mut pre = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes }, Ins::WaitAll],
            vec![
                Ins::Recv { src: 0, bytes },
                Ins::Compute(SimTime::from_millis(5)),
                Ins::WaitAll,
            ],
        ]);
        w1.run(&mut pre).unwrap();
        let mut w2 = world(2);
        let mut unexp = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes }, Ins::WaitAll],
            vec![
                Ins::Compute(SimTime::from_millis(5)),
                Ins::Recv { src: 0, bytes },
                Ins::WaitAll,
            ],
        ]);
        w2.run(&mut unexp).unwrap();
        assert!(unexp.finish[1] >= pre.finish[1]);
    }

    #[test]
    fn deadlock_detected() {
        // Both ranks wait for a message that is never sent.
        let mut w = world(2);
        let mut s = Script::new(vec![
            vec![Ins::Recv { src: 1, bytes: 64 }, Ins::WaitAll],
            vec![Ins::Recv { src: 0, bytes: 64 }, Ins::WaitAll],
        ]);
        match w.run(&mut s) {
            Err(SimError::Deadlock { blocked }) => assert_eq!(blocked, vec![0, 1]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn fifo_matching_two_messages_same_tag() {
        // Two sends with the same tag must match the two receives in order;
        // sizes confirm the pairing via the debug assertion in match_pair.
        let mut w = world(2);
        let mut s = Script::new(vec![
            vec![
                Ins::Send { dst: 1, bytes: 100 },
                Ins::Send { dst: 1, bytes: 100 },
                Ins::WaitAll,
            ],
            vec![
                Ins::Recv { src: 0, bytes: 100 },
                Ins::Recv { src: 0, bytes: 100 },
                Ins::WaitAll,
            ],
        ]);
        w.run(&mut s).unwrap();
    }

    #[test]
    fn determinism_same_seed_same_makespan() {
        let run = |seed| {
            let mut w = World::new(
                Platform::whale(),
                4,
                Placement::RoundRobin,
                NoiseConfig::light(seed),
            );
            let mut s = Script::new(
                (0..4)
                    .map(|r| {
                        vec![
                            Ins::Compute(SimTime::from_micros(100)),
                            Ins::Send {
                                dst: (r + 1) % 4,
                                bytes: 2048,
                            },
                            Ins::Recv {
                                src: (r + 3) % 4,
                                bytes: 2048,
                            },
                            Ins::WaitAll,
                        ]
                    })
                    .collect(),
            );
            w.run(&mut s).unwrap()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn non_overtaking_mixed_protocols() {
        // Rank 0 sends a large rendezvous message, then a small eager one,
        // same tag. The eager envelope physically arrives first (the RTS
        // answer takes progress round-trips), but MPI non-overtaking
        // requires recv #1 to match the rendezvous message and recv #2 the
        // eager one — the size assertions in match_pair verify it.
        let mut w = world(2);
        let big = 1 << 20; // rendezvous on whale
        let small = 64; // eager
        let mut s = Script::new(vec![
            vec![
                Ins::Send { dst: 1, bytes: big },
                Ins::Send {
                    dst: 1,
                    bytes: small,
                },
                Ins::WaitAll,
            ],
            vec![
                Ins::Recv { src: 0, bytes: big },
                Ins::Recv {
                    src: 0,
                    bytes: small,
                },
                Ins::WaitAll,
            ],
        ]);
        w.run(&mut s).expect("must match in send order");
    }

    #[test]
    fn accounting_splits_time() {
        let mut w = world(2);
        let mut s = Script::new(vec![
            vec![
                Ins::Compute(SimTime::from_millis(2)),
                Ins::Send {
                    dst: 1,
                    bytes: 1 << 20,
                },
                Ins::WaitAll,
            ],
            vec![
                Ins::Recv {
                    src: 0,
                    bytes: 1 << 20,
                },
                Ins::Compute(SimTime::from_millis(5)),
                Ins::WaitAll,
            ],
        ]);
        w.run(&mut s).unwrap();
        let a0 = w.accounting(0);
        assert_eq!(a0.compute, SimTime::from_millis(2));
        assert!(a0.library > SimTime::ZERO, "posting costs library time");
        // Rank 0 stalls on the unanswered RTS while rank 1 computes 5 ms.
        assert!(
            a0.blocked >= SimTime::from_millis(2),
            "sender must be blocked: {a0:?}"
        );
        let total = w.accounting_total();
        assert_eq!(total.compute, SimTime::from_millis(7));
        assert!(a0.exposed_fraction() > 0.3);
    }

    #[test]
    fn trace_segments_match_accounting() {
        let mut w = world(2);
        w.enable_trace();
        let mut s = Script::new(vec![
            vec![
                Ins::Compute(SimTime::from_millis(1)),
                Ins::Send {
                    dst: 1,
                    bytes: 1 << 20,
                },
                Ins::WaitAll,
            ],
            vec![
                Ins::Recv {
                    src: 0,
                    bytes: 1 << 20,
                },
                Ins::Compute(SimTime::from_millis(3)),
                Ins::WaitAll,
            ],
        ]);
        w.run(&mut s).unwrap();
        // Per-rank sums of traced segments equal the accounting.
        for r in 0..2 {
            let acct = w.accounting(r);
            let mut sums = [SimTime::ZERO; 3];
            let mut last_end = SimTime::ZERO;
            for seg in w.trace().iter().filter(|s| s.rank == r) {
                assert!(seg.start >= last_end, "segments must not overlap");
                last_end = seg.end;
                let idx = match seg.kind {
                    SegmentKind::Compute => 0,
                    SegmentKind::Library => 1,
                    SegmentKind::Blocked => 2,
                };
                sums[idx] += seg.end - seg.start;
            }
            assert_eq!(sums[0], acct.compute, "rank {r} compute");
            assert_eq!(sums[1], acct.library, "rank {r} library");
            assert_eq!(sums[2], acct.blocked, "rank {r} blocked");
        }
        // The Chrome export is valid-enough JSON: bracketed, one event per
        // segment.
        let mut buf = Vec::new();
        w.write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("[\n"));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.matches("\"ph\": \"X\"").count(), w.trace().len());
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut w = world(2);
        let mut s = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes: 64 }, Ins::WaitAll],
            vec![Ins::Recv { src: 0, bytes: 64 }, Ins::WaitAll],
        ]);
        w.run(&mut s).unwrap();
        assert!(w.trace().is_empty());
    }

    #[test]
    fn tags_allocate_sequentially() {
        let mut w = world(2);
        assert_eq!(w.alloc_tag(), Tag(0));
        assert_eq!(w.alloc_tag(), Tag(1));
    }

    #[test]
    fn self_send_panics() {
        let mut w = world(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.isend(0, 0, Tag(0), 10, SimTime::ZERO)
        }));
        assert!(result.is_err());
    }

    /// Rank 0 sends `bytes` with a staged payload; rank 1 receives. Both
    /// wait to completion.
    struct PayloadPingPong {
        bytes: usize,
        payload: Option<crate::bufpool::Payload>,
        send: Option<SendHandle>,
        recv: Option<RecvHandle>,
        posted: [bool; 2],
    }

    impl RankBehavior for PayloadPingPong {
        fn step(&mut self, w: &mut World, r: RankId) -> Step {
            if !self.posted[r] {
                self.posted[r] = true;
                if r == 0 {
                    let at = w.rank_now(0) + w.o_send(0, 1);
                    self.send =
                        Some(w.isend_payload(0, 1, Tag(0), self.bytes, at, self.payload.take()));
                    return Step::Busy(w.o_send(0, 1));
                }
                let at = w.rank_now(1) + w.o_recv(1, 0);
                self.recv = Some(w.irecv(1, 0, Tag(0), self.bytes, at));
                return Step::Busy(w.o_recv(1, 0));
            }
            let now = w.rank_now(r);
            w.poll(r, now);
            let done = if r == 0 {
                w.send_done(self.send.unwrap(), now)
            } else {
                w.recv_done(self.recv.unwrap(), now)
            };
            if done {
                Step::Done
            } else {
                Step::Block
            }
        }
    }

    fn run_payload_pingpong(bytes: usize) {
        let mut w = world(2);
        let pool = w.payload_pool();
        let mut buf = pool.acquire(bytes);
        buf.as_mut_slice()[..8].copy_from_slice(&[9, 8, 7, 6, 5, 4, 3, 2]);
        let mut b = PayloadPingPong {
            bytes,
            payload: Some(buf.share()),
            send: None,
            recv: None,
            posted: [false; 2],
        };
        w.run(&mut b).unwrap();
        let got = w
            .take_recv_payload(b.recv.unwrap())
            .expect("payload delivered");
        assert_eq!(got.len(), bytes);
        assert_eq!(&got.as_slice()[..8], &[9, 8, 7, 6, 5, 4, 3, 2]);
        // Second take is empty; dropping the handle recycles the slab.
        assert!(w.take_recv_payload(b.recv.unwrap()).is_none());
        assert_eq!(pool.free_slabs(), 0);
        drop(got);
        assert_eq!(pool.free_slabs(), 1);
    }

    #[test]
    fn payload_rides_eager_message() {
        run_payload_pingpong(1024);
    }

    #[test]
    fn payload_rides_rendezvous_message() {
        run_payload_pingpong(1 << 20);
    }

    #[test]
    fn payload_does_not_change_timing() {
        // Byte-identical makespans with and without staged payloads: the
        // network model never looks at the handle.
        let run = |with_payload: bool| {
            let mut w = world(2);
            let payload = with_payload.then(|| w.payload_pool().acquire(4096).share());
            let mut b = PayloadPingPong {
                bytes: 4096,
                payload,
                send: None,
                recv: None,
                posted: [false; 2],
            };
            w.run(&mut b).unwrap()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn events_processed_counts_per_world() {
        let mut w = world(2);
        assert_eq!(w.events_processed(), 0);
        let mut s = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes: 64 }, Ins::WaitAll],
            vec![Ins::Recv { src: 0, bytes: 64 }, Ins::WaitAll],
        ]);
        w.run(&mut s).unwrap();
        assert!(w.events_processed() > 0);
    }

    // ---- fault injection ------------------------------------------------

    /// A 4-rank ring exchange mixing eager (2 KiB) and rendezvous (1 MiB)
    /// traffic — enough protocol variety to exercise every fault hook.
    fn ring_script() -> Script {
        Script::new(
            (0..4)
                .map(|r| {
                    vec![
                        Ins::Compute(SimTime::from_micros(100)),
                        Ins::Send {
                            dst: (r + 1) % 4,
                            bytes: 2048,
                        },
                        Ins::Send {
                            dst: (r + 1) % 4,
                            bytes: 1 << 20,
                        },
                        Ins::Recv {
                            src: (r + 3) % 4,
                            bytes: 2048,
                        },
                        Ins::Recv {
                            src: (r + 3) % 4,
                            bytes: 1 << 20,
                        },
                        Ins::WaitAll,
                    ]
                })
                .collect(),
        )
    }

    #[test]
    fn faults_off_matches_default_world() {
        let mut w1 = world(4);
        let m1 = w1.run(&mut ring_script()).unwrap();
        let mut w2 = world(4);
        w2.set_faults(&FaultConfig::off());
        assert!(!w2.faults_active());
        let m2 = w2.run(&mut ring_script()).unwrap();
        assert_eq!(m1, m2, "faults-off must be bit-identical to no faults");
        assert_eq!(w2.fault_stats(), FaultStats::default());
    }

    #[test]
    fn faults_same_seed_same_run() {
        let run = |seed| {
            let mut w = world(4);
            w.set_faults(&FaultConfig::light(seed));
            assert!(w.faults_active());
            let makespan = w.run(&mut ring_script()).unwrap();
            (makespan, w.fault_stats())
        };
        assert_eq!(run(7), run(7), "same fault seed must replay identically");
        assert_ne!(
            run(7).0,
            run(8).0,
            "different fault seeds should perturb timing"
        );
    }

    #[test]
    fn total_loss_surfaces_timeout_instead_of_hanging() {
        let mut w = world(2);
        w.set_faults(&FaultConfig {
            drop_prob: 1.0,
            retry_timeout: SimTime::from_micros(200),
            max_retries: 2,
            arm_timeouts: true,
            ..FaultConfig::off()
        });
        let mb = 1 << 20;
        let mut s = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes: mb }, Ins::WaitAll],
            vec![Ins::Recv { src: 0, bytes: mb }, Ins::WaitAll],
        ]);
        match w.run(&mut s) {
            Err(SimError::Timeout {
                src,
                dst,
                bytes,
                attempts,
                ..
            }) => {
                assert_eq!((src, dst, bytes), (0, 1, mb));
                assert_eq!(attempts, 2);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(w.fault_stats().timeouts, 1);
        assert!(w.fault_stats().drops >= 1);
    }

    #[test]
    fn seeded_losses_recover_via_retries() {
        let mut w = world(4);
        w.set_faults(&FaultConfig {
            seed: 1234,
            drop_prob: 0.5,
            retry_timeout: SimTime::from_micros(500),
            max_retries: 12,
            arm_timeouts: true,
            ..FaultConfig::off()
        });
        let makespan = w
            .run(&mut ring_script())
            .expect("retries must mask a 50% loss rate");
        assert!(makespan > SimTime::ZERO);
        let stats = w.fault_stats();
        assert!(stats.drops > 0, "a 50% drop rate must drop something");
        assert!(stats.retries > 0, "drops must trigger retransmissions");
        assert_eq!(stats.timeouts, 0);
    }

    #[test]
    fn duplicates_are_suppressed_not_redelivered() {
        let mut w = world(4);
        w.set_faults(&FaultConfig {
            seed: 9,
            dup_prob: 1.0,
            ..FaultConfig::off()
        });
        w.run(&mut ring_script())
            .expect("duplication must not corrupt matching");
        let stats = w.fault_stats();
        assert!(stats.dups > 0);
        assert!(
            stats.dup_suppressed >= stats.dups,
            "every duplicated event must be swallowed: {stats:?}"
        );
    }

    // ---- partitioned engine ---------------------------------------------

    use crate::workload::NeighborExchange;
    use crate::worldpar::ParMode;

    /// Run `NeighborExchange` on a fresh 8-rank whale world under `mode`,
    /// returning every observable the identity contract covers.
    #[allow(clippy::type_complexity)]
    fn neighbor_run(
        mode: ParMode,
        faults: Option<FaultConfig>,
        traced: bool,
    ) -> (
        Result<SimTime, SimError>,
        u64,
        Vec<SimTime>,
        u64,
        Vec<u64>,
        u64,
        FaultStats,
        Vec<TraceSegment>,
    ) {
        // 8 ranks round-robin over whale's 64 nodes: 8 distinct nodes, so
        // every partition count from 2 to 8 is node-aligned.
        let mut w = world(8);
        w.set_par_mode(Some(mode));
        if let Some(cfg) = &faults {
            w.set_faults(cfg);
        }
        if traced {
            w.enable_trace();
        }
        let mut b = NeighborExchange::new(8, 6, 2048, 1 << 20);
        let out = w.run(&mut b);
        if let Some(info) = w.par_info() {
            assert!(info.nparts >= 2);
            assert!(info.windows > 0, "a partitioned run must open windows");
            assert_eq!(
                info.per_part_events.iter().sum::<u64>(),
                w.events_processed(),
                "partition event counts must add up"
            );
        }
        (
            out,
            w.event_digest(),
            b.finish_times(),
            w.events_processed(),
            w.rank_event_counts(),
            w.protocol_actions(),
            w.fault_stats(),
            w.trace(),
        )
    }

    #[test]
    fn partitioned_identity_eager_rdv_mix() {
        let serial = neighbor_run(ParMode::Off, None, false);
        for n in [2usize, 4, 8] {
            let par = neighbor_run(ParMode::Fixed(n), None, false);
            assert_eq!(serial, par, "divergence at {n} partitions");
        }
    }

    #[test]
    fn partitioned_identity_under_faults() {
        for cfg in [FaultConfig::light(21), FaultConfig::heavy(22)] {
            let serial = neighbor_run(ParMode::Off, Some(cfg), false);
            for n in [2usize, 4, 8] {
                let par = neighbor_run(ParMode::Fixed(n), Some(cfg), false);
                assert_eq!(serial, par, "fault divergence at {n} partitions");
            }
        }
    }

    #[test]
    fn partitioned_identity_with_trace() {
        let serial = neighbor_run(ParMode::Off, None, true);
        assert!(!serial.7.is_empty(), "tracing must record segments");
        let par = neighbor_run(ParMode::Fixed(4), None, true);
        assert_eq!(serial, par, "trace divergence at 4 partitions");
    }

    #[test]
    fn unsplittable_behavior_falls_back_serial() {
        let mk = || {
            Script::new(
                (0..8)
                    .map(|r| {
                        vec![
                            Ins::Send {
                                dst: (r + 1) % 8,
                                bytes: 2048,
                            },
                            Ins::Recv {
                                src: (r + 7) % 8,
                                bytes: 2048,
                            },
                            Ins::WaitAll,
                        ]
                    })
                    .collect(),
            )
        };
        let mut ws = world(8);
        let ms = ws.run(&mut mk()).unwrap();
        let mut wp = world(8);
        wp.set_par_mode(Some(ParMode::Fixed(4)));
        let mp = wp.run(&mut mk()).unwrap();
        // Script has no split_par: the engine must fall back to serial and
        // still produce the same run.
        assert!(wp.par_info().is_none(), "unsplittable must run serial");
        assert_eq!(ms, mp);
        assert_eq!(ws.event_digest(), wp.event_digest());
    }

    #[test]
    fn partitioned_timeout_identical() {
        let cfg = FaultConfig {
            drop_prob: 1.0,
            retry_timeout: SimTime::from_micros(200),
            max_retries: 2,
            arm_timeouts: true,
            ..FaultConfig::off()
        };
        let serial = neighbor_run(ParMode::Off, Some(cfg), false);
        assert!(
            matches!(serial.0, Err(SimError::Timeout { .. })),
            "total loss must time out: {:?}",
            serial.0
        );
        for n in [2usize, 4] {
            let par = neighbor_run(ParMode::Fixed(n), Some(cfg), false);
            assert_eq!(serial, par, "timeout divergence at {n} partitions");
        }
    }

    #[test]
    fn reset_clears_partition_state() {
        let mut w = world(8);
        w.set_par_mode(Some(ParMode::Fixed(4)));
        let mut b = NeighborExchange::new(8, 2, 2048, 1 << 20);
        w.run(&mut b).unwrap();
        assert!(w.par_info().is_some(), "expected a partitioned run");
        w.reset(NoiseConfig::none());
        assert!(w.par_info().is_none(), "reset must clear diagnostics");
        // par_mode survives reset (it configures the engine, not the run) —
        // and the reused world must still match a fresh serial one.
        let mut b2 = NeighborExchange::new(8, 6, 2048, 1 << 20);
        let mp = w.run(&mut b2).unwrap();
        let serial = neighbor_run(ParMode::Off, None, false);
        assert_eq!(serial.0.as_ref().unwrap(), &mp);
        assert_eq!(serial.1, w.event_digest());
        assert_eq!(serial.2, b2.finish_times());
    }

    #[test]
    fn par_info_reports_plan_shape() {
        let mut w = world(8);
        w.set_par_mode(Some(ParMode::Fixed(2)));
        let mut b = NeighborExchange::new(8, 4, 2048, 1 << 20);
        w.run(&mut b).unwrap();
        let info = w.par_info().expect("partitioned run");
        assert_eq!(info.nparts, 2);
        assert!(info.lookahead > SimTime::ZERO);
        assert_eq!(info.per_part_events.len(), 2);
        assert_eq!(info.per_part_max_depth.len(), 2);
        assert!(info.per_part_events.iter().all(|&e| e > 0));
    }
}
