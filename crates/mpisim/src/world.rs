//! The discrete-event world: rank scheduling, point-to-point messaging and
//! the progress engine.

use crate::bufpool::{BufPool, Payload};
use crate::fault::{self, FaultConfig, FaultModel};
use crate::message::{Message, Protocol, RecvReq, RecvState, SendState};
use crate::types::{NoiseConfig, RankId, RecvHandle, SendHandle, Tag};
use netmodel::{NetworkState, Placement, Platform};
use simcore::metrics::{self, Counter, Gauge, Histogram};
use simcore::rng::NoiseModel;
use simcore::trace::{self, WorldTrace};
use simcore::{EventQueue, SimTime};
use std::collections::BTreeMap;
use std::sync::OnceLock;

// Registry-backed engine metrics. Handles are cached in `OnceLock`s so the
// registry lock is taken once per metric, not per update; the hot counts
// (events, polls, unexpected matches) accumulate in plain per-world fields
// and flush here once per `World::run` so parallel sweeps never contend on
// a shared cache line inside the event loop.
fn m_sim_events() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.sim_events"))
}

fn m_polls() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.polls"))
}

fn m_unexpected() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.unexpected_msgs"))
}

fn m_rdv_stalls() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.rdv_stalls"))
}

fn m_rdv_stall_ns() -> &'static Histogram {
    static M: OnceLock<&'static Histogram> = OnceLock::new();
    M.get_or_init(|| metrics::histogram("mpisim.rdv_stall_ns"))
}

fn m_queue_max_depth() -> &'static Gauge {
    static M: OnceLock<&'static Gauge> = OnceLock::new();
    M.get_or_init(|| metrics::gauge("mpisim.queue_max_depth"))
}

// Fault-injection metrics. Touched only when a world actually carries a
// fault model, so a healthy process never even registers them (keeping the
// default metrics dump, and thus BENCH_engine.json, unchanged).
fn m_fault_drops() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.fault.drops"))
}

fn m_fault_dups() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.fault.dups"))
}

fn m_fault_dup_suppressed() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.fault.dup_suppressed"))
}

fn m_fault_retries() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.fault.retries"))
}

fn m_fault_timeouts() -> &'static Counter {
    static M: OnceLock<&'static Counter> = OnceLock::new();
    M.get_or_init(|| metrics::counter("mpisim.fault.timeouts"))
}

fn m_fault_backoff_ns() -> &'static Histogram {
    static M: OnceLock<&'static Histogram> = OnceLock::new();
    M.get_or_init(|| metrics::histogram("mpisim.fault.backoff_ns"))
}

/// Total simulator events processed by completed runs in this process (the
/// `mpisim.sim_events` registry counter; flushed at the end of each
/// [`World::run`], successful or deadlocked).
pub fn sim_events_total() -> u64 {
    m_sim_events().get()
}

/// What a rank does next, as decided by its [`RankBehavior`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Compute (application work) for the given duration. Compute noise is
    /// applied by the world. While computing, eager messages still flow, but
    /// the rank does not enter the progress engine.
    Compute(SimTime),
    /// Spend CPU time inside the library (posting messages, progress-call
    /// overhead). No noise is applied. The behaviour is stepped again
    /// immediately afterwards.
    Busy(SimTime),
    /// Block until *any* network event involving this rank fires, then step
    /// again (this is how `wait` polls: each event re-runs the behaviour,
    /// which re-checks completion).
    Block,
    /// This rank's program is finished.
    Done,
}

/// A program driving every rank of the simulation.
///
/// `step` is called whenever rank `rank` is runnable; the implementation
/// typically keeps per-rank program state and uses the [`World`] API
/// (`isend` / `irecv` / `poll` / completion queries) to do message passing.
pub trait RankBehavior {
    /// Decide the next action for `rank` at its current local time
    /// (`world.rank_now(rank)`).
    fn step(&mut self, world: &mut World, rank: RankId) -> Step;
}

/// Why a simulation run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No pending events but some ranks have not finished: every remaining
    /// rank is blocked on a message that can never arrive.
    Deadlock {
        /// Ranks still blocked.
        blocked: Vec<RankId>,
    },
    /// A send exhausted its retransmission budget under fault injection:
    /// the handshake (or eager delivery) was never acknowledged within the
    /// hard deadline. Only reachable when a fault model is armed — it
    /// surfaces as a typed error instead of a hung event loop.
    Timeout {
        /// Sending rank.
        src: RankId,
        /// Destination rank.
        dst: RankId,
        /// Message size.
        bytes: usize,
        /// Retransmissions performed before giving up.
        attempts: u32,
        /// Simulated time from the original post to the deadline.
        waited: SimTime,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(f, "simulation deadlock; blocked ranks: {blocked:?}")
            }
            SimError::Timeout {
                src,
                dst,
                bytes,
                attempts,
                waited,
            } => write!(
                f,
                "send timeout: {bytes}-byte message {src}->{dst} unacknowledged \
                 after {attempts} retries ({waited} since post)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-run fault-injection tallies (cumulative over a world's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Control/eager messages lost in flight.
    pub drops: u64,
    /// Fault-injected duplicate deliveries.
    pub dups: u64,
    /// Duplicate deliveries suppressed by envelope sequencing and
    /// state-machine guards.
    pub dup_suppressed: u64,
    /// Retransmissions performed by the timeout engine.
    pub retries: u64,
    /// Sends that exhausted their retry budget.
    pub timeouts: u64,
}

impl FaultStats {
    fn delta(&self, flushed: &FaultStats) -> FaultStats {
        FaultStats {
            drops: self.drops - flushed.drops,
            dups: self.dups - flushed.dups,
            dup_suppressed: self.dup_suppressed - flushed.dup_suppressed,
            retries: self.retries - flushed.retries,
            timeouts: self.timeouts - flushed.timeouts,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankStatus {
    /// Wake event pending (computing or about to start).
    Scheduled,
    /// Waiting for a network event.
    Blocked,
    /// Program finished.
    Done,
}

enum Event {
    Wake(RankId),
    Net { rank: RankId, kind: NetEvent },
}

#[derive(Debug, Clone, Copy)]
enum NetEvent {
    EagerArrived(usize),
    RtsArrived(usize),
    CtsArrived(usize),
    DataArrived(usize),
    SendDrained(usize),
    /// Retransmission deadline for a message (fault injection only; never
    /// scheduled on the healthy path). Fires on the *sender's* timeline.
    RetryTimer(usize),
}

/// What a rank was doing during a [`TraceSegment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Application compute phase.
    Compute,
    /// CPU inside the communication library.
    Library,
    /// Blocked in a wait.
    Blocked,
}

impl SegmentKind {
    /// Label used in trace exports.
    pub fn label(self) -> &'static str {
        match self {
            SegmentKind::Compute => "compute",
            SegmentKind::Library => "library",
            SegmentKind::Blocked => "blocked",
        }
    }
}

/// One interval of a rank's timeline (recorded when tracing is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSegment {
    /// The rank.
    pub rank: RankId,
    /// What it was doing.
    pub kind: SegmentKind,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
}

/// Where a rank's (virtual) time went, for overlap analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankAccounting {
    /// Time spent in application compute phases.
    pub compute: SimTime,
    /// CPU time spent inside the communication library (posting, progress
    /// calls, copies) — the non-overlappable communication cost.
    pub library: SimTime,
    /// Time spent blocked in waits — communication *exposed* to the
    /// application.
    pub blocked: SimTime,
}

impl RankAccounting {
    /// Fraction of non-compute time (library + blocked) relative to the
    /// total; 0 means perfect overlap.
    pub fn exposed_fraction(&self) -> f64 {
        let total = (self.compute + self.library + self.blocked).as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        (self.library + self.blocked).as_secs_f64() / total
    }
}

struct RankState {
    now: SimTime,
    status: RankStatus,
    noise: NoiseModel,
    acct: RankAccounting,
    /// When the current blocked interval began, if blocked.
    block_since: Option<SimTime>,
    /// Next envelope sequence number expected per source rank (MPI
    /// non-overtaking: envelopes are delivered to matching in send order).
    /// Indexed by source rank — a flat vector, not a map, because every
    /// channel is touched on the hot path of every delivery.
    env_next: Vec<u64>,
    /// Envelopes that arrived out of order, per source rank (indexed by
    /// source). The inner map is almost always empty or tiny.
    env_buf: Vec<BTreeMap<u64, usize>>,
    /// Posted, unmatched receive requests (ids into `recvs`), post order.
    posted_recvs: Vec<usize>,
    /// Unmatched arrived messages (eager payloads or rendezvous RTS).
    unexpected: Vec<usize>,
    /// Matched rendezvous messages awaiting a CTS from this rank (dst side).
    pending_cts: Vec<usize>,
    /// Rendezvous messages whose CTS arrived, awaiting payload injection
    /// (src side).
    pending_data_start: Vec<usize>,
}

/// The simulated machine: ranks, network, in-flight messages and the event
/// queue.
pub struct World {
    net: NetworkState,
    ranks: Vec<RankState>,
    msgs: Vec<Message>,
    recvs: Vec<RecvReq>,
    events: EventQueue<Event>,
    /// Per-(src, dst) channel send counters for envelope sequencing, flat
    /// row-major (`src * nranks + dst`).
    send_seq: Vec<u64>,
    /// Scratch buffers reused across [`World::poll`] calls so the progress
    /// engine does not allocate per invocation.
    scratch_cts: Vec<usize>,
    scratch_starts: Vec<usize>,
    next_tag: u64,
    polls: u64,
    protocol_actions: u64,
    /// Polls already flushed to the metrics registry (delta tracking).
    polls_flushed: u64,
    /// Unexpected-message arrivals this run, flushed at the end of `run`.
    unexpected_msgs: u64,
    /// Rendezvous handshake stalls this run, flushed at the end of `run` —
    /// the shared registry counter/histogram must never be touched on the
    /// poll hot path (parallel sweeps would serialize on its cache line).
    rdv_stalls: u64,
    rdv_stall_ns: metrics::LocalHistogram,
    /// `events.popped()` at the last [`World::reset`]: the queue's lifetime
    /// counter survives reuse, so per-world accounting is a delta from here.
    popped_at_reset: u64,
    /// Timeline segments, recorded only when tracing is enabled.
    trace: Option<Vec<TraceSegment>>,
    /// Span/instant timeline for the observability layer (`NBC_TRACE`);
    /// `None` when tracing is off, making every instrumentation site a
    /// single branch. Published to the global collector on drop.
    otrace: Option<Box<WorldTrace>>,
    /// Payload buffer pool shared by every rank of this world (worlds are
    /// single-threaded, so one pool per world is "rank-local" in the sense
    /// that matters: no cross-simulation contention).
    pool: BufPool,
    /// Fault-injection model; `None` (the default) makes every injection
    /// site a single branch and guarantees byte-identical behaviour to a
    /// build without fault support.
    fault: Option<Box<FaultModel>>,
    /// Set when a retransmission budget is exhausted; `run_inner` returns
    /// it as `SimError::Timeout` at the next loop iteration.
    timed_out: Option<SimError>,
    /// Cumulative fault tallies, plus the portion already flushed to the
    /// metrics registry (same delta scheme as `polls_flushed`).
    faults: FaultStats,
    faults_flushed: FaultStats,
}

impl World {
    /// Create a world of `nranks` ranks on `platform`.
    pub fn new(
        platform: Platform,
        nranks: usize,
        placement: Placement,
        noise: NoiseConfig,
    ) -> Self {
        let ranks = (0..nranks)
            .map(|r| RankState {
                now: SimTime::ZERO,
                status: RankStatus::Scheduled,
                noise: if noise.is_none() {
                    NoiseModel::none()
                } else {
                    NoiseModel::for_rank(
                        noise.seed,
                        r,
                        noise.jitter,
                        noise.spike_prob,
                        noise.spike_scale,
                    )
                },
                acct: RankAccounting::default(),
                block_since: None,
                env_next: vec![0; nranks],
                env_buf: vec![BTreeMap::new(); nranks],
                posted_recvs: Vec::new(),
                unexpected: Vec::new(),
                pending_cts: Vec::new(),
                pending_data_start: Vec::new(),
            })
            .collect();
        let fault_model =
            FaultModel::new(&fault::current(), &platform.fault_profile(), nranks).map(Box::new);
        World {
            net: NetworkState::new(platform, nranks, placement),
            ranks,
            msgs: Vec::with_capacity(nranks * 8),
            recvs: Vec::with_capacity(nranks * 8),
            events: EventQueue::with_capacity(nranks * 4),
            send_seq: vec![0; nranks * nranks],
            scratch_cts: Vec::new(),
            scratch_starts: Vec::new(),
            next_tag: 0,
            polls: 0,
            protocol_actions: 0,
            polls_flushed: 0,
            unexpected_msgs: 0,
            rdv_stalls: 0,
            rdv_stall_ns: metrics::LocalHistogram::new(),
            popped_at_reset: 0,
            trace: None,
            otrace: trace::enabled().then(|| Box::new(WorldTrace::new(nranks))),
            pool: BufPool::new(),
            fault: fault_model,
            timed_out: None,
            faults: FaultStats::default(),
            faults_flushed: FaultStats::default(),
        }
    }

    /// Replace this world's fault model with one built from `cfg` (scaled
    /// by the platform's fault profile). Overrides whatever `NBC_FAULTS` /
    /// `fault::set_override` chose at construction; call before `run`.
    /// Tests use this to inject faults without touching process-global
    /// state.
    pub fn set_faults(&mut self, cfg: &FaultConfig) {
        let nranks = self.ranks.len();
        self.fault =
            FaultModel::new(cfg, &self.net.platform().fault_profile(), nranks).map(Box::new);
    }

    /// Is a fault model armed on this world?
    pub fn faults_active(&self) -> bool {
        self.fault.is_some()
    }

    /// Cumulative fault-injection tallies for this world.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
    }

    /// Fault-decide one delivery that would arrive at `base` after being
    /// sent at `posted`: returns the (possibly jittered) arrival time, or
    /// `None` if the message is dropped, plus the arrival time of an
    /// injected duplicate if one is generated. With no fault model armed
    /// this is the identity `(Some(base), None)` — no RNG is consumed.
    fn fault_delivery(
        &mut self,
        posted: SimTime,
        base: SimTime,
    ) -> (Option<SimTime>, Option<SimTime>) {
        let Some(f) = self.fault.as_mut() else {
            return (Some(base), None);
        };
        if f.drop_event() {
            self.faults.drops += 1;
            return (None, None);
        }
        let arr = base + f.delivery_delay(posted, base);
        if f.duplicate_event() {
            let lag = f.dup_lag();
            self.faults.dups += 1;
            (Some(arr), Some(arr + lag))
        } else {
            (Some(arr), None)
        }
    }

    /// Jitter/brownout-only variant of [`World::fault_delivery`] for
    /// deliveries modelled as reliable (rendezvous payloads: link-level
    /// retransmission is folded into delay, never loss).
    fn fault_extra_delay(&mut self, posted: SimTime, base: SimTime) -> SimTime {
        match self.fault.as_mut() {
            Some(f) => f.delivery_delay(posted, base),
            None => SimTime::ZERO,
        }
    }

    /// Schedule the retransmission deadline for `mid` given that
    /// `attempts` transmissions have happened so far. No-op without a
    /// fault model.
    fn schedule_retry(&mut self, mid: usize, now: SimTime, attempts: u32) {
        let Some(f) = self.fault.as_ref() else {
            return;
        };
        let deadline = f.retry_deadline(now, attempts);
        let src = self.msgs[mid].src;
        self.events.push(
            deadline,
            Event::Net {
                rank: src,
                kind: NetEvent::RetryTimer(mid),
            },
        );
    }

    /// A handle to this world's payload buffer pool (cheap clone).
    pub fn payload_pool(&self) -> BufPool {
        self.pool.clone()
    }

    /// Pre-warm the payload pool: shelve enough slabs of `bytes`'s size
    /// class that the first `count` concurrent acquires of a following run
    /// hit warm memory. Call outside any timed region — this is the
    /// amortization hook that keeps `allocs_per_event` at zero for worker
    /// threads whose worlds would otherwise fault their slabs in during
    /// the first measured pass.
    pub fn prewarm_payloads(&self, bytes: usize, count: usize) {
        self.pool.prewarm(bytes, count);
    }

    /// Events applied by this world so far (the per-run analogue of the
    /// process-wide [`sim_events_total`] — exact even when other worlds run
    /// concurrently on other threads).
    pub fn events_processed(&self) -> u64 {
        self.events.popped() - self.popped_at_reset
    }

    /// Publish the observability timeline to the global trace collector now
    /// (instead of waiting for `Drop`). Used by the world-reuse pool:
    /// cached worlds live in thread-locals whose destructors may never run
    /// on pool threads, so traces must be pushed out at release time. A
    /// no-op when tracing is off or the trace was already published.
    pub fn publish_trace(&mut self) {
        if let Some(t) = self.otrace.take() {
            trace::publish(*t);
        }
    }

    /// Reset this world for a fresh simulation on the *same* platform,
    /// rank count and placement, keeping every allocation (rank vectors,
    /// event-queue heap, message/receive tables, payload-pool slabs) warm.
    ///
    /// The post-state is observationally identical to
    /// `World::new(platform, nranks, placement, noise)` with the same
    /// process-global fault/trace configuration: noise models are re-seeded
    /// from `noise`, the fault model is rebuilt from [`fault::current`],
    /// and all logical state (clocks, tags, sequence numbers, in-flight
    /// messages) is zeroed. Only allocation capacity and recycled payload
    /// slab contents differ — neither is observable in simulated time or
    /// simulation output, so results stay byte-identical whether a world is
    /// fresh or reused.
    pub fn reset(&mut self, noise: NoiseConfig) {
        self.publish_trace();
        let nranks = self.ranks.len();
        for (r, rs) in self.ranks.iter_mut().enumerate() {
            rs.now = SimTime::ZERO;
            rs.status = RankStatus::Scheduled;
            rs.noise = if noise.is_none() {
                NoiseModel::none()
            } else {
                NoiseModel::for_rank(
                    noise.seed,
                    r,
                    noise.jitter,
                    noise.spike_prob,
                    noise.spike_scale,
                )
            };
            rs.acct = RankAccounting::default();
            rs.block_since = None;
            rs.env_next.iter_mut().for_each(|v| *v = 0);
            rs.env_buf.iter_mut().for_each(|m| m.clear());
            rs.posted_recvs.clear();
            rs.unexpected.clear();
            rs.pending_cts.clear();
            rs.pending_data_start.clear();
        }
        self.net.reset();
        // Dropping in-flight messages releases their payload handles, which
        // recycles the slabs into `self.pool` — the reuse win.
        self.msgs.clear();
        self.recvs.clear();
        self.events.reset();
        self.popped_at_reset = self.events.popped();
        self.send_seq.iter_mut().for_each(|v| *v = 0);
        self.scratch_cts.clear();
        self.scratch_starts.clear();
        self.next_tag = 0;
        self.polls = 0;
        self.protocol_actions = 0;
        self.polls_flushed = 0;
        self.unexpected_msgs = 0;
        self.rdv_stalls = 0;
        self.rdv_stall_ns = metrics::LocalHistogram::new();
        self.trace = None;
        self.otrace = trace::enabled().then(|| Box::new(WorldTrace::new(nranks)));
        self.fault = FaultModel::new(
            &fault::current(),
            &self.net.platform().fault_profile(),
            nranks,
        )
        .map(Box::new);
        self.timed_out = None;
        self.faults = FaultStats::default();
        self.faults_flushed = FaultStats::default();
    }

    /// Start recording per-rank timeline segments (compute / library /
    /// blocked intervals). Costs memory proportional to the number of
    /// phases; off by default.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded timeline (empty unless [`World::enable_trace`] was
    /// called before the run).
    pub fn trace(&self) -> &[TraceSegment] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Is the observability timeline (`NBC_TRACE`) being recorded? Callers
    /// with expensive-to-compute span attributes can skip the work when off.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.otrace.is_some()
    }

    /// Name this run in the exported timeline (the Perfetto process name).
    /// No-op when tracing is off.
    pub fn set_trace_label(&mut self, label: &str) {
        if let Some(t) = self.otrace.as_mut() {
            t.label = label.to_string();
        }
    }

    /// Record a span on the observability timeline (no-op when off). Used
    /// by the schedule executor for round and staging spans; all times are
    /// simulated, so recording never perturbs the run.
    #[inline]
    pub fn trace_span(
        &mut self,
        rank: RankId,
        name: &'static str,
        cat: &'static str,
        start: SimTime,
        end: SimTime,
        args: [(&'static str, u64); 2],
    ) {
        if let Some(t) = self.otrace.as_mut() {
            t.span(rank, name, cat, start, end, args);
        }
    }

    /// Record an instant event on the observability timeline (no-op when
    /// off).
    #[inline]
    pub fn trace_instant(
        &mut self,
        rank: RankId,
        name: &'static str,
        cat: &'static str,
        ts: SimTime,
        args: [(&'static str, u64); 2],
    ) {
        if let Some(t) = self.otrace.as_mut() {
            t.instant(rank, name, cat, ts, args);
        }
    }

    fn record(&mut self, rank: RankId, kind: SegmentKind, start: SimTime, end: SimTime) {
        if end > start {
            if let Some(t) = self.trace.as_mut() {
                t.push(TraceSegment {
                    rank,
                    kind,
                    start,
                    end,
                });
            }
            if let Some(t) = self.otrace.as_mut() {
                t.span(rank, kind.label(), "rank", start, end, trace::NO_ARGS);
            }
        }
    }

    /// Write the recorded timeline in the Chrome trace-event JSON format
    /// (loadable in `chrome://tracing` or Perfetto; timestamps in
    /// microseconds of *virtual* time).
    pub fn write_chrome_trace(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        writeln!(w, "[")?;
        let segs = self.trace();
        for (i, s) in segs.iter().enumerate() {
            let comma = if i + 1 == segs.len() { "" } else { "," };
            writeln!(
                w,
                "  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}}}{}",
                s.kind.label(),
                s.rank,
                s.start.as_micros_f64(),
                (s.end - s.start).as_micros_f64(),
                comma
            )?;
        }
        writeln!(w, "]")
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// The platform description.
    pub fn platform(&self) -> &Platform {
        self.net.platform()
    }

    /// The network state (topology queries, statistics).
    pub fn network(&self) -> &NetworkState {
        &self.net
    }

    /// Local clock of `rank`.
    pub fn rank_now(&self, rank: RankId) -> SimTime {
        self.ranks[rank].now
    }

    /// Allocate a fresh tag for a collective-operation instance. All ranks
    /// creating operations in the same order observe the same tag sequence.
    pub fn alloc_tag(&mut self) -> Tag {
        let t = Tag(self.next_tag);
        self.next_tag += 1;
        t
    }

    /// Total progress-engine invocations so far.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Total rendezvous protocol actions (CTS sends + payload starts).
    pub fn protocol_actions(&self) -> u64 {
        self.protocol_actions
    }

    /// Time accounting for `rank` (compute / library / blocked).
    pub fn accounting(&self, rank: RankId) -> RankAccounting {
        self.ranks[rank].acct
    }

    /// Aggregate accounting over all ranks.
    pub fn accounting_total(&self) -> RankAccounting {
        let mut total = RankAccounting::default();
        for r in &self.ranks {
            total.compute += r.acct.compute;
            total.library += r.acct.library;
            total.blocked += r.acct.blocked;
        }
        total
    }

    /// CPU overhead for posting one send to `dst`.
    pub fn o_send(&self, src: RankId, dst: RankId) -> SimTime {
        self.net.params(src, dst).o_send
    }

    /// CPU overhead for posting one receive from `src`.
    pub fn o_recv(&self, dst: RankId, src: RankId) -> SimTime {
        self.net.params(dst, src).o_recv
    }

    // ------------------------------------------------------------------
    // Point-to-point API (used by the collective-schedule executor)
    // ------------------------------------------------------------------

    /// Post a non-blocking send from `src` to `dst` at local time `at`.
    ///
    /// The *caller* is responsible for charging `o_send` CPU time; `at`
    /// should already include it.
    pub fn isend(
        &mut self,
        src: RankId,
        dst: RankId,
        tag: Tag,
        bytes: usize,
        at: SimTime,
    ) -> SendHandle {
        self.isend_payload(src, dst, tag, bytes, at, None)
    }

    /// [`World::isend`] carrying a payload handle. The handle rides on the
    /// in-flight message — eager delivery and rendezvous injection move it,
    /// never copy it — and transfers to the matched receive at completion
    /// ([`World::take_recv_payload`]). Timing is identical with or without
    /// a payload: only `bytes` feeds the network model.
    pub fn isend_payload(
        &mut self,
        src: RankId,
        dst: RankId,
        tag: Tag,
        bytes: usize,
        at: SimTime,
        payload: Option<Payload>,
    ) -> SendHandle {
        assert_ne!(src, dst, "self-sends are expressed as schedule copies");
        let id = self.msgs.len();
        let seq = {
            let c = &mut self.send_seq[src * self.ranks.len() + dst];
            let s = *c;
            *c += 1;
            s
        };
        if self.net.is_eager(src, dst, bytes) {
            let plan = self.net.plan_transfer(at, src, dst, bytes);
            let mut m = Message::new(src, dst, tag, bytes, Protocol::Eager, seq, at);
            m.payload = payload;
            self.msgs.push(m);
            // The sender's buffer drains locally whether or not the network
            // later loses the payload.
            self.events.push(
                plan.src_drain,
                Event::Net {
                    rank: src,
                    kind: NetEvent::SendDrained(id),
                },
            );
            let (arrival, dup) = self.fault_delivery(at, plan.dst_drain);
            for t in [arrival, dup].into_iter().flatten() {
                self.events.push(
                    t,
                    Event::Net {
                        rank: dst,
                        kind: NetEvent::EagerArrived(id),
                    },
                );
            }
            if arrival.is_none() {
                // Lost in flight: only the retransmission engine can
                // recover the delivery.
                self.trace_instant(src, "drop", "fault", at, [("mid", id as u64), ("", 0)]);
                self.schedule_retry(id, at, 0);
            }
        } else {
            let rts = self.net.ctrl_arrival(at, src, dst);
            let mut m = Message::new(src, dst, tag, bytes, Protocol::Rendezvous, seq, at);
            m.payload = payload;
            self.msgs.push(m);
            let (arrival, dup) = self.fault_delivery(at, rts);
            for t in [arrival, dup].into_iter().flatten() {
                self.events.push(
                    t,
                    Event::Net {
                        rank: dst,
                        kind: NetEvent::RtsArrived(id),
                    },
                );
            }
            if arrival.is_none() {
                self.trace_instant(src, "drop", "fault", at, [("mid", id as u64), ("", 0)]);
            }
            // A rendezvous send always arms its deadline when faults are
            // active: it guards against a lost RTS *and* a lost CTS.
            self.schedule_retry(id, at, 0);
        }
        SendHandle(id)
    }

    /// Post a non-blocking receive on `rank` for a message from `src`.
    pub fn irecv(
        &mut self,
        rank: RankId,
        src: RankId,
        tag: Tag,
        bytes: usize,
        at: SimTime,
    ) -> RecvHandle {
        let rid = self.recvs.len();
        self.recvs.push(RecvReq::new(rank, src, tag, bytes));
        // Try to match an already-arrived (unexpected) message, FIFO.
        let pos = self.ranks[rank]
            .unexpected
            .iter()
            .position(|&m| self.msgs[m].src == src && self.msgs[m].tag == tag);
        if let Some(pos) = pos {
            let mid = self.ranks[rank].unexpected.remove(pos);
            if self.otrace.is_some() {
                // The message sat in the unexpected queue from its arrival
                // until this receive was posted: a match-queue stall.
                let m = &self.msgs[mid];
                let arrived = m.data_arrival.or(m.rts_arrival).unwrap_or(at);
                let args = [("src", m.src as u64), ("bytes", m.bytes as u64)];
                self.trace_span(rank, "unexpected", "match", arrived, at, args);
            }
            self.match_pair(mid, rid, at, true);
        } else {
            self.ranks[rank].posted_recvs.push(rid);
        }
        RecvHandle(rid)
    }

    /// Complete receive `rid` at time `t`: set its state and move the
    /// payload handle off the matched message (an O(1) pointer move — this
    /// is the zero-copy delivery step for both eager and rendezvous paths).
    fn complete_recv(&mut self, rid: usize, t: SimTime) {
        self.recvs[rid].state = RecvState::Complete(t);
        // A receive can be completed twice on the eager fast path (match_pair
        // completes it, then deliver_envelope confirms); only move the handle
        // when the message still holds one so the second call is a no-op.
        if let Some(mid) = self.recvs[rid].msg {
            if let Some(p) = self.msgs[mid].payload.take() {
                self.recvs[rid].payload = Some(p);
            }
        }
    }

    /// Take the delivered payload of a completed receive, if the sender
    /// staged one (and it has not been taken yet). Dropping the returned
    /// handle recycles the buffer into the sender's pool once all clones
    /// are gone.
    pub fn take_recv_payload(&mut self, h: RecvHandle) -> Option<Payload> {
        self.recvs[h.0].payload.take()
    }

    /// Bind message `mid` to receive `rid`. `on_post` is true when matching
    /// happens at receive-post time (the message was unexpected).
    fn match_pair(&mut self, mid: usize, rid: usize, now: SimTime, on_post: bool) {
        debug_assert_eq!(
            self.msgs[mid].bytes, self.recvs[rid].bytes,
            "size mismatch in match"
        );
        self.msgs[mid].matched_recv = Some(rid);
        self.recvs[rid].msg = Some(mid);
        self.recvs[rid].state = RecvState::Matched;
        match self.msgs[mid].protocol {
            Protocol::Eager => {
                if let Some(arr) = self.msgs[mid].data_arrival {
                    if on_post {
                        // Payload already buffered: completion costs a copy
                        // out of the bounce buffer, finishing slightly after
                        // `now`. Schedule a delivery event so a subsequent
                        // wait is woken when the copy is done.
                        let src = self.msgs[mid].src;
                        let dst = self.msgs[mid].dst;
                        let copy = self
                            .net
                            .params(src, dst)
                            .unexpected_copy(self.msgs[mid].bytes);
                        let done = now.max(arr) + copy;
                        self.events.push(
                            done,
                            Event::Net {
                                rank: dst,
                                kind: NetEvent::DataArrived(mid),
                            },
                        );
                    } else {
                        self.complete_recv(rid, arr);
                    }
                }
                // else: completion set when EagerArrived fires.
            }
            Protocol::Rendezvous => {
                // Receiver must answer the RTS from inside the library.
                if self.msgs[mid].rts_arrival.is_some() && !self.msgs[mid].cts_sent {
                    let dst = self.msgs[mid].dst;
                    self.ranks[dst].pending_cts.push(mid);
                }
            }
        }
    }

    /// Run the rendezvous protocol engine for `rank` at time `now`:
    /// answer matched RTSs with CTSs, and start payload transfers for sends
    /// whose CTS has arrived. Returns the number of protocol actions taken.
    ///
    /// This models one entry into the MPI library (`MPI_Test`-style); it is
    /// invoked by explicit progress calls and continuously while blocked in
    /// a wait.
    pub fn poll(&mut self, rank: RankId, now: SimTime) -> usize {
        self.polls += 1;
        let mut actions = 0;
        // Answer RTSs (receiver side). The pending list is swapped with a
        // reusable scratch buffer so a poll-heavy run does not allocate a
        // fresh vector per progress call.
        let mut cts = std::mem::take(&mut self.scratch_cts);
        std::mem::swap(&mut cts, &mut self.ranks[rank].pending_cts);
        for &mid in &cts {
            if self.msgs[mid].cts_sent {
                continue;
            }
            self.msgs[mid].cts_sent = true;
            let src = self.msgs[mid].src;
            // The handshake stalled from RTS arrival until this progress
            // call finally answered it — the cost the paper's progress
            // study quantifies. Accumulated per-world and flushed at the
            // end of `run`: rendezvous-heavy sweeps hit this on the poll
            // hot path, so the shared histogram must stay off it.
            if let Some(rts) = self.msgs[mid].rts_arrival {
                if now > rts {
                    let stall = now - rts;
                    self.rdv_stalls += 1;
                    self.rdv_stall_ns.record(stall.as_nanos());
                    let args = [("src", src as u64), ("bytes", self.msgs[mid].bytes as u64)];
                    self.trace_span(rank, "rdv_stall", "msg", rts, now, args);
                }
            }
            let arr = self.net.ctrl_arrival(now, rank, src);
            // The CTS control message itself can be lost or duplicated
            // under fault injection; a lost CTS is recovered when the
            // sender's retry timer resends the RTS and the receiver
            // re-answers.
            let (arrival, dup) = self.fault_delivery(now, arr);
            for t in [arrival, dup].into_iter().flatten() {
                self.events.push(
                    t,
                    Event::Net {
                        rank: src,
                        kind: NetEvent::CtsArrived(mid),
                    },
                );
            }
            if arrival.is_none() {
                self.trace_instant(rank, "drop", "fault", now, [("mid", mid as u64), ("", 0)]);
            }
            actions += 1;
        }
        cts.clear();
        self.scratch_cts = cts;
        // Start payloads (sender side).
        let mut starts = std::mem::take(&mut self.scratch_starts);
        std::mem::swap(&mut starts, &mut self.ranks[rank].pending_data_start);
        for &mid in &starts {
            if !matches!(self.msgs[mid].send_state, SendState::CtsArrived(_)) {
                continue;
            }
            let (src, dst, bytes) = (self.msgs[mid].src, self.msgs[mid].dst, self.msgs[mid].bytes);
            let plan = self.net.plan_transfer(now, src, dst, bytes);
            self.msgs[mid].send_state = SendState::DataInFlight;
            self.events.push(
                plan.src_drain,
                Event::Net {
                    rank: src,
                    kind: NetEvent::SendDrained(mid),
                },
            );
            // Rendezvous payloads are modelled reliable (link-level
            // retransmission folded into delay): jitter/brownout only.
            let data_arr = plan.dst_drain + self.fault_extra_delay(now, plan.dst_drain);
            self.events.push(
                data_arr,
                Event::Net {
                    rank: dst,
                    kind: NetEvent::DataArrived(mid),
                },
            );
            actions += 1;
        }
        starts.clear();
        self.scratch_starts = starts;
        self.protocol_actions += actions as u64;
        // Only polls that did protocol work are worth a timeline event:
        // poll-heavy configurations (num_progress in the hundreds) would
        // otherwise drown the trace in no-op instants. Every poll still
        // counts toward the `mpisim.polls` metric.
        if actions > 0 {
            self.trace_instant(
                rank,
                "progress",
                "prog",
                now,
                [("actions", actions as u64), ("", 0)],
            );
        }
        actions
    }

    /// True once the sender of `h` may reuse its buffer (observed at `now`).
    pub fn send_done(&self, h: SendHandle, now: SimTime) -> bool {
        self.msgs[h.0].send_drained().is_some_and(|t| t <= now)
    }

    /// True once the payload of `h` has been fully delivered (observed at
    /// `now`).
    pub fn recv_done(&self, h: RecvHandle, now: SimTime) -> bool {
        self.recvs[h.0].complete_at().is_some_and(|t| t <= now)
    }

    /// Completion time of a send, if it has drained.
    pub fn send_complete_time(&self, h: SendHandle) -> Option<SimTime> {
        self.msgs[h.0].send_drained()
    }

    /// Completion time of a receive, if delivered.
    pub fn recv_complete_time(&self, h: RecvHandle) -> Option<SimTime> {
        self.recvs[h.0].complete_at()
    }

    // ------------------------------------------------------------------
    // Event application
    // ------------------------------------------------------------------

    /// Buffer an arrived envelope and deliver every in-order envelope on
    /// its channel to the matching logic. MPI guarantees non-overtaking
    /// per (source, communicator): a fast eager message must not match a
    /// receive ahead of an earlier rendezvous message whose RTS is still
    /// in flight, so delivery follows the sender's posting order.
    fn enqueue_envelope(&mut self, rank: RankId, mid: usize, t: SimTime) {
        let src = self.msgs[mid].src;
        let seq = self.msgs[mid].seq;
        // Duplicate suppression: an envelope this channel has already
        // delivered (a fault-injected duplicate, or a retransmission racing
        // its original) must not re-enter matching — and must not sit in
        // `env_buf` forever. Never taken on the healthy path, where each
        // sequence number arrives exactly once.
        if seq < self.ranks[rank].env_next[src] {
            self.faults.dup_suppressed += 1;
            return;
        }
        if self.ranks[rank].env_buf[src].contains_key(&seq) {
            self.faults.dup_suppressed += 1;
            return;
        }
        self.ranks[rank].env_buf[src].insert(seq, mid);
        loop {
            let next = self.ranks[rank].env_next[src];
            let Some(m) = self.ranks[rank].env_buf[src].remove(&next) else {
                break;
            };
            self.ranks[rank].env_next[src] = next + 1;
            self.deliver_envelope(rank, m, t);
        }
    }

    /// Run the matching logic for an (in-order) envelope.
    fn deliver_envelope(&mut self, rank: RankId, mid: usize, t: SimTime) {
        match self.msgs[mid].protocol {
            Protocol::Eager => {
                if let Some(rid) = self.msgs[mid].matched_recv {
                    // Pre-posted receive: payload lands in place.
                    self.complete_recv(rid, t);
                } else {
                    let pos = self.ranks[rank].posted_recvs.iter().position(|&r| {
                        self.recvs[r].src == self.msgs[mid].src
                            && self.recvs[r].tag == self.msgs[mid].tag
                    });
                    match pos {
                        Some(p) => {
                            let rid = self.ranks[rank].posted_recvs.remove(p);
                            self.match_pair(mid, rid, t, false);
                            self.complete_recv(rid, t);
                        }
                        None => {
                            self.unexpected_msgs += 1;
                            self.ranks[rank].unexpected.push(mid);
                        }
                    }
                }
            }
            Protocol::Rendezvous => {
                let pos = self.ranks[rank].posted_recvs.iter().position(|&r| {
                    self.recvs[r].src == self.msgs[mid].src
                        && self.recvs[r].tag == self.msgs[mid].tag
                });
                match pos {
                    Some(p) => {
                        let rid = self.ranks[rank].posted_recvs.remove(p);
                        self.match_pair(mid, rid, t, false);
                    }
                    None => {
                        self.unexpected_msgs += 1;
                        self.ranks[rank].unexpected.push(mid);
                    }
                }
            }
        }
    }

    /// Span/instant for one message lifecycle step, on the destination's
    /// timeline (no-op when tracing is off).
    fn trace_msg(
        &mut self,
        rank: RankId,
        name: &'static str,
        mid: usize,
        start: SimTime,
        end: SimTime,
    ) {
        if self.otrace.is_some() {
            let args = [
                ("src", self.msgs[mid].src as u64),
                ("bytes", self.msgs[mid].bytes as u64),
            ];
            self.trace_span(rank, name, "msg", start, end, args);
        }
    }

    fn apply_net(&mut self, rank: RankId, kind: NetEvent, t: SimTime) {
        match kind {
            NetEvent::EagerArrived(mid) => {
                // Duplicate delivery (fault-injected, or a retransmission
                // whose original survived): the payload already landed.
                if self.msgs[mid].data_arrival.is_some() {
                    self.faults.dup_suppressed += 1;
                    return;
                }
                self.msgs[mid].data_arrival = Some(t);
                // Whole eager lifecycle: post -> payload at destination.
                self.trace_msg(rank, "eager", mid, self.msgs[mid].posted_at, t);
                self.enqueue_envelope(rank, mid, t);
            }
            NetEvent::RtsArrived(mid) => {
                if self.msgs[mid].rts_arrival.is_some() {
                    // Duplicate RTS. If the sender is still waiting for a
                    // CTS we already sent, that CTS was lost: re-answer at
                    // the receiver's next library entry (classic rendezvous
                    // recovery). Otherwise suppress outright.
                    self.faults.dup_suppressed += 1;
                    if self.msgs[mid].matched_recv.is_some()
                        && self.msgs[mid].cts_sent
                        && matches!(self.msgs[mid].send_state, SendState::Posted)
                    {
                        self.msgs[mid].cts_sent = false;
                        if !self.ranks[rank].pending_cts.contains(&mid) {
                            self.ranks[rank].pending_cts.push(mid);
                        }
                    }
                    return;
                }
                self.msgs[mid].rts_arrival = Some(t);
                // Rendezvous handshake: post -> RTS at destination.
                self.trace_msg(rank, "rts", mid, self.msgs[mid].posted_at, t);
                self.enqueue_envelope(rank, mid, t);
            }
            NetEvent::CtsArrived(mid) => {
                // Duplicate CTS (duplicated control message, or a
                // re-answer racing the original): the payload transfer is
                // already underway or done — never start it twice.
                if !matches!(self.msgs[mid].send_state, SendState::Posted) {
                    self.faults.dup_suppressed += 1;
                    return;
                }
                self.msgs[mid].send_state = SendState::CtsArrived(t);
                if self.otrace.is_some() {
                    let args = [("dst", self.msgs[mid].dst as u64), ("", 0)];
                    self.trace_instant(rank, "cts", "msg", t, args);
                }
                self.ranks[rank].pending_data_start.push(mid);
            }
            NetEvent::DataArrived(mid) => {
                self.msgs[mid].data_arrival = Some(t);
                if self.msgs[mid].protocol == Protocol::Rendezvous {
                    // Whole rendezvous lifecycle: post -> payload delivered.
                    self.trace_msg(rank, "rdv", mid, self.msgs[mid].posted_at, t);
                }
                let rid = self.msgs[mid]
                    .matched_recv
                    .expect("rendezvous payload for unmatched message");
                self.complete_recv(rid, t);
            }
            NetEvent::SendDrained(mid) => {
                self.msgs[mid].send_state = SendState::Drained(t);
            }
            NetEvent::RetryTimer(mid) => {
                // Fault injection only. Has the transmission been
                // acknowledged since the timer was armed? (Eager: payload
                // landed. Rendezvous: a CTS reached the sender.)
                let acked = match self.msgs[mid].protocol {
                    Protocol::Eager => self.msgs[mid].data_arrival.is_some(),
                    Protocol::Rendezvous => !matches!(self.msgs[mid].send_state, SendState::Posted),
                };
                if acked {
                    return;
                }
                let attempts = self.msgs[mid].attempts;
                let max = self.fault.as_ref().map(|f| f.max_retries()).unwrap_or(0);
                if attempts >= max {
                    // Budget exhausted: surface a typed error instead of
                    // letting the event loop hang or retry forever.
                    self.faults.timeouts += 1;
                    let m = &self.msgs[mid];
                    self.timed_out = Some(SimError::Timeout {
                        src: m.src,
                        dst: m.dst,
                        bytes: m.bytes,
                        attempts,
                        waited: t.saturating_sub(m.posted_at),
                    });
                    return;
                }
                self.msgs[mid].attempts = attempts + 1;
                self.faults.retries += 1;
                if let Some(f) = self.fault.as_ref() {
                    m_fault_backoff_ns().record(f.backoff(attempts).as_nanos());
                }
                let (src, dst, bytes) =
                    (self.msgs[mid].src, self.msgs[mid].dst, self.msgs[mid].bytes);
                self.trace_instant(
                    src,
                    "retry",
                    "fault",
                    t,
                    [("attempt", (attempts + 1) as u64), ("mid", mid as u64)],
                );
                match self.msgs[mid].protocol {
                    // Resend the RTS: the receiver's duplicate handling
                    // either enqueues it fresh (original was lost) or
                    // re-answers a lost CTS.
                    Protocol::Rendezvous => {
                        let base = self.net.ctrl_arrival(t, src, dst);
                        let (arrival, dup) = self.fault_delivery(t, base);
                        for at in [arrival, dup].into_iter().flatten() {
                            self.events.push(
                                at,
                                Event::Net {
                                    rank: dst,
                                    kind: NetEvent::RtsArrived(mid),
                                },
                            );
                        }
                    }
                    // Retransmit the eager payload (the original local
                    // drain stands; retransmission consumes NIC bandwidth
                    // again via a fresh transfer plan).
                    Protocol::Eager => {
                        let plan = self.net.plan_transfer(t, src, dst, bytes);
                        let (arrival, dup) = self.fault_delivery(t, plan.dst_drain);
                        for at in [arrival, dup].into_iter().flatten() {
                            self.events.push(
                                at,
                                Event::Net {
                                    rank: dst,
                                    kind: NetEvent::EagerArrived(mid),
                                },
                            );
                        }
                    }
                }
                // Exponential backoff: the next deadline doubles.
                self.schedule_retry(mid, t, attempts + 1);
            }
        }
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Run every rank's behaviour to completion. Returns the largest rank
    /// local time (the makespan).
    pub fn run(&mut self, behavior: &mut dyn RankBehavior) -> Result<SimTime, SimError> {
        let popped_at_start = self.events.popped();
        let out = self.run_inner(behavior);
        // Flush this run's per-world tallies to the registry in one shot —
        // the hot loop itself never touches shared cache lines.
        m_sim_events().add(self.events.popped() - popped_at_start);
        m_polls().add(self.polls - self.polls_flushed);
        self.polls_flushed = self.polls;
        m_unexpected().add(std::mem::take(&mut self.unexpected_msgs));
        m_rdv_stalls().add(std::mem::take(&mut self.rdv_stalls));
        m_rdv_stall_ns().absorb(&mut self.rdv_stall_ns);
        m_queue_max_depth().record_max(self.events.max_len() as u64);
        // Fault tallies flush only when a model is armed, so a healthy
        // process never registers the fault metrics at all.
        if self.fault.is_some() {
            let d = self.faults.delta(&self.faults_flushed);
            m_fault_drops().add(d.drops);
            m_fault_dups().add(d.dups);
            m_fault_dup_suppressed().add(d.dup_suppressed);
            m_fault_retries().add(d.retries);
            m_fault_timeouts().add(d.timeouts);
            self.faults_flushed = self.faults;
        }
        out
    }

    fn run_inner(&mut self, behavior: &mut dyn RankBehavior) -> Result<SimTime, SimError> {
        for r in 0..self.ranks.len() {
            self.events.push(self.ranks[r].now, Event::Wake(r));
            self.ranks[r].status = RankStatus::Scheduled;
        }
        let mut active = self.ranks.len();
        while active > 0 {
            let Some((t, ev)) = self.events.pop() else {
                let blocked: Vec<RankId> = self
                    .ranks
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.status == RankStatus::Blocked)
                    .map(|(r, _)| r)
                    .collect();
                return Err(SimError::Deadlock { blocked });
            };
            match ev {
                Event::Wake(r) => {
                    self.ranks[r].now = self.ranks[r].now.max(t);
                    self.step_rank(behavior, r, &mut active);
                }
                Event::Net { rank, kind } => {
                    self.apply_net(rank, kind, t);
                    if let Some(err) = self.timed_out.take() {
                        return Err(err);
                    }
                    if self.ranks[rank].status == RankStatus::Blocked {
                        // A blocked rank is polling inside wait: react now.
                        self.ranks[rank].now = self.ranks[rank].now.max(t);
                        if let Some(since) = self.ranks[rank].block_since.take() {
                            let until = self.ranks[rank].now;
                            self.ranks[rank].acct.blocked += until.saturating_sub(since);
                            self.record(rank, SegmentKind::Blocked, since, until);
                        }
                        self.step_rank(behavior, rank, &mut active);
                    }
                }
            }
        }
        Ok(self
            .ranks
            .iter()
            .map(|r| r.now)
            .max()
            .unwrap_or(SimTime::ZERO))
    }

    fn step_rank(&mut self, behavior: &mut dyn RankBehavior, r: RankId, active: &mut usize) {
        loop {
            match behavior.step(self, r) {
                Step::Compute(d) => {
                    let factor = self.ranks[r].noise.factor();
                    let mut d = d.scale(factor);
                    // Straggler injection: fault-designated slow ranks pay
                    // a constant compute multiplier. Guarded so the healthy
                    // path never re-rounds durations through `scale`.
                    if let Some(f) = self.fault.as_ref() {
                        let rf = f.rank_factor(r);
                        if rf != 1.0 {
                            d = d.scale(rf);
                        }
                    }
                    self.ranks[r].acct.compute += d;
                    let wake = self.ranks[r].now + d;
                    self.record(r, SegmentKind::Compute, self.ranks[r].now, wake);
                    self.events.push(wake, Event::Wake(r));
                    self.ranks[r].status = RankStatus::Scheduled;
                    // Local clock advances when the wake event fires.
                    self.ranks[r].now = wake;
                    return;
                }
                Step::Busy(c) => {
                    let start = self.ranks[r].now;
                    self.ranks[r].now += c;
                    self.ranks[r].acct.library += c;
                    self.record(r, SegmentKind::Library, start, self.ranks[r].now);
                    // Immediately step again.
                }
                Step::Block => {
                    self.ranks[r].status = RankStatus::Blocked;
                    if self.ranks[r].block_since.is_none() {
                        self.ranks[r].block_since = Some(self.ranks[r].now);
                    }
                    return;
                }
                Step::Done => {
                    if self.ranks[r].status != RankStatus::Done {
                        self.ranks[r].status = RankStatus::Done;
                        *active -= 1;
                    }
                    return;
                }
            }
        }
    }
}

impl Drop for World {
    fn drop(&mut self) {
        // Publish the observability timeline when the world goes away (not
        // at the end of `run`: a world can run multiple times, and a
        // deadlocked or panicked run should still surface its trace).
        if let Some(t) = self.otrace.take() {
            trace::publish(*t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(nranks: usize) -> World {
        World::new(
            Platform::whale(),
            nranks,
            Placement::RoundRobin,
            NoiseConfig::none(),
        )
    }

    /// A tiny per-rank script interpreter for tests.
    enum Ins {
        Compute(SimTime),
        Send { dst: RankId, bytes: usize },
        Recv { src: RankId, bytes: usize },
        WaitAll,
    }

    struct Script {
        prog: Vec<Vec<Ins>>,
        pc: Vec<usize>,
        sends: Vec<Vec<SendHandle>>,
        recvs: Vec<Vec<RecvHandle>>,
        tag: Tag,
        finish: Vec<SimTime>,
    }

    impl Script {
        fn new(prog: Vec<Vec<Ins>>) -> Self {
            let n = prog.len();
            Script {
                prog,
                pc: vec![0; n],
                sends: vec![Vec::new(); n],
                recvs: vec![Vec::new(); n],
                tag: Tag(0),
                finish: vec![SimTime::ZERO; n],
            }
        }
    }

    impl RankBehavior for Script {
        fn step(&mut self, w: &mut World, r: RankId) -> Step {
            loop {
                let pc = self.pc[r];
                if pc >= self.prog[r].len() {
                    self.finish[r] = w.rank_now(r);
                    return Step::Done;
                }
                match self.prog[r][pc] {
                    Ins::Compute(d) => {
                        self.pc[r] += 1;
                        return Step::Compute(d);
                    }
                    Ins::Send { dst, bytes } => {
                        self.pc[r] += 1;
                        let at = w.rank_now(r) + w.o_send(r, dst);
                        let h = w.isend(r, dst, self.tag, bytes, at);
                        self.sends[r].push(h);
                        return Step::Busy(w.o_send(r, dst));
                    }
                    Ins::Recv { src, bytes } => {
                        self.pc[r] += 1;
                        let at = w.rank_now(r) + w.o_recv(r, src);
                        let h = w.irecv(r, src, self.tag, bytes, at);
                        self.recvs[r].push(h);
                        return Step::Busy(w.o_recv(r, src));
                    }
                    Ins::WaitAll => {
                        let now = w.rank_now(r);
                        w.poll(r, now);
                        let done = self.sends[r].iter().all(|&h| w.send_done(h, now))
                            && self.recvs[r].iter().all(|&h| w.recv_done(h, now));
                        if done {
                            self.pc[r] += 1;
                            // go round the loop for the next instruction
                        } else {
                            return Step::Block;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn reset_reproduces_fresh_world_byte_identically() {
        let mb = 1 << 20;
        let prog = || {
            Script::new(vec![
                vec![Ins::Send { dst: 1, bytes: mb }, Ins::WaitAll],
                vec![
                    Ins::Compute(SimTime::from_millis(5)),
                    Ins::Recv { src: 0, bytes: mb },
                    Ins::WaitAll,
                ],
            ])
        };
        let mut fresh = world(2);
        let mut s1 = prog();
        let t1 = fresh.run(&mut s1).unwrap();

        // A reused world first runs a *different* workload (dirtying tags,
        // sequence numbers, pool slabs, the event queue), then resets.
        let mut reused = world(2);
        let mut warm = Script::new(vec![
            vec![
                Ins::Send {
                    dst: 1,
                    bytes: 4096,
                },
                Ins::WaitAll,
            ],
            vec![
                Ins::Recv {
                    src: 0,
                    bytes: 4096,
                },
                Ins::WaitAll,
            ],
        ]);
        reused.run(&mut warm).unwrap();
        assert!(reused.events_processed() > 0);
        reused.reset(NoiseConfig::none());
        assert_eq!(reused.events_processed(), 0, "delta base must move");
        let mut s2 = prog();
        let t2 = reused.run(&mut s2).unwrap();

        assert_eq!(t1, t2, "makespan must not depend on reuse");
        assert_eq!(s1.finish, s2.finish, "per-rank finish times must match");
        assert_eq!(fresh.events_processed(), reused.events_processed());
        assert_eq!(fresh.protocol_actions(), reused.protocol_actions());
    }

    #[test]
    fn reset_reseeds_noise_like_a_fresh_world() {
        let noisy = NoiseConfig::light(99);
        let prog = || {
            Script::new(vec![
                vec![
                    Ins::Compute(SimTime::from_millis(2)),
                    Ins::Send {
                        dst: 1,
                        bytes: 4096,
                    },
                    Ins::WaitAll,
                ],
                vec![
                    Ins::Recv {
                        src: 0,
                        bytes: 4096,
                    },
                    Ins::WaitAll,
                ],
            ])
        };
        let mut fresh = World::new(Platform::whale(), 2, Placement::RoundRobin, noisy);
        let t1 = fresh.run(&mut prog()).unwrap();

        let mut reused = world(2); // built with *no* noise
        reused.run(&mut prog()).unwrap();
        reused.reset(noisy);
        let t2 = reused.run(&mut prog()).unwrap();
        assert_eq!(t1, t2, "reset must re-seed noise models identically");
    }

    #[test]
    fn eager_pingpong_completes() {
        let mut w = world(2);
        let mut s = Script::new(vec![
            vec![
                Ins::Send {
                    dst: 1,
                    bytes: 1024,
                },
                Ins::WaitAll,
            ],
            vec![
                Ins::Recv {
                    src: 0,
                    bytes: 1024,
                },
                Ins::WaitAll,
            ],
        ]);
        let makespan = w.run(&mut s).unwrap();
        assert!(makespan > SimTime::ZERO);
        // Receiver finishes after roughly o + G*s + L.
        let expect = w.platform().inter.uncontended_oneway(1024);
        let got = s.finish[1];
        assert!(
            got >= expect.scale(0.8) && got <= expect.scale(2.0),
            "got {got}, expected about {expect}"
        );
    }

    #[test]
    fn rendezvous_needs_both_sides() {
        // 1 MB message (rendezvous on whale). Both ranks post then wait;
        // wait polls continuously, so the handshake resolves inside it.
        let mut w = world(2);
        let mb = 1 << 20;
        let mut s = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes: mb }, Ins::WaitAll],
            vec![Ins::Recv { src: 0, bytes: mb }, Ins::WaitAll],
        ]);
        let makespan = w.run(&mut s).unwrap();
        let min = w.platform().inter.serialize(mb);
        assert!(
            makespan > min,
            "payload must at least serialize: {makespan} <= {min}"
        );
        assert!(w.protocol_actions() >= 2, "CTS + data start");
    }

    #[test]
    fn rendezvous_stalls_while_receiver_computes() {
        // The receiver computes for 50 ms before waiting; the sender waits
        // immediately. The payload cannot start until the receiver's wait
        // begins, so the sender is also stuck for ~50 ms. This is the
        // progress problem at the heart of the paper.
        let mb = 1 << 20;
        let mut w = world(2);
        let mut s = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes: mb }, Ins::WaitAll],
            vec![
                Ins::Recv { src: 0, bytes: mb },
                Ins::Compute(SimTime::from_millis(50)),
                Ins::WaitAll,
            ],
        ]);
        w.run(&mut s).unwrap();
        assert!(
            s.finish[0] >= SimTime::from_millis(50),
            "sender should stall on the unanswered RTS: {}",
            s.finish[0]
        );
    }

    #[test]
    fn eager_overlaps_with_compute() {
        // Eager message sent while the receiver computes: payload is already
        // buffered when the receiver finally posts+waits, so the receiver
        // finishes just after its compute phase.
        let bytes = 4096;
        let mut w = world(2);
        let mut s = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes }, Ins::WaitAll],
            vec![
                Ins::Compute(SimTime::from_millis(10)),
                Ins::Recv { src: 0, bytes },
                Ins::WaitAll,
            ],
        ]);
        w.run(&mut s).unwrap();
        let slack = SimTime::from_micros(100);
        assert!(
            s.finish[1] < SimTime::from_millis(10) + slack,
            "eager payload should already be there: {}",
            s.finish[1]
        );
    }

    #[test]
    fn unexpected_eager_pays_copy() {
        // Same as above but compare with a pre-posted receive: the
        // unexpected path must not be faster.
        let bytes = 8192;
        let mut w1 = world(2);
        let mut pre = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes }, Ins::WaitAll],
            vec![
                Ins::Recv { src: 0, bytes },
                Ins::Compute(SimTime::from_millis(5)),
                Ins::WaitAll,
            ],
        ]);
        w1.run(&mut pre).unwrap();
        let mut w2 = world(2);
        let mut unexp = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes }, Ins::WaitAll],
            vec![
                Ins::Compute(SimTime::from_millis(5)),
                Ins::Recv { src: 0, bytes },
                Ins::WaitAll,
            ],
        ]);
        w2.run(&mut unexp).unwrap();
        assert!(unexp.finish[1] >= pre.finish[1]);
    }

    #[test]
    fn deadlock_detected() {
        // Both ranks wait for a message that is never sent.
        let mut w = world(2);
        let mut s = Script::new(vec![
            vec![Ins::Recv { src: 1, bytes: 64 }, Ins::WaitAll],
            vec![Ins::Recv { src: 0, bytes: 64 }, Ins::WaitAll],
        ]);
        match w.run(&mut s) {
            Err(SimError::Deadlock { blocked }) => assert_eq!(blocked, vec![0, 1]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn fifo_matching_two_messages_same_tag() {
        // Two sends with the same tag must match the two receives in order;
        // sizes confirm the pairing via the debug assertion in match_pair.
        let mut w = world(2);
        let mut s = Script::new(vec![
            vec![
                Ins::Send { dst: 1, bytes: 100 },
                Ins::Send { dst: 1, bytes: 100 },
                Ins::WaitAll,
            ],
            vec![
                Ins::Recv { src: 0, bytes: 100 },
                Ins::Recv { src: 0, bytes: 100 },
                Ins::WaitAll,
            ],
        ]);
        w.run(&mut s).unwrap();
    }

    #[test]
    fn determinism_same_seed_same_makespan() {
        let run = |seed| {
            let mut w = World::new(
                Platform::whale(),
                4,
                Placement::RoundRobin,
                NoiseConfig::light(seed),
            );
            let mut s = Script::new(
                (0..4)
                    .map(|r| {
                        vec![
                            Ins::Compute(SimTime::from_micros(100)),
                            Ins::Send {
                                dst: (r + 1) % 4,
                                bytes: 2048,
                            },
                            Ins::Recv {
                                src: (r + 3) % 4,
                                bytes: 2048,
                            },
                            Ins::WaitAll,
                        ]
                    })
                    .collect(),
            );
            w.run(&mut s).unwrap()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn non_overtaking_mixed_protocols() {
        // Rank 0 sends a large rendezvous message, then a small eager one,
        // same tag. The eager envelope physically arrives first (the RTS
        // answer takes progress round-trips), but MPI non-overtaking
        // requires recv #1 to match the rendezvous message and recv #2 the
        // eager one — the size assertions in match_pair verify it.
        let mut w = world(2);
        let big = 1 << 20; // rendezvous on whale
        let small = 64; // eager
        let mut s = Script::new(vec![
            vec![
                Ins::Send { dst: 1, bytes: big },
                Ins::Send {
                    dst: 1,
                    bytes: small,
                },
                Ins::WaitAll,
            ],
            vec![
                Ins::Recv { src: 0, bytes: big },
                Ins::Recv {
                    src: 0,
                    bytes: small,
                },
                Ins::WaitAll,
            ],
        ]);
        w.run(&mut s).expect("must match in send order");
    }

    #[test]
    fn accounting_splits_time() {
        let mut w = world(2);
        let mut s = Script::new(vec![
            vec![
                Ins::Compute(SimTime::from_millis(2)),
                Ins::Send {
                    dst: 1,
                    bytes: 1 << 20,
                },
                Ins::WaitAll,
            ],
            vec![
                Ins::Recv {
                    src: 0,
                    bytes: 1 << 20,
                },
                Ins::Compute(SimTime::from_millis(5)),
                Ins::WaitAll,
            ],
        ]);
        w.run(&mut s).unwrap();
        let a0 = w.accounting(0);
        assert_eq!(a0.compute, SimTime::from_millis(2));
        assert!(a0.library > SimTime::ZERO, "posting costs library time");
        // Rank 0 stalls on the unanswered RTS while rank 1 computes 5 ms.
        assert!(
            a0.blocked >= SimTime::from_millis(2),
            "sender must be blocked: {a0:?}"
        );
        let total = w.accounting_total();
        assert_eq!(total.compute, SimTime::from_millis(7));
        assert!(a0.exposed_fraction() > 0.3);
    }

    #[test]
    fn trace_segments_match_accounting() {
        let mut w = world(2);
        w.enable_trace();
        let mut s = Script::new(vec![
            vec![
                Ins::Compute(SimTime::from_millis(1)),
                Ins::Send {
                    dst: 1,
                    bytes: 1 << 20,
                },
                Ins::WaitAll,
            ],
            vec![
                Ins::Recv {
                    src: 0,
                    bytes: 1 << 20,
                },
                Ins::Compute(SimTime::from_millis(3)),
                Ins::WaitAll,
            ],
        ]);
        w.run(&mut s).unwrap();
        // Per-rank sums of traced segments equal the accounting.
        for r in 0..2 {
            let acct = w.accounting(r);
            let mut sums = [SimTime::ZERO; 3];
            let mut last_end = SimTime::ZERO;
            for seg in w.trace().iter().filter(|s| s.rank == r) {
                assert!(seg.start >= last_end, "segments must not overlap");
                last_end = seg.end;
                let idx = match seg.kind {
                    SegmentKind::Compute => 0,
                    SegmentKind::Library => 1,
                    SegmentKind::Blocked => 2,
                };
                sums[idx] += seg.end - seg.start;
            }
            assert_eq!(sums[0], acct.compute, "rank {r} compute");
            assert_eq!(sums[1], acct.library, "rank {r} library");
            assert_eq!(sums[2], acct.blocked, "rank {r} blocked");
        }
        // The Chrome export is valid-enough JSON: bracketed, one event per
        // segment.
        let mut buf = Vec::new();
        w.write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("[\n"));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.matches("\"ph\": \"X\"").count(), w.trace().len());
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut w = world(2);
        let mut s = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes: 64 }, Ins::WaitAll],
            vec![Ins::Recv { src: 0, bytes: 64 }, Ins::WaitAll],
        ]);
        w.run(&mut s).unwrap();
        assert!(w.trace().is_empty());
    }

    #[test]
    fn tags_allocate_sequentially() {
        let mut w = world(2);
        assert_eq!(w.alloc_tag(), Tag(0));
        assert_eq!(w.alloc_tag(), Tag(1));
    }

    #[test]
    fn self_send_panics() {
        let mut w = world(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.isend(0, 0, Tag(0), 10, SimTime::ZERO)
        }));
        assert!(result.is_err());
    }

    /// Rank 0 sends `bytes` with a staged payload; rank 1 receives. Both
    /// wait to completion.
    struct PayloadPingPong {
        bytes: usize,
        payload: Option<crate::bufpool::Payload>,
        send: Option<SendHandle>,
        recv: Option<RecvHandle>,
        posted: [bool; 2],
    }

    impl RankBehavior for PayloadPingPong {
        fn step(&mut self, w: &mut World, r: RankId) -> Step {
            if !self.posted[r] {
                self.posted[r] = true;
                if r == 0 {
                    let at = w.rank_now(0) + w.o_send(0, 1);
                    self.send =
                        Some(w.isend_payload(0, 1, Tag(0), self.bytes, at, self.payload.take()));
                    return Step::Busy(w.o_send(0, 1));
                }
                let at = w.rank_now(1) + w.o_recv(1, 0);
                self.recv = Some(w.irecv(1, 0, Tag(0), self.bytes, at));
                return Step::Busy(w.o_recv(1, 0));
            }
            let now = w.rank_now(r);
            w.poll(r, now);
            let done = if r == 0 {
                w.send_done(self.send.unwrap(), now)
            } else {
                w.recv_done(self.recv.unwrap(), now)
            };
            if done {
                Step::Done
            } else {
                Step::Block
            }
        }
    }

    fn run_payload_pingpong(bytes: usize) {
        let mut w = world(2);
        let pool = w.payload_pool();
        let mut buf = pool.acquire(bytes);
        buf.as_mut_slice()[..8].copy_from_slice(&[9, 8, 7, 6, 5, 4, 3, 2]);
        let mut b = PayloadPingPong {
            bytes,
            payload: Some(buf.share()),
            send: None,
            recv: None,
            posted: [false; 2],
        };
        w.run(&mut b).unwrap();
        let got = w
            .take_recv_payload(b.recv.unwrap())
            .expect("payload delivered");
        assert_eq!(got.len(), bytes);
        assert_eq!(&got.as_slice()[..8], &[9, 8, 7, 6, 5, 4, 3, 2]);
        // Second take is empty; dropping the handle recycles the slab.
        assert!(w.take_recv_payload(b.recv.unwrap()).is_none());
        assert_eq!(pool.free_slabs(), 0);
        drop(got);
        assert_eq!(pool.free_slabs(), 1);
    }

    #[test]
    fn payload_rides_eager_message() {
        run_payload_pingpong(1024);
    }

    #[test]
    fn payload_rides_rendezvous_message() {
        run_payload_pingpong(1 << 20);
    }

    #[test]
    fn payload_does_not_change_timing() {
        // Byte-identical makespans with and without staged payloads: the
        // network model never looks at the handle.
        let run = |with_payload: bool| {
            let mut w = world(2);
            let payload = with_payload.then(|| w.payload_pool().acquire(4096).share());
            let mut b = PayloadPingPong {
                bytes: 4096,
                payload,
                send: None,
                recv: None,
                posted: [false; 2],
            };
            w.run(&mut b).unwrap()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn events_processed_counts_per_world() {
        let mut w = world(2);
        assert_eq!(w.events_processed(), 0);
        let mut s = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes: 64 }, Ins::WaitAll],
            vec![Ins::Recv { src: 0, bytes: 64 }, Ins::WaitAll],
        ]);
        w.run(&mut s).unwrap();
        assert!(w.events_processed() > 0);
    }

    // ---- fault injection ------------------------------------------------

    /// A 4-rank ring exchange mixing eager (2 KiB) and rendezvous (1 MiB)
    /// traffic — enough protocol variety to exercise every fault hook.
    fn ring_script() -> Script {
        Script::new(
            (0..4)
                .map(|r| {
                    vec![
                        Ins::Compute(SimTime::from_micros(100)),
                        Ins::Send {
                            dst: (r + 1) % 4,
                            bytes: 2048,
                        },
                        Ins::Send {
                            dst: (r + 1) % 4,
                            bytes: 1 << 20,
                        },
                        Ins::Recv {
                            src: (r + 3) % 4,
                            bytes: 2048,
                        },
                        Ins::Recv {
                            src: (r + 3) % 4,
                            bytes: 1 << 20,
                        },
                        Ins::WaitAll,
                    ]
                })
                .collect(),
        )
    }

    #[test]
    fn faults_off_matches_default_world() {
        let mut w1 = world(4);
        let m1 = w1.run(&mut ring_script()).unwrap();
        let mut w2 = world(4);
        w2.set_faults(&FaultConfig::off());
        assert!(!w2.faults_active());
        let m2 = w2.run(&mut ring_script()).unwrap();
        assert_eq!(m1, m2, "faults-off must be bit-identical to no faults");
        assert_eq!(w2.fault_stats(), FaultStats::default());
    }

    #[test]
    fn faults_same_seed_same_run() {
        let run = |seed| {
            let mut w = world(4);
            w.set_faults(&FaultConfig::light(seed));
            assert!(w.faults_active());
            let makespan = w.run(&mut ring_script()).unwrap();
            (makespan, w.fault_stats())
        };
        assert_eq!(run(7), run(7), "same fault seed must replay identically");
        assert_ne!(
            run(7).0,
            run(8).0,
            "different fault seeds should perturb timing"
        );
    }

    #[test]
    fn total_loss_surfaces_timeout_instead_of_hanging() {
        let mut w = world(2);
        w.set_faults(&FaultConfig {
            drop_prob: 1.0,
            retry_timeout: SimTime::from_micros(200),
            max_retries: 2,
            arm_timeouts: true,
            ..FaultConfig::off()
        });
        let mb = 1 << 20;
        let mut s = Script::new(vec![
            vec![Ins::Send { dst: 1, bytes: mb }, Ins::WaitAll],
            vec![Ins::Recv { src: 0, bytes: mb }, Ins::WaitAll],
        ]);
        match w.run(&mut s) {
            Err(SimError::Timeout {
                src,
                dst,
                bytes,
                attempts,
                ..
            }) => {
                assert_eq!((src, dst, bytes), (0, 1, mb));
                assert_eq!(attempts, 2);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(w.fault_stats().timeouts, 1);
        assert!(w.fault_stats().drops >= 1);
    }

    #[test]
    fn seeded_losses_recover_via_retries() {
        let mut w = world(4);
        w.set_faults(&FaultConfig {
            seed: 1234,
            drop_prob: 0.5,
            retry_timeout: SimTime::from_micros(500),
            max_retries: 12,
            arm_timeouts: true,
            ..FaultConfig::off()
        });
        let makespan = w
            .run(&mut ring_script())
            .expect("retries must mask a 50% loss rate");
        assert!(makespan > SimTime::ZERO);
        let stats = w.fault_stats();
        assert!(stats.drops > 0, "a 50% drop rate must drop something");
        assert!(stats.retries > 0, "drops must trigger retransmissions");
        assert_eq!(stats.timeouts, 0);
    }

    #[test]
    fn duplicates_are_suppressed_not_redelivered() {
        let mut w = world(4);
        w.set_faults(&FaultConfig {
            seed: 9,
            dup_prob: 1.0,
            ..FaultConfig::off()
        });
        w.run(&mut ring_script())
            .expect("duplication must not corrupt matching");
        let stats = w.fault_stats();
        assert!(stats.dups > 0);
        assert!(
            stats.dup_suppressed >= stats.dups,
            "every duplicated event must be swallowed: {stats:?}"
        );
    }
}
