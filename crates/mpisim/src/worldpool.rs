//! Thread-local reuse of [`World`] allocations across consecutive
//! simulations.
//!
//! A sweep runs thousands of independent microbenchmarks, and each one used
//! to build a `World` from scratch: rank vectors, envelope-sequencing
//! tables, the event-queue heap and a cold payload pool, all torn down
//! microseconds later. This module keeps a small per-thread cache of
//! recently used worlds keyed on their immutable shape — `(platform,
//! nranks, placement)` — and hands them back through [`World::reset`],
//! which zeroes all logical state while keeping every allocation (and the
//! payload-pool slabs) warm.
//!
//! The cache is strictly thread-local, so it adds no locks to the sweep hot
//! path and composes with the persistent worker pool in `simcore::par`:
//! each pool worker accumulates its own warm worlds across the sweeps it
//! participates in.
//!
//! Determinism: `World::reset` guarantees a reused world is observationally
//! identical to a fresh one (same noise seeds, same fault model from the
//! process-global config, same virtual-time behaviour), so simulation
//! output never depends on which thread ran a point or how many points it
//! ran before — the `jobs`-invariance contract is preserved by
//! construction. Set `NBC_WORLD_REUSE=off` (or `0`) to bypass the cache and
//! build every world fresh; outputs must be byte-identical either way.

use crate::types::NoiseConfig;
use crate::world::World;
use netmodel::{Placement, Platform};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Worlds cached per thread. Sweeps alternate between a handful of shapes
/// (one per platform × rank-count in the sweep grid); beyond that, oldest
/// entries are evicted — a miss only costs what it always cost: `World::new`.
/// Sized for the bench sweep grids (up to 2 platforms × 4 rank counts) so
/// coarse per-worker batches never thrash shapes out mid-sweep.
const MAX_CACHED_PER_THREAD: usize = 8;

struct CachedWorld {
    platform: Platform,
    nranks: usize,
    placement: Placement,
    /// The partitioning mode (`crate::worldpar::mode_key`) the world was
    /// cached under. Results are mode-independent, but a cached world's
    /// engine configuration and partition diagnostics are not — and a mode
    /// flip mid-sweep (tests, A/B drivers) must not hand back a world
    /// leased under the old mode.
    par_key: u32,
    world: World,
}

thread_local! {
    static CACHE: RefCell<Vec<CachedWorld>> = const { RefCell::new(Vec::new()) };
}

/// 0 = follow `NBC_WORLD_REUSE`, 1 = forced off, 2 = forced on.
static ENABLED_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn enabled_env() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        !matches!(
            std::env::var("NBC_WORLD_REUSE").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        )
    })
}

/// Is world reuse active? On by default; `NBC_WORLD_REUSE=off` or
/// [`set_enabled`]`(false)` disables it (every lease builds a fresh world).
pub fn enabled() -> bool {
    match ENABLED_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => enabled_env(),
    }
}

/// Programmatic override for tests and A/B comparisons: `Some(on)` forces
/// the state, `None` restores `NBC_WORLD_REUSE` resolution.
pub fn set_enabled(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    ENABLED_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Number of worlds cached on the calling thread (test hook).
pub fn cached_on_this_thread() -> usize {
    CACHE.with(|c| c.borrow().len())
}

/// Drop every world cached on the calling thread.
pub fn clear_this_thread() {
    CACHE.with(|c| c.borrow_mut().clear());
}

fn lease(platform: &Platform, nranks: usize, placement: Placement, noise: NoiseConfig) -> World {
    if !enabled() {
        return World::new(platform.clone(), nranks, placement, noise);
    }
    let par_key = crate::worldpar::mode_key();
    CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        let hit = cache.iter().position(|w| {
            w.nranks == nranks
                && w.placement == placement
                && w.par_key == par_key
                && w.platform == *platform
        });
        match hit {
            Some(i) => {
                let mut entry = cache.swap_remove(i);
                entry.world.reset(noise);
                entry.world
            }
            None => World::new(platform.clone(), nranks, placement, noise),
        }
    })
}

fn release(platform: &Platform, nranks: usize, placement: Placement, mut world: World) {
    // Traces must not wait for the cache entry's destructor: pool worker
    // threads never exit, so their thread-local destructors never run.
    world.publish_trace();
    if !enabled() {
        return;
    }
    CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        cache.push(CachedWorld {
            platform: platform.clone(),
            nranks,
            placement,
            par_key: crate::worldpar::mode_key(),
            world,
        });
        if cache.len() > MAX_CACHED_PER_THREAD {
            cache.remove(0); // evict oldest
        }
    });
}

/// Run `f` with a world of the given shape, drawn from (and returned to)
/// the calling thread's cache. The world `f` sees is indistinguishable from
/// a freshly built one; see the module docs for the determinism argument.
///
/// If `f` panics the world is dropped, not recycled.
pub fn with_world<R>(
    platform: &Platform,
    nranks: usize,
    placement: Placement,
    noise: NoiseConfig,
    f: impl FnOnce(&mut World) -> R,
) -> R {
    let mut world = lease(platform, nranks, placement, noise);
    let out = f(&mut world);
    release(platform, nranks, placement, world);
    out
}

/// Populate the calling thread's cache with a warm world of the given
/// shape, pre-warming `payload_slabs` payload slabs of `payload_bytes`'s
/// size class — the untimed pre-build hook for sweep drivers: run this on
/// every thread a sweep will use (e.g. via `simcore::par::on_all_workers`)
/// before the clock starts, and the measured region neither constructs
/// worlds nor faults payload slabs in. A no-op when reuse is disabled
/// (there is nothing to keep the warm world alive in).
pub fn prewarm(
    platform: &Platform,
    nranks: usize,
    placement: Placement,
    noise: NoiseConfig,
    payload_bytes: usize,
    payload_slabs: usize,
) {
    if !enabled() {
        return;
    }
    with_world(platform, nranks, placement, noise, |w| {
        if payload_slabs > 0 {
            w.prewarm_payloads(payload_bytes, payload_slabs);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `set_enabled` is process-global; serialize the tests that toggle it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn shape() -> (Platform, usize, Placement, NoiseConfig) {
        (
            Platform::whale(),
            4,
            Placement::RoundRobin,
            NoiseConfig::none(),
        )
    }

    #[test]
    fn with_world_caches_and_reuses() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (p, n, pl, noise) = shape();
        clear_this_thread();
        set_enabled(Some(true));
        with_world(&p, n, pl, noise, |w| assert_eq!(w.nranks(), 4));
        assert_eq!(cached_on_this_thread(), 1);
        // Second lease of the same shape must not grow the cache.
        with_world(&p, n, pl, noise, |w| assert_eq!(w.events_processed(), 0));
        assert_eq!(cached_on_this_thread(), 1);
        // A different shape coexists.
        with_world(&p, 8, pl, noise, |w| assert_eq!(w.nranks(), 8));
        assert_eq!(cached_on_this_thread(), 2);
        set_enabled(None);
        clear_this_thread();
    }

    #[test]
    fn disabled_reuse_caches_nothing() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (p, n, pl, noise) = shape();
        clear_this_thread();
        set_enabled(Some(false));
        with_world(&p, n, pl, noise, |_| ());
        assert_eq!(cached_on_this_thread(), 0);
        set_enabled(None);
    }

    #[test]
    fn prewarm_populates_cache_and_slabs() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (p, n, pl, noise) = shape();
        clear_this_thread();
        set_enabled(Some(true));
        prewarm(&p, n, pl, noise, 64 * 1024, 8);
        assert_eq!(cached_on_this_thread(), 1);
        // The warm world must come back on the next lease with its slabs.
        with_world(&p, n, pl, noise, |w| {
            assert!(
                w.payload_pool().free_slabs() >= 8,
                "prewarmed slabs missing"
            );
        });
        set_enabled(None);
        clear_this_thread();
    }

    #[test]
    fn cache_is_bounded() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (p, _, pl, noise) = shape();
        clear_this_thread();
        set_enabled(Some(true));
        for n in 2..2 + MAX_CACHED_PER_THREAD + 3 {
            with_world(&p, n, pl, noise, |_| ());
        }
        assert_eq!(cached_on_this_thread(), MAX_CACHED_PER_THREAD);
        set_enabled(None);
        clear_this_thread();
    }
}
