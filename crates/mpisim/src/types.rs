//! Identifier and configuration types for the simulated MPI layer.

/// A simulated process (MPI rank).
pub type RankId = usize;

/// Message tag. Collective schedules allocate one tag per operation
/// instance so concurrently outstanding operations never cross-match;
/// within one `(source, tag)` pair, matching is FIFO, exactly as in MPI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u64);

/// Handle to a posted non-blocking send: an index into the *sending*
/// rank's message arena. Per-rank arenas (rather than one world-global
/// `Vec`) are what lets the partitioned engine give each partition
/// exclusive ownership of its ranks' message state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SendHandle {
    pub(crate) rank: u32,
    pub(crate) idx: u32,
}

/// Handle to a posted non-blocking receive: an index into the *receiving*
/// rank's request arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecvHandle {
    pub(crate) rank: u32,
    pub(crate) idx: u32,
}

/// Compute-noise configuration for a simulation (see
/// [`simcore::rng::NoiseModel`]).
///
/// The paper attributes ADCL's occasional wrong decision to measurement
/// outliers caused by OS interference; enabling noise exercises the
/// statistical filter in the selection logic and makes verification runs
/// realistic.
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Master seed; every rank derives an independent stream.
    pub seed: u64,
    /// Relative stddev of multiplicative jitter on compute phases.
    pub jitter: f64,
    /// Probability of an OS-noise spike per compute phase.
    pub spike_prob: f64,
    /// Relative magnitude of a spike.
    pub spike_scale: f64,
}

impl NoiseConfig {
    /// No noise at all: fully deterministic compute times.
    pub fn none() -> Self {
        NoiseConfig {
            seed: 0,
            jitter: 0.0,
            spike_prob: 0.0,
            spike_scale: 0.0,
        }
    }

    /// A light, realistic noise level: 0.5 % jitter, 1 in 500 compute
    /// phases suffers a ~2x spike.
    pub fn light(seed: u64) -> Self {
        NoiseConfig {
            seed,
            jitter: 0.005,
            spike_prob: 0.002,
            spike_scale: 1.0,
        }
    }

    /// Heavy noise for stress-testing the measurement filter.
    pub fn heavy(seed: u64) -> Self {
        NoiseConfig {
            seed,
            jitter: 0.02,
            spike_prob: 0.01,
            spike_scale: 3.0,
        }
    }

    /// True if this configuration never perturbs anything.
    pub fn is_none(&self) -> bool {
        self.jitter == 0.0 && self.spike_prob == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_presets() {
        assert!(NoiseConfig::none().is_none());
        assert!(!NoiseConfig::light(1).is_none());
        assert!(NoiseConfig::heavy(1).spike_scale > NoiseConfig::light(1).spike_scale);
    }

    #[test]
    fn tags_order() {
        assert!(Tag(1) < Tag(2));
        assert_eq!(Tag(7), Tag(7));
    }
}
