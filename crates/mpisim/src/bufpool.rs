//! Rank-local payload buffer pool: reusable, `Arc`-backed message buffers.
//!
//! Before this module existed the simulator moved no payload bytes at all —
//! and the obvious way to add them (a fresh `Vec<u8>` per message, copied at
//! every hop) would put an O(msglen) allocate+copy on the hot path of every
//! simulated send, dwarfing the event-processing cost for the paper's
//! megabyte-scale sweeps. Instead, payloads are carried as [`Payload`]
//! handles (`Arc<PooledBuf>`):
//!
//! * a sender *acquires* a buffer from its world's [`BufPool`], fills it,
//!   and *shares* it into an immutable handle;
//! * the handle rides on the in-flight message — eager delivery, rendezvous
//!   payload injection and executor round staging all move the handle
//!   (a pointer bump), never the bytes;
//! * fan-out is free: one staged buffer can back many concurrent messages
//!   (`Arc::clone`), which is exactly what tree broadcasts do;
//! * when the last handle drops, the slab returns to its home pool's
//!   size-class shelf and is reused by a later acquire — steady-state
//!   simulations allocate O(pool depth) buffers total, not O(messages).
//!
//! Buffers are grouped in power-of-two size classes (minimum
//! [`MIN_CLASS_BYTES`]); an acquire pops a free slab of the right class or,
//! on a miss, heap-allocates one and records it via
//! [`simcore::stats::record_payload_alloc`] so the perf harness can report
//! `allocs_per_event`. Reused slabs are *not* zeroed: the content of a
//! freshly acquired buffer is unspecified, the acquirer must write what it
//! needs. The pool is internally synchronized (mutexed shelves behind an
//! `Arc`), so handles may drop on any thread of a parallel sweep.
//!
//! Soundness of reuse: a slab is only ever shelved by the *last* owner's
//! drop (`Arc` guarantees exclusivity at that point), and acquires hand out
//! each shelved slab at most once — two live buffers can therefore never
//! alias, which `no_aliasing_across_in_flight_buffers` below locks in.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Smallest buffer class, in bytes. Acquires below this size are rounded up.
pub const MIN_CLASS_BYTES: usize = 64;

/// Number of power-of-two size classes; the largest class holds slabs of
/// `MIN_CLASS_BYTES << (NCLASSES - 1)` bytes (128 GiB — effectively
/// unbounded for simulation payloads). Larger requests fall back to
/// unpooled one-shot allocations.
const NCLASSES: usize = 32;

/// Size class for a requested length: smallest power-of-two capacity (at
/// least [`MIN_CLASS_BYTES`]) that fits `len`.
fn class_of(len: usize) -> usize {
    let cap = len.max(MIN_CLASS_BYTES).next_power_of_two();
    (cap / MIN_CLASS_BYTES).trailing_zeros() as usize
}

fn class_capacity(class: usize) -> usize {
    MIN_CLASS_BYTES << class
}

struct PoolInner {
    /// Free slabs per size class. Every slab on shelf `c` has length
    /// exactly `class_capacity(c)`.
    shelves: Vec<Mutex<Vec<Box<[u8]>>>>,
    acquires: AtomicU64,
    reuses: AtomicU64,
    allocs: AtomicU64,
    recycles: AtomicU64,
}

/// Counter snapshot of one pool (see [`BufPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufPoolStats {
    /// Total `acquire` calls.
    pub acquires: u64,
    /// Acquires satisfied from a shelf (no heap allocation).
    pub reuses: u64,
    /// Acquires that had to heap-allocate (pool misses).
    pub allocs: u64,
    /// Slabs returned to a shelf by a last-handle drop.
    pub recycles: u64,
}

/// A pool of reusable payload slabs. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct BufPool {
    inner: Arc<PoolInner>,
}

impl Default for BufPool {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufPool")
            .field("free", &self.free_slabs())
            .field("stats", &s)
            .finish()
    }
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> BufPool {
        BufPool {
            inner: Arc::new(PoolInner {
                shelves: (0..NCLASSES).map(|_| Mutex::new(Vec::new())).collect(),
                acquires: AtomicU64::new(0),
                reuses: AtomicU64::new(0),
                allocs: AtomicU64::new(0),
                recycles: AtomicU64::new(0),
            }),
        }
    }

    /// Acquire a writable buffer of logical length `len`. Pops a free slab
    /// of `len`'s size class if one exists; otherwise heap-allocates one
    /// (recorded as a payload allocation). The buffer's content is
    /// **unspecified** — the caller fills what it cares about.
    pub fn acquire(&self, len: usize) -> PooledBuf {
        self.inner.acquires.fetch_add(1, Ordering::Relaxed);
        let class = class_of(len);
        if class >= NCLASSES {
            // Absurdly large request: one-shot allocation, no recycling.
            self.inner.allocs.fetch_add(1, Ordering::Relaxed);
            return PooledBuf::unpooled(len);
        }
        let reused = self.inner.shelves[class].lock().unwrap().pop();
        let buf = match reused {
            Some(slab) => {
                debug_assert_eq!(slab.len(), class_capacity(class));
                self.inner.reuses.fetch_add(1, Ordering::Relaxed);
                slab
            }
            None => {
                self.inner.allocs.fetch_add(1, Ordering::Relaxed);
                simcore::stats::record_payload_alloc();
                vec![0u8; class_capacity(class)].into_boxed_slice()
            }
        };
        PooledBuf {
            buf,
            len,
            home: Some(Arc::downgrade(&self.inner)),
        }
    }

    /// Shelve slabs until at least `count` free slabs of `len`'s size class
    /// exist — the untimed warm-up path: a sweep driver calls this before
    /// its measured region so the first simulated sends find warm slabs
    /// instead of paying a heap allocation (and an `allocs_per_event` tick)
    /// inside the timing window. Deliberately not counted as acquires or
    /// pool misses: these slabs were never requested by a simulation.
    pub fn prewarm(&self, len: usize, count: usize) {
        let class = class_of(len);
        if class >= NCLASSES {
            return;
        }
        let mut shelf = self.inner.shelves[class].lock().unwrap();
        while shelf.len() < count {
            shelf.push(vec![0u8; class_capacity(class)].into_boxed_slice());
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufPoolStats {
        BufPoolStats {
            acquires: self.inner.acquires.load(Ordering::Relaxed),
            reuses: self.inner.reuses.load(Ordering::Relaxed),
            allocs: self.inner.allocs.load(Ordering::Relaxed),
            recycles: self.inner.recycles.load(Ordering::Relaxed),
        }
    }

    /// Number of free slabs currently shelved (all classes).
    pub fn free_slabs(&self) -> usize {
        self.inner
            .shelves
            .iter()
            .map(|s| s.lock().unwrap().len())
            .sum()
    }
}

/// A payload buffer leased from a [`BufPool`] (or standalone, see
/// [`PooledBuf::unpooled`]). Mutable while exclusively owned; call
/// [`PooledBuf::share`] to freeze it into an immutable [`Payload`] handle
/// for attaching to messages. Dropping the last handle recycles the slab
/// into its home pool.
pub struct PooledBuf {
    /// The slab; its length is the class capacity (≥ `len`).
    buf: Box<[u8]>,
    /// Logical payload length.
    len: usize,
    /// Home pool for recycling; `None` for unpooled buffers (and after the
    /// slab has been returned).
    home: Option<Weak<PoolInner>>,
}

impl PooledBuf {
    /// A standalone buffer that is heap-allocated now and freed (not
    /// recycled) on drop — the "naive" per-message allocation the pool
    /// replaces. Also counted as a payload allocation.
    pub fn unpooled(len: usize) -> PooledBuf {
        simcore::stats::record_payload_alloc();
        PooledBuf {
            buf: vec![0u8; len.max(1)].into_boxed_slice(),
            len,
            home: None,
        }
    }

    /// Logical payload length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if this buffer recycles into a pool when the last handle drops.
    pub fn is_pooled(&self) -> bool {
        self.home.is_some()
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len]
    }

    /// The payload bytes, writable (only before [`PooledBuf::share`]).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf[..self.len]
    }

    /// Freeze into an immutable, cloneable handle for in-flight messages.
    pub fn share(self) -> Payload {
        Arc::new(self)
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.len)
            .field("capacity", &self.buf.len())
            .field("pooled", &self.home.is_some())
            .finish()
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let Some(home) = self.home.take() else {
            return;
        };
        // The pool may already be gone (world dropped before a stray
        // handle); then the slab is simply freed.
        let Some(inner) = home.upgrade() else {
            return;
        };
        let slab = std::mem::take(&mut self.buf);
        // Slab length is exactly its class capacity, so the class can be
        // recovered from it.
        let class = class_of(slab.len());
        debug_assert_eq!(class_capacity(class), slab.len());
        inner.shelves[class].lock().unwrap().push(slab);
        inner.recycles.fetch_add(1, Ordering::Relaxed);
    }
}

/// An immutable, shareable payload handle. Cloning is a pointer bump; the
/// backing slab recycles into its pool when the last clone drops.
pub type Payload = Arc<PooledBuf>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_round_up() {
        assert_eq!(class_of(0), 0);
        assert_eq!(class_of(1), 0);
        assert_eq!(class_of(64), 0);
        assert_eq!(class_of(65), 1);
        assert_eq!(class_of(128), 1);
        assert_eq!(class_of(256 * 1024), class_of(200 * 1024));
        assert!(class_capacity(class_of(300)) >= 300);
    }

    #[test]
    fn no_aliasing_across_in_flight_buffers() {
        // Two concurrently live buffers must have distinct backing memory,
        // even though they share a size class.
        let pool = BufPool::new();
        let mut a = pool.acquire(1024);
        let mut b = pool.acquire(1024);
        a.as_mut_slice().fill(0xAA);
        b.as_mut_slice().fill(0xBB);
        assert!(a.as_slice().iter().all(|&x| x == 0xAA));
        assert!(b.as_slice().iter().all(|&x| x == 0xBB));
        // Shared handles keep the exclusivity: cloning the handle must not
        // return the slab while any clone is alive.
        let pa = a.share();
        let pa2 = Arc::clone(&pa);
        drop(pa);
        assert_eq!(pool.free_slabs(), 0, "clone still alive");
        drop(pa2);
        assert_eq!(pool.free_slabs(), 1, "last clone recycles");
    }

    #[test]
    fn recycle_and_reuse_same_slab() {
        let pool = BufPool::new();
        let mut a = pool.acquire(4096);
        a.as_mut_slice().fill(7);
        let ptr_a = a.as_slice().as_ptr() as usize;
        drop(a);
        assert_eq!(pool.free_slabs(), 1);
        let b = pool.acquire(3000); // same class (4096)
        assert_eq!(
            b.as_slice().as_ptr() as usize,
            ptr_a,
            "reuse must hand back the shelved slab"
        );
        let s = pool.stats();
        assert_eq!(s.acquires, 2);
        assert_eq!(s.allocs, 1);
        assert_eq!(s.reuses, 1);
        assert_eq!(s.recycles, 1);
    }

    #[test]
    fn reuse_content_is_whatever_was_left() {
        // Contract check: reused slabs are not zeroed.
        let pool = BufPool::new();
        let mut a = pool.acquire(64);
        a.as_mut_slice().fill(0x5A);
        drop(a);
        let b = pool.acquire(64);
        assert!(b.as_slice().iter().all(|&x| x == 0x5A));
    }

    #[test]
    fn miss_records_global_alloc() {
        let before = simcore::stats::payload_allocs();
        let pool = BufPool::new();
        let _a = pool.acquire(128);
        assert!(simcore::stats::payload_allocs() > before);
    }

    #[test]
    fn unpooled_buffers_do_not_recycle() {
        let b = PooledBuf::unpooled(512);
        assert!(!b.is_pooled());
        assert_eq!(b.len(), 512);
        drop(b); // must not panic; nothing to shelve
    }

    #[test]
    fn pool_drop_before_handle_is_safe() {
        let pool = BufPool::new();
        let buf = pool.acquire(256).share();
        drop(pool);
        drop(buf); // weak home upgrade fails; slab is freed
    }

    #[test]
    fn zero_length_payload_supported() {
        let pool = BufPool::new();
        let b = pool.acquire(0);
        assert!(b.is_empty());
        assert_eq!(b.as_slice().len(), 0);
    }
}
