//! Reusable [`RankBehavior`] workloads.
//!
//! [`NeighborExchange`] is the reference *splittable* behaviour: a
//! multi-round ring exchange whose per-rank state sits behind an
//! `Arc<Vec<Mutex<..>>>`, so [`RankBehavior::split_par`] can hand every
//! partition a clone. Partitions own disjoint rank sets, so the per-rank
//! locks are never contended — they exist to make the sharing safe, not to
//! synchronize. Identity tests, benchmarks, and the scaling gate all drive
//! the engine through it.

use crate::types::{NoiseConfig, RankId, RecvHandle, SendHandle, Tag};
use crate::world::{RankBehavior, Step, World};
use simcore::SimTime;
use std::sync::{Arc, Mutex};

/// Where one rank is inside its current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// About to run the round's compute block.
    Compute,
    /// Compute done; post the send to the right neighbour.
    PostSend,
    /// Send posted; post the receive from the left neighbour.
    PostRecv,
    /// Both posted; poll and wait for completion.
    Wait,
}

/// Per-rank interpreter state.
#[derive(Debug)]
struct RankProg {
    round: usize,
    phase: Phase,
    sends: Vec<SendHandle>,
    recvs: Vec<RecvHandle>,
    finish: SimTime,
}

impl RankProg {
    fn new() -> Self {
        RankProg {
            round: 0,
            phase: Phase::Compute,
            sends: Vec::new(),
            recvs: Vec::new(),
            finish: SimTime::ZERO,
        }
    }
}

/// A ring neighbour exchange: each round, every rank computes, sends to
/// `(r + 1) % n`, receives from `(r + n - 1) % n`, and waits for both.
/// Rounds alternate between a small (eager) and a large (rendezvous)
/// message size, so one run exercises both protocol paths.
///
/// Tags are `Tag(round)` — allocated identically on every rank without
/// touching the world-global tag counter, which keeps the behaviour
/// partition-safe.
pub struct NeighborExchange {
    nranks: usize,
    rounds: usize,
    small: usize,
    large: usize,
    compute: SimTime,
    progs: Arc<Vec<Mutex<RankProg>>>,
}

impl NeighborExchange {
    /// `rounds` rounds over `nranks` ranks, alternating `small` (even
    /// rounds) and `large` (odd rounds) message sizes, with 20 µs of
    /// compute per round.
    pub fn new(nranks: usize, rounds: usize, small: usize, large: usize) -> Self {
        NeighborExchange {
            nranks,
            rounds,
            small,
            large,
            compute: SimTime::from_micros(20),
            progs: Arc::new((0..nranks).map(|_| Mutex::new(RankProg::new())).collect()),
        }
    }

    /// Per-rank finish times (valid after a completed run).
    pub fn finish_times(&self) -> Vec<SimTime> {
        self.progs
            .iter()
            .map(|p| p.lock().unwrap().finish)
            .collect()
    }

    fn clone_shared(&self) -> NeighborExchange {
        NeighborExchange {
            nranks: self.nranks,
            rounds: self.rounds,
            small: self.small,
            large: self.large,
            compute: self.compute,
            progs: Arc::clone(&self.progs),
        }
    }
}

impl RankBehavior for NeighborExchange {
    fn step(&mut self, w: &mut World, r: RankId) -> Step {
        let mut p = self.progs[r].lock().unwrap();
        loop {
            if p.round >= self.rounds {
                p.finish = w.rank_now(r);
                return Step::Done;
            }
            match p.phase {
                Phase::Compute => {
                    p.phase = Phase::PostSend;
                    return Step::Compute(self.compute);
                }
                Phase::PostSend => {
                    let dst = (r + 1) % self.nranks;
                    let bytes = if p.round.is_multiple_of(2) {
                        self.small
                    } else {
                        self.large
                    };
                    let tag = Tag(p.round as u64);
                    let at = w.rank_now(r) + w.o_send(r, dst);
                    let h = w.isend(r, dst, tag, bytes, at);
                    p.sends.push(h);
                    p.phase = Phase::PostRecv;
                    return Step::Busy(w.o_send(r, dst));
                }
                Phase::PostRecv => {
                    let src = (r + self.nranks - 1) % self.nranks;
                    let bytes = if p.round.is_multiple_of(2) {
                        self.small
                    } else {
                        self.large
                    };
                    let tag = Tag(p.round as u64);
                    let at = w.rank_now(r) + w.o_recv(r, src);
                    let h = w.irecv(r, src, tag, bytes, at);
                    p.recvs.push(h);
                    p.phase = Phase::Wait;
                    return Step::Busy(w.o_recv(r, src));
                }
                Phase::Wait => {
                    let now = w.rank_now(r);
                    w.poll(r, now);
                    let done = p.sends.iter().all(|&h| w.send_done(h, now))
                        && p.recvs.iter().all(|&h| w.recv_done(h, now));
                    if done {
                        p.sends.clear();
                        p.recvs.clear();
                        p.round += 1;
                        p.phase = Phase::Compute;
                        // Fall through: start the next round immediately.
                    } else {
                        return Step::Block;
                    }
                }
            }
        }
    }

    fn split_par(
        &mut self,
        nparts: usize,
        _owner: &[u32],
    ) -> Option<Vec<Box<dyn RankBehavior + Send>>> {
        Some(
            (0..nparts)
                .map(|_| Box::new(self.clone_shared()) as Box<dyn RankBehavior + Send>)
                .collect(),
        )
    }
    // merge_par: default no-op — all state lives behind the shared Arc.
}

/// Convenience used by tests and benchmarks: run `NeighborExchange` on a
/// fresh world and return `(makespan, digest)`.
pub fn run_neighbor_exchange(
    world: &mut World,
    rounds: usize,
    small: usize,
    large: usize,
) -> (Result<SimTime, crate::world::SimError>, u64) {
    let mut b = NeighborExchange::new(world.nranks(), rounds, small, large);
    let out = world.run(&mut b);
    (out, world.event_digest())
}

/// Build a standard world for workload tests.
pub fn test_world(platform: netmodel::Platform, nranks: usize) -> World {
    World::new(
        platform,
        nranks,
        netmodel::Placement::RoundRobin,
        NoiseConfig::none(),
    )
}
