//! Message and receive-request state machines.
//!
//! In-flight message state is split into a sender-side half ([`SendMsg`],
//! stored in the *sending* rank's arena) and a receiver-side half
//! ([`DstMsg`], stored in the *destination* rank's arena). The split is what
//! lets the partitioned world engine give each partition exclusive
//! ownership of its ranks' state: everything a handler mutates lives on the
//! rank the event targets, and the two halves only communicate through wire
//! events.

use crate::bufpool::Payload;
use crate::types::{RankId, Tag};
use simcore::SimTime;

/// Wire protocol chosen for a message, by size and transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Payload is pushed immediately; buffered at the receiver if no
    /// matching receive is posted yet. Progresses without CPU involvement.
    Eager,
    /// Request-to-send / clear-to-send handshake; the payload only moves
    /// after both sides have entered the progress engine.
    Rendezvous,
}

/// Sender-side lifecycle of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendState {
    /// Posted; payload (eager) or RTS (rendezvous) injected.
    Posted,
    /// Rendezvous only: CTS has arrived at the sender but the sender has not
    /// yet entered the progress engine to start the payload transfer.
    CtsArrived(SimTime),
    /// Rendezvous only: payload transfer started (CTS acted upon).
    DataInFlight,
    /// Local completion: the source buffer is reusable.
    Drained(SimTime),
}

/// Receiver-side lifecycle of a message, *after* matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvState {
    /// Posted, not yet matched to an incoming message.
    Posted,
    /// Matched to an incoming message, payload not yet fully delivered.
    Matched,
    /// Payload fully delivered at the given time.
    Complete(SimTime),
}

/// The sender-side half of one in-flight point-to-point message, stored in
/// the sending rank's arena (`SendHandle.idx` indexes it).
#[derive(Debug, Clone)]
pub struct SendMsg {
    pub dst: RankId,
    pub tag: Tag,
    pub bytes: usize,
    pub protocol: Protocol,
    /// Per-(src, dst) channel sequence number; envelopes are delivered to
    /// the matching logic in this order (MPI non-overtaking).
    pub seq: u64,
    /// Local time at which the sender posted this message (start of its
    /// lifecycle span in trace exports).
    pub posted_at: SimTime,
    pub send_state: SendState,
    /// Retransmissions performed so far (fault injection only; stays 0 on
    /// the healthy path).
    pub attempts: u32,
    /// The payload handle riding on this message, if the sender staged one.
    /// On the healthy path it is *moved* into the wire event (O(1)); with a
    /// fault model armed each transmission carries a clone so retransmission
    /// can resend it. Timing never depends on it — `bytes` alone drives the
    /// network model.
    pub payload: Option<Payload>,
    /// Eager only: earliest lower-bound arrival among the transmissions
    /// injected so far that were not dropped (`None` while every copy was
    /// lost). The retry engine reads this as its acknowledgement signal —
    /// it is computed entirely from sender-side knowledge (tx drain +
    /// latency + jitter), so the sender never peeks at receiver state.
    pub best_arrival: Option<SimTime>,
    /// Rendezvous only: the destination-side record (index into the
    /// receiver's [`DstMsg`] arena), learned from the CTS. The payload wire
    /// event carries it back so delivery needs no receiver-side lookup.
    pub peer_dmid: Option<u32>,
}

impl SendMsg {
    /// A freshly posted send.
    pub fn new(
        dst: RankId,
        tag: Tag,
        bytes: usize,
        protocol: Protocol,
        seq: u64,
        posted_at: SimTime,
    ) -> Self {
        SendMsg {
            dst,
            tag,
            bytes,
            protocol,
            seq,
            posted_at,
            send_state: SendState::Posted,
            attempts: 0,
            payload: None,
            best_arrival: None,
            peer_dmid: None,
        }
    }

    /// True once the sender may reuse its buffer.
    pub fn send_drained(&self) -> Option<SimTime> {
        match self.send_state {
            SendState::Drained(t) => Some(t),
            _ => None,
        }
    }
}

/// The receiver-side half of one in-flight message, created when the first
/// surviving wire event (eager payload or rendezvous RTS) reaches the
/// destination; stored in the destination rank's arena.
#[derive(Debug, Clone)]
pub struct DstMsg {
    pub src: RankId,
    /// Index of the sender-side half in `src`'s send arena.
    pub sidx: u32,
    pub seq: u64,
    pub tag: Tag,
    pub bytes: usize,
    pub protocol: Protocol,
    /// Sender's post time (start of the lifecycle span in trace exports).
    pub posted_at: SimTime,
    /// Index of the matched receive request, once matched.
    pub matched_recv: Option<u32>,
    /// Eager: payload delivery time at the destination (set when the
    /// delivery event fires). Rendezvous: payload arrival after CTS.
    pub data_arrival: Option<SimTime>,
    /// Rendezvous: RTS arrival time at the receiver.
    pub rts_arrival: Option<SimTime>,
    /// Rendezvous: receiver answered RTS (CTS sent).
    pub cts_sent: bool,
    /// Payload handle delivered by the wire, awaiting transfer to the
    /// matched receive at completion.
    pub payload: Option<Payload>,
}

/// One posted receive request, stored in the receiving rank's arena.
#[derive(Debug, Clone)]
pub struct RecvReq {
    pub src: RankId,
    pub tag: Tag,
    pub bytes: usize,
    pub state: RecvState,
    /// The matched message (index into the rank's [`DstMsg`] arena), if any.
    pub msg: Option<u32>,
    /// Delivered payload handle, moved off the message at completion;
    /// collected by the executor via `World::take_recv_payload`.
    pub payload: Option<Payload>,
}

impl RecvReq {
    /// A freshly posted receive.
    pub fn new(src: RankId, tag: Tag, bytes: usize) -> Self {
        RecvReq {
            src,
            tag,
            bytes,
            state: RecvState::Posted,
            msg: None,
            payload: None,
        }
    }

    /// Completion time, if delivered.
    pub fn complete_at(&self) -> Option<SimTime> {
        match self.state {
            RecvState::Complete(t) => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_lifecycle_defaults() {
        let m = SendMsg::new(1, Tag(5), 100, Protocol::Eager, 0, SimTime::ZERO);
        assert_eq!(m.send_state, SendState::Posted);
        assert!(m.send_drained().is_none());
        assert!(m.best_arrival.is_none());
        assert!(m.peer_dmid.is_none());
    }

    #[test]
    fn drained_reports_time() {
        let mut m = SendMsg::new(1, Tag(5), 100, Protocol::Rendezvous, 0, SimTime::ZERO);
        m.send_state = SendState::Drained(SimTime::from_micros(9));
        assert_eq!(m.send_drained(), Some(SimTime::from_micros(9)));
    }

    #[test]
    fn recv_completion() {
        let mut r = RecvReq::new(0, Tag(5), 100);
        assert!(r.complete_at().is_none());
        r.state = RecvState::Complete(SimTime::from_nanos(77));
        assert_eq!(r.complete_at(), Some(SimTime::from_nanos(77)));
    }
}
