//! Message and receive-request state machines.

use crate::bufpool::Payload;
use crate::types::{RankId, Tag};
use simcore::SimTime;

/// Wire protocol chosen for a message, by size and transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Payload is pushed immediately; buffered at the receiver if no
    /// matching receive is posted yet. Progresses without CPU involvement.
    Eager,
    /// Request-to-send / clear-to-send handshake; the payload only moves
    /// after both sides have entered the progress engine.
    Rendezvous,
}

/// Sender-side lifecycle of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendState {
    /// Posted; payload (eager) or RTS (rendezvous) injected.
    Posted,
    /// Rendezvous only: CTS has arrived at the sender but the sender has not
    /// yet entered the progress engine to start the payload transfer.
    CtsArrived(SimTime),
    /// Rendezvous only: payload transfer started (CTS acted upon).
    DataInFlight,
    /// Local completion: the source buffer is reusable.
    Drained(SimTime),
}

/// Receiver-side lifecycle of a message, *after* matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvState {
    /// Posted, not yet matched to an incoming message.
    Posted,
    /// Matched to message `msg`, payload not yet fully delivered.
    Matched,
    /// Payload fully delivered at the given time.
    Complete(SimTime),
}

/// One in-flight point-to-point message.
#[derive(Debug, Clone)]
pub struct Message {
    pub src: RankId,
    pub dst: RankId,
    pub tag: Tag,
    pub bytes: usize,
    pub protocol: Protocol,
    /// Per-(src, dst) channel sequence number; envelopes are delivered to
    /// the matching logic in this order (MPI non-overtaking).
    pub seq: u64,
    /// Local time at which the sender posted this message (start of its
    /// lifecycle span in trace exports).
    pub posted_at: SimTime,
    pub send_state: SendState,
    /// Index of the matched receive request, once matched.
    pub matched_recv: Option<usize>,
    /// Eager: payload arrival time at the destination NIC (set when the
    /// arrival event fires). Rendezvous: payload arrival after CTS.
    pub data_arrival: Option<SimTime>,
    /// Rendezvous: RTS arrival time at the receiver.
    pub rts_arrival: Option<SimTime>,
    /// Rendezvous: receiver answered RTS (CTS sent).
    pub cts_sent: bool,
    /// Retransmissions performed so far (fault injection only; stays 0 on
    /// the healthy path).
    pub attempts: u32,
    /// The payload handle riding on this message, if the sender staged
    /// one. Moving it (eager delivery, rendezvous injection) is O(1); it
    /// transfers to the matched receive at completion. Timing never depends
    /// on it — `bytes` alone drives the network model.
    pub payload: Option<Payload>,
}

impl Message {
    /// A freshly posted message.
    pub fn new(
        src: RankId,
        dst: RankId,
        tag: Tag,
        bytes: usize,
        protocol: Protocol,
        seq: u64,
        posted_at: SimTime,
    ) -> Self {
        Message {
            src,
            dst,
            tag,
            bytes,
            protocol,
            seq,
            posted_at,
            send_state: SendState::Posted,
            matched_recv: None,
            data_arrival: None,
            rts_arrival: None,
            cts_sent: false,
            attempts: 0,
            payload: None,
        }
    }

    /// True once the sender may reuse its buffer.
    pub fn send_drained(&self) -> Option<SimTime> {
        match self.send_state {
            SendState::Drained(t) => Some(t),
            _ => None,
        }
    }
}

/// One posted receive request.
#[derive(Debug, Clone)]
pub struct RecvReq {
    pub rank: RankId,
    pub src: RankId,
    pub tag: Tag,
    pub bytes: usize,
    pub state: RecvState,
    /// The matched message, if any.
    pub msg: Option<usize>,
    /// Delivered payload handle, moved off the message at completion;
    /// collected by the executor via `World::take_recv_payload`.
    pub payload: Option<Payload>,
}

impl RecvReq {
    /// A freshly posted receive.
    pub fn new(rank: RankId, src: RankId, tag: Tag, bytes: usize) -> Self {
        RecvReq {
            rank,
            src,
            tag,
            bytes,
            state: RecvState::Posted,
            msg: None,
            payload: None,
        }
    }

    /// Completion time, if delivered.
    pub fn complete_at(&self) -> Option<SimTime> {
        match self.state {
            RecvState::Complete(t) => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_lifecycle_defaults() {
        let m = Message::new(0, 1, Tag(5), 100, Protocol::Eager, 0, SimTime::ZERO);
        assert_eq!(m.send_state, SendState::Posted);
        assert!(m.send_drained().is_none());
        assert!(m.matched_recv.is_none());
    }

    #[test]
    fn drained_reports_time() {
        let mut m = Message::new(0, 1, Tag(5), 100, Protocol::Rendezvous, 0, SimTime::ZERO);
        m.send_state = SendState::Drained(SimTime::from_micros(9));
        assert_eq!(m.send_drained(), Some(SimTime::from_micros(9)));
    }

    #[test]
    fn recv_completion() {
        let mut r = RecvReq::new(1, 0, Tag(5), 100);
        assert!(r.complete_at().is_none());
        r.state = RecvState::Complete(SimTime::from_nanos(77));
        assert_eq!(r.complete_at(), Some(SimTime::from_nanos(77)));
    }
}
