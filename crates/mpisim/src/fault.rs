//! Deterministic fault injection for the simulated network.
//!
//! The paper's premise is that the tuner keeps picking the *right*
//! algorithm as runtime conditions shift; this module supplies the shifted
//! conditions. A [`FaultConfig`] describes a degraded cluster — control and
//! eager messages that get lost or duplicated, per-delivery delay jitter,
//! straggler ranks whose compute runs slow, and periodic NIC "brownout"
//! windows during which every delivery pays an extra penalty. A
//! [`FaultModel`] instantiates that description for one `World`, scaled by
//! the platform's [`netmodel::FaultProfile`] (commodity Ethernet is far
//! lossier than a BlueGene torus) and driven exclusively by
//! [`simcore::rng::SplitMix64`] so identical seeds give byte-identical
//! timelines.
//!
//! Two hard guarantees mirror `simcore::trace`:
//!
//! * **Off is free and byte-identical.** When the configuration is off
//!   (the default), `World` holds no model at all — every injection site is
//!   one `Option::is_none` branch, no RNG is consumed, no extra events are
//!   scheduled, and figure output is bit-for-bit what an unfaulted build
//!   produces (enforced by `scripts/verify.sh`).
//! * **Faults never hang the event loop.** Lost rendezvous handshakes are
//!   recovered by timeout-driven retransmission with exponential backoff
//!   (see `World`), and an exhausted retry budget surfaces as the typed
//!   `SimError::Timeout` instead of a deadlocked queue.
//!
//! Configuration reaches a `World` through the `NBC_FAULTS` environment
//! variable (read once per process), a programmatic [`set_override`] (the
//! `--faults` CLI flag, tests), or directly via `World::set_faults`.

use netmodel::FaultProfile;
use simcore::rng::SplitMix64;
use simcore::SimTime;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Env var selecting the process-wide fault configuration. Accepts the same
/// specs as [`FaultConfig::parse`]: unset/`""`/`"off"`/`"0"`/`"false"`
/// disable; `"light[:SEED]"` / `"heavy[:SEED]"` pick presets; a
/// comma-separated `k=v` list sets individual knobs.
pub const ENV_VAR: &str = "NBC_FAULTS";

/// Complete description of an injected fault regime. All rates are
/// platform-neutral; a platform's [`FaultProfile`] scales them at
/// [`FaultModel`] construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed for every fault decision in a run.
    pub seed: u64,
    /// Probability that a control message (RTS/CTS) or eager payload is
    /// lost in flight.
    pub drop_prob: f64,
    /// Probability that a delivered control/eager message is duplicated.
    pub dup_prob: f64,
    /// Relative delivery-delay jitter: each delivery is delayed by up to
    /// `jitter × flight_time`, uniformly.
    pub jitter: f64,
    /// Fraction of ranks that are stragglers.
    pub slow_frac: f64,
    /// Compute-duration multiplier applied to straggler ranks.
    pub slow_factor: f64,
    /// Length of each periodic NIC brownout window (`ZERO` disables).
    pub brownout_len: SimTime,
    /// Period at which brownout windows recur.
    pub brownout_period: SimTime,
    /// Extra delivery delay paid while a brownout window is active.
    pub brownout_delay: SimTime,
    /// Base rendezvous/eager retransmit timeout; doubles on every retry.
    pub retry_timeout: SimTime,
    /// Retransmissions allowed before the send fails with
    /// `SimError::Timeout`.
    pub max_retries: u32,
    /// Arm the retry/timeout machinery even when every perturbation rate
    /// is zero (timeout-only experiments).
    pub arm_timeouts: bool,
}

impl FaultConfig {
    /// The do-nothing configuration (the default).
    pub fn off() -> FaultConfig {
        FaultConfig {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            jitter: 0.0,
            slow_frac: 0.0,
            slow_factor: 1.0,
            brownout_len: SimTime::ZERO,
            brownout_period: SimTime::ZERO,
            brownout_delay: SimTime::ZERO,
            retry_timeout: SimTime::from_millis(2),
            max_retries: 6,
            arm_timeouts: false,
        }
    }

    /// Mild degradation: rare drops, small jitter, a few 1.3× stragglers.
    pub fn light(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_prob: 0.002,
            dup_prob: 0.002,
            jitter: 0.05,
            slow_frac: 0.1,
            slow_factor: 1.3,
            arm_timeouts: true,
            ..FaultConfig::off()
        }
    }

    /// Heavy degradation: percent-level loss, fat jitter tails, a quarter
    /// of the ranks running at half speed, periodic NIC brownouts.
    pub fn heavy(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_prob: 0.02,
            dup_prob: 0.01,
            jitter: 0.2,
            slow_frac: 0.25,
            slow_factor: 2.0,
            brownout_len: SimTime::from_millis(1),
            brownout_period: SimTime::from_millis(10),
            brownout_delay: SimTime::from_micros(200),
            arm_timeouts: true,
            ..FaultConfig::off()
        }
    }

    /// True when this configuration perturbs nothing and arms nothing — a
    /// `World` built under it carries no fault model at all.
    pub fn is_off(&self) -> bool {
        self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.jitter == 0.0
            && (self.slow_frac == 0.0 || self.slow_factor == 1.0)
            && self.brownout_len == SimTime::ZERO
            && !self.arm_timeouts
    }

    /// Parse a spec string (the `NBC_FAULTS` / `--faults` syntax):
    ///
    /// * `off` (also `0`, `false`, empty) — no faults;
    /// * `light` / `heavy`, optionally `light:SEED`;
    /// * a comma-separated `k=v` list over an `off` base (plus an optional
    ///   leading preset): `seed=N`, `drop=P`, `dup=P`, `jitter=F`,
    ///   `slow=FRACxFACTOR`, `timeout_us=N`, `retries=N`, `brownout_us=N`,
    ///   `brownout_period_us=N`, `brownout_delay_us=N`.
    ///
    /// Any `k=v` list arms the timeout machinery.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        fn preset(word: &str) -> Option<fn(u64) -> FaultConfig> {
            match word {
                "light" => Some(FaultConfig::light),
                "heavy" => Some(FaultConfig::heavy),
                _ => None,
            }
        }
        let spec = spec.trim();
        if matches!(spec, "" | "off" | "0" | "false") {
            return Ok(FaultConfig::off());
        }
        // Bare preset, optionally with a seed: "light", "heavy:1234".
        if let Some(make) = preset(spec) {
            return Ok(make(1));
        }
        if let Some((word, seed)) = spec.split_once(':') {
            if let Some(make) = preset(word) {
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| format!("bad seed in fault spec '{spec}'"))?;
                return Ok(make(seed));
            }
        }
        // k=v list, optionally starting from a preset token.
        let mut cfg = FaultConfig {
            arm_timeouts: true,
            ..FaultConfig::off()
        };
        for tok in spec.split(',') {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            if let Some(make) = preset(tok) {
                cfg = make(cfg.seed.max(1));
                continue;
            }
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected k=v, got '{tok}'"))?;
            let fval = || -> Result<f64, String> {
                v.parse::<f64>()
                    .map_err(|_| format!("bad number '{v}' for '{k}'"))
            };
            let uval = || -> Result<u64, String> {
                v.parse::<u64>()
                    .map_err(|_| format!("bad integer '{v}' for '{k}'"))
            };
            match k {
                "seed" => cfg.seed = uval()?,
                "drop" => cfg.drop_prob = fval()?,
                "dup" => cfg.dup_prob = fval()?,
                "jitter" => cfg.jitter = fval()?,
                "slow" => {
                    let (frac, factor) = v
                        .split_once('x')
                        .ok_or_else(|| format!("slow wants FRACxFACTOR, got '{v}'"))?;
                    cfg.slow_frac = frac
                        .parse()
                        .map_err(|_| format!("bad slow fraction '{frac}'"))?;
                    cfg.slow_factor = factor
                        .parse()
                        .map_err(|_| format!("bad slow factor '{factor}'"))?;
                }
                "timeout_us" => cfg.retry_timeout = SimTime::from_micros(uval()?),
                "retries" => cfg.max_retries = uval()? as u32,
                "brownout_us" => cfg.brownout_len = SimTime::from_micros(uval()?),
                "brownout_period_us" => cfg.brownout_period = SimTime::from_micros(uval()?),
                "brownout_delay_us" => cfg.brownout_delay = SimTime::from_micros(uval()?),
                other => return Err(format!("unknown fault knob '{other}'")),
            }
        }
        if !(0.0..=1.0).contains(&cfg.drop_prob) || !(0.0..=1.0).contains(&cfg.dup_prob) {
            return Err("drop/dup probabilities must be in [0,1]".into());
        }
        if cfg.drop_prob >= 1.0 && cfg.max_retries == u32::MAX {
            return Err("drop=1 with unbounded retries would never terminate".into());
        }
        Ok(cfg)
    }

    /// Stable one-token description of this configuration, used to key
    /// memoized simulation results (a faulted run must never satisfy an
    /// unfaulted lookup, and vice versa).
    pub fn describe(&self) -> String {
        if self.is_off() {
            return "off".into();
        }
        format!(
            "s{}/d{}/u{}/j{}/sl{}x{}/b{}@{}+{}/t{}/r{}",
            self.seed,
            self.drop_prob,
            self.dup_prob,
            self.jitter,
            self.slow_frac,
            self.slow_factor,
            self.brownout_len.as_nanos(),
            self.brownout_period.as_nanos(),
            self.brownout_delay.as_nanos(),
            self.retry_timeout.as_nanos(),
            self.max_retries
        )
    }
}

// 0 = follow the environment, 1 = forced off; the forced-on config itself
// lives in OVERRIDE_CFG. (Same shape as simcore::trace's enable override.)
static OVERRIDE_STATE: AtomicU8 = AtomicU8::new(0);
static ENV_CFG: OnceLock<FaultConfig> = OnceLock::new();

fn override_cfg() -> &'static Mutex<Option<FaultConfig>> {
    static C: OnceLock<Mutex<Option<FaultConfig>>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(None))
}

fn env_cfg() -> FaultConfig {
    *ENV_CFG.get_or_init(|| {
        let spec = std::env::var(ENV_VAR).unwrap_or_default();
        FaultConfig::parse(&spec).unwrap_or_else(|e| {
            eprintln!("{ENV_VAR}: {e}; faults disabled");
            FaultConfig::off()
        })
    })
}

/// Override the process-wide fault configuration: `Some(cfg)` forces `cfg`
/// (the `--faults` flag, ablation sweeps), `None` forces faults *off*
/// regardless of the environment. Use [`clear_override`] to follow
/// `NBC_FAULTS` again.
pub fn set_override(cfg: Option<FaultConfig>) {
    *override_cfg().lock().unwrap_or_else(|e| e.into_inner()) = cfg;
    OVERRIDE_STATE.store(1, Ordering::Relaxed);
}

/// Drop any [`set_override`] and follow the environment again.
pub fn clear_override() {
    OVERRIDE_STATE.store(0, Ordering::Relaxed);
    *override_cfg().lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// The fault configuration new `World`s pick up: the programmatic override
/// if one is set, else the `NBC_FAULTS` environment (read once), else off.
pub fn current() -> FaultConfig {
    if OVERRIDE_STATE.load(Ordering::Relaxed) == 1 {
        return override_cfg()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .unwrap_or_else(FaultConfig::off);
    }
    env_cfg()
}

/// Per-`World` fault state: the effective (profile-scaled) rates, one
/// dedicated RNG stream *per rank*, and the straggler assignment. Built
/// once per world; `None` when the configuration is off.
///
/// Per-rank streams are what keeps fault injection deterministic under the
/// partitioned engine: every draw is made by the rank acting at that
/// moment (the sender of the transmission being perturbed), from that
/// rank's own stream. A rank's events are processed in the same order by
/// the serial and partitioned engines, so the draw sequence — and thus the
/// whole fault timeline — is identical regardless of partition count.
#[derive(Debug, Clone)]
pub struct FaultModel {
    cfg: FaultConfig,
    rngs: Vec<SplitMix64>,
    /// Per-rank compute-duration multiplier (1.0 for healthy ranks).
    slow: Vec<f64>,
    drop_p: f64,
    dup_p: f64,
    jitter: f64,
    brownout_delay: SimTime,
}

impl FaultModel {
    /// Instantiate `cfg` for a world of `nranks` ranks on a platform with
    /// fault profile `profile`. Returns `None` when the configuration is
    /// off — callers hold an `Option<FaultModel>` and every injection site
    /// costs one branch in the healthy case.
    pub fn new(cfg: &FaultConfig, profile: &FaultProfile, nranks: usize) -> Option<FaultModel> {
        if cfg.is_off() {
            return None;
        }
        // Straggler assignment draws from a stream split off the master
        // seed so it is independent of per-delivery decisions.
        let mut pick = SplitMix64::split(cfg.seed, 0x57AA);
        let slow = (0..nranks)
            .map(|_| {
                if cfg.slow_frac > 0.0 && pick.next_f64() < cfg.slow_frac {
                    cfg.slow_factor
                } else {
                    1.0
                }
            })
            .collect();
        // Each rank's per-delivery decisions come from its own stream, split
        // off the master seed with a salt disjoint from the straggler
        // stream's 0x57AA.
        let rngs = (0..nranks)
            .map(|r| SplitMix64::split(cfg.seed, 0xFA17_0000 + r as u64))
            .collect();
        Some(FaultModel {
            cfg: *cfg,
            rngs,
            slow,
            drop_p: (cfg.drop_prob * profile.drop_scale).clamp(0.0, 1.0),
            dup_p: (cfg.dup_prob * profile.dup_scale).clamp(0.0, 1.0),
            jitter: (cfg.jitter * profile.jitter_scale).max(0.0),
            brownout_delay: cfg.brownout_delay.scale(profile.brownout_scale),
        })
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Decide whether one control/eager delivery sent by `rank` is lost.
    pub fn drop_event(&mut self, rank: usize) -> bool {
        self.drop_p > 0.0 && self.rngs[rank].next_f64() < self.drop_p
    }

    /// Decide whether one delivered message sent by `rank` is duplicated.
    pub fn duplicate_event(&mut self, rank: usize) -> bool {
        self.dup_p > 0.0 && self.rngs[rank].next_f64() < self.dup_p
    }

    /// Relative jitter for one transmission by `rank`: a fraction of the
    /// flight time, drawn at send time and applied by the receiver once the
    /// actual flight time is known (`extra_delay`). Zero — and no RNG draw —
    /// when jitter is not configured.
    pub fn jitter_frac(&mut self, rank: usize) -> f64 {
        if self.jitter > 0.0 {
            self.jitter * self.rngs[rank].next_f64()
        } else {
            0.0
        }
    }

    /// Extra delay for a delivery that would arrive at `arrival` after being
    /// posted at `posted`, with the transmission's pre-drawn `jitter_frac`:
    /// proportional jitter plus the brownout penalty when the arrival lands
    /// in a window. Pure — consumes no randomness.
    pub fn extra_delay(&self, jfrac: f64, posted: SimTime, arrival: SimTime) -> SimTime {
        let mut extra = SimTime::ZERO;
        if jfrac > 0.0 {
            let flight = arrival.saturating_sub(posted);
            extra += flight.scale(jfrac);
        }
        if self.in_brownout(arrival) {
            extra += self.brownout_delay;
        }
        extra
    }

    /// Does simulated time `t` fall inside a NIC brownout window?
    pub fn in_brownout(&self, t: SimTime) -> bool {
        let len = self.cfg.brownout_len.as_nanos();
        let period = self.cfg.brownout_period.as_nanos();
        len > 0 && period > 0 && (t.as_nanos() % period) < len
    }

    /// Short lag separating a duplicate delivery from the original, drawn
    /// from the sending `rank`'s stream.
    pub fn dup_lag(&mut self, rank: usize) -> SimTime {
        SimTime::from_nanos(500 + (self.rngs[rank].next_f64() * 2_000.0) as u64)
    }

    /// Compute-duration multiplier for rank `r` (1.0 unless straggler).
    pub fn rank_factor(&self, r: usize) -> f64 {
        self.slow.get(r).copied().unwrap_or(1.0)
    }

    /// When a send first transmitted at attempt `attempts` should next be
    /// retried: exponential backoff, `retry_timeout × 2^attempts`, with the
    /// exponent capped so the deadline can never overflow simulated time.
    pub fn retry_deadline(&self, now: SimTime, attempts: u32) -> SimTime {
        let backoff = self.backoff(attempts);
        // Never reach SimTime::MAX — the event queue treats it as the
        // overflow sentinel and refuses to schedule there.
        SimTime::from_nanos(
            now.as_nanos()
                .saturating_add(backoff.as_nanos())
                .min(u64::MAX - 1),
        )
    }

    /// The backoff interval preceding retry number `attempts + 1`.
    pub fn backoff(&self, attempts: u32) -> SimTime {
        SimTime::from_nanos(
            self.cfg
                .retry_timeout
                .as_nanos()
                .saturating_mul(1u64 << attempts.min(16)),
        )
    }

    /// Retransmissions allowed before the send times out.
    pub fn max_retries(&self) -> u32 {
        self.cfg.max_retries
    }

    /// Copy rank `rank`'s stream position back from a shard's model. The
    /// partitioned engine clones the whole model into each shard; a shard
    /// only ever draws from its owned ranks' streams, so merging is a plain
    /// per-owned-rank copy.
    pub fn adopt_rank_stream(&mut self, shard: &FaultModel, rank: usize) {
        self.rngs[rank] = shard.rngs[rank].clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_off() {
        assert!(FaultConfig::off().is_off());
        assert!(FaultModel::new(&FaultConfig::off(), &FaultProfile::NEUTRAL, 8).is_none());
        assert_eq!(FaultConfig::off().describe(), "off");
    }

    #[test]
    fn presets_are_active() {
        assert!(!FaultConfig::light(1).is_off());
        assert!(!FaultConfig::heavy(1).is_off());
        assert_ne!(FaultConfig::light(1).describe(), "off");
    }

    #[test]
    fn parse_round_trips_presets_and_kv() {
        assert!(FaultConfig::parse("off").unwrap().is_off());
        assert!(FaultConfig::parse("").unwrap().is_off());
        assert_eq!(
            FaultConfig::parse("light:7").unwrap(),
            FaultConfig::light(7)
        );
        assert_eq!(FaultConfig::parse("heavy").unwrap(), FaultConfig::heavy(1));
        let cfg =
            FaultConfig::parse("seed=3,drop=0.5,slow=0.2x1.5,timeout_us=100,retries=2").unwrap();
        assert_eq!(cfg.seed, 3);
        assert_eq!(cfg.drop_prob, 0.5);
        assert_eq!(cfg.slow_frac, 0.2);
        assert_eq!(cfg.slow_factor, 1.5);
        assert_eq!(cfg.retry_timeout, SimTime::from_micros(100));
        assert_eq!(cfg.max_retries, 2);
        assert!(cfg.arm_timeouts);
        assert!(FaultConfig::parse("drop=2.0").is_err());
        assert!(FaultConfig::parse("nonsense").is_err());
        assert!(FaultConfig::parse("light:notanumber").is_err());
    }

    #[test]
    fn same_seed_same_decisions() {
        let cfg = FaultConfig::heavy(42);
        let mk = || FaultModel::new(&cfg, &FaultProfile::NEUTRAL, 16).unwrap();
        let (mut a, mut b) = (mk(), mk());
        for i in 0..200 {
            let rank = i % 16;
            assert_eq!(a.drop_event(rank), b.drop_event(rank));
            let (fa, fb) = (a.jitter_frac(rank), b.jitter_frac(rank));
            assert_eq!(fa, fb);
            assert_eq!(
                a.extra_delay(fa, SimTime::ZERO, SimTime::from_micros(10)),
                b.extra_delay(fb, SimTime::ZERO, SimTime::from_micros(10))
            );
        }
        assert_eq!(a.slow, b.slow);
    }

    #[test]
    fn rank_streams_are_independent() {
        // Draw order across ranks must not matter: rank 5's sequence is the
        // same whether or not other ranks drew in between.
        let cfg = FaultConfig::heavy(9);
        let mk = || FaultModel::new(&cfg, &FaultProfile::NEUTRAL, 8).unwrap();
        let (mut a, mut b) = (mk(), mk());
        let seq_a: Vec<bool> = (0..50).map(|_| a.drop_event(5)).collect();
        let seq_b: Vec<bool> = (0..50)
            .map(|i| {
                b.drop_event(i % 4); // interleave draws on other ranks
                b.drop_event(5)
            })
            .collect();
        assert_eq!(seq_a, seq_b);
        // Shard merge: adopting rank 5's stream makes a fresh model continue
        // exactly where the shard left off.
        let mut parent = mk();
        parent.adopt_rank_stream(&a, 5);
        assert_eq!(parent.drop_event(5), a.drop_event(5));
    }

    #[test]
    fn profile_scales_rates() {
        let cfg = FaultConfig::light(1);
        let lossy = FaultProfile {
            drop_scale: 100.0,
            ..FaultProfile::NEUTRAL
        };
        let m = FaultModel::new(&cfg, &lossy, 4).unwrap();
        assert_eq!(m.drop_p, (0.002f64 * 100.0).clamp(0.0, 1.0));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let cfg = FaultConfig {
            retry_timeout: SimTime::from_micros(100),
            arm_timeouts: true,
            ..FaultConfig::off()
        };
        let m = FaultModel::new(&cfg, &FaultProfile::NEUTRAL, 2).unwrap();
        assert_eq!(m.backoff(0), SimTime::from_micros(100));
        assert_eq!(m.backoff(1), SimTime::from_micros(200));
        assert_eq!(m.backoff(3), SimTime::from_micros(800));
        // Huge attempt counts must not overflow or hit the queue sentinel.
        let d = m.retry_deadline(SimTime::from_nanos(u64::MAX - 10), u32::MAX);
        assert!(d.as_nanos() < u64::MAX);
    }

    #[test]
    fn brownout_windows_repeat() {
        let cfg = FaultConfig {
            brownout_len: SimTime::from_micros(10),
            brownout_period: SimTime::from_micros(100),
            brownout_delay: SimTime::from_micros(5),
            arm_timeouts: true,
            ..FaultConfig::off()
        };
        let m = FaultModel::new(&cfg, &FaultProfile::NEUTRAL, 2).unwrap();
        assert!(m.in_brownout(SimTime::from_micros(5)));
        assert!(!m.in_brownout(SimTime::from_micros(50)));
        assert!(m.in_brownout(SimTime::from_micros(105)));
    }
}
