//! `mpisim` — a simulated MPI-like message-passing layer with explicit
//! progress semantics.
//!
//! This crate is the substrate the paper's runtime sits on: it plays the
//! role of Open MPI's point-to-point engine underneath LibNBC. It simulates
//! a set of ranks placed on a [`netmodel::Platform`], exchanging
//! non-blocking point-to-point messages whose timing is governed by the
//! network contention model.
//!
//! The crucial piece of fidelity is the **progress engine** (Hoefler &
//! Lumsdaine, "Message Progression in Parallel Computing — To Thread or not
//! to Thread?"): most production MPI libraries have no progress thread, so
//!
//! * *eager* messages (small) transfer asynchronously once posted, but
//! * *rendezvous* messages (large) need the receiver to enter the library
//!   (a progress call or a wait) to answer the RTS, and the sender to enter
//!   the library again to act on the CTS — without progress calls, large
//!   transfers simply do not overlap with computation;
//! * completed operations are only *observed* at progress/test/wait time.
//!
//! The simulation itself is a deterministic discrete-event loop
//! ([`World::run`]): each rank executes a user-provided behaviour
//! ([`RankBehavior`]) that returns what the rank does next (compute, spend
//! CPU in the library, block on the network, or finish).

pub mod bufpool;
pub mod fault;
pub mod message;
pub mod types;
pub mod workload;
pub mod world;
pub mod worldpar;
pub mod worldpool;

pub use bufpool::{BufPool, BufPoolStats, Payload, PooledBuf};
pub use fault::{FaultConfig, FaultModel};
pub use message::{Protocol, RecvState, SendState};
pub use types::{NoiseConfig, RankId, RecvHandle, SendHandle, Tag};
pub use workload::NeighborExchange;
pub use world::{
    sim_events_total, FaultStats, RankAccounting, RankBehavior, SegmentKind, SimError, Step,
    TraceSegment, World,
};
pub use worldpar::{ParMode, ParRunInfo};
