//! Partitioning policy for the intra-world parallel event engine.
//!
//! This module decides *whether* and *how* a [`World`](crate::World)
//! partitions its ranks across threads; the engine itself lives in
//! `world.rs`. The decision is pure policy — every choice (including
//! "serial") produces byte-identical simulation results — so the knobs
//! here only trade wall-clock time:
//!
//! - `NBC_WORLD_PAR=off` (default): always serial.
//! - `NBC_WORLD_PAR=auto`: partition when the world is big enough to pay
//!   for the window barriers and the host has idle cores; never inside a
//!   sweep worker thread (the sweep already saturates the machine).
//! - `NBC_WORLD_PAR=N`: force N partitions (clamped to the node count).
//!
//! [`World::set_par_mode`](crate::World::set_par_mode) overrides per
//! world, and [`set_override`] per process; both win over the
//! environment.
//!
//! Partitions are *node-aligned*: all ranks of one node belong to one
//! partition. This is what gives the conservative synchronization its
//! lookahead — any cross-partition message is inter-node, so it is at
//! least the minimum inter-node wire latency away from its cause — and it
//! also keeps each node's copy engine owned by exactly one partition.

use crate::world::World;
use simcore::SimTime;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// How a world's event loop may be parallelized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParMode {
    /// Single-threaded event loop (the default).
    Off,
    /// Partition when profitable: enough ranks, enough idle hardware, and
    /// not already inside a sweep worker.
    Auto,
    /// Exactly this many partitions (clamped to the number of occupied
    /// nodes; values below 2 mean serial).
    Fixed(usize),
}

/// Smallest world (in ranks) that `Auto` considers worth the window
/// barriers. Forced (`Fixed`) modes ignore this — benchmarks and identity
/// tests need to partition small worlds on purpose.
const AUTO_MIN_RANKS: usize = 512;

/// `Auto` never uses more partitions than this: windows synchronize with
/// full barriers, and past 8 threads the barrier latency eats the win for
/// the event densities our worlds produce.
const AUTO_MAX_PARTS: usize = 8;

fn parse_mode(v: &str) -> ParMode {
    let v = v.trim();
    if v.is_empty() {
        return ParMode::Off;
    }
    if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("serial") || v == "0" || v == "1" {
        return ParMode::Off;
    }
    if v.eq_ignore_ascii_case("auto") {
        return ParMode::Auto;
    }
    match v.parse::<usize>() {
        Ok(n) if n >= 2 => ParMode::Fixed(n),
        // Lenient: an unparsable value must not turn a production run into
        // a surprise (results are identical anyway; only speed differs).
        _ => ParMode::Off,
    }
}

fn env_mode() -> ParMode {
    static MODE: OnceLock<ParMode> = OnceLock::new();
    *MODE.get_or_init(|| {
        std::env::var("NBC_WORLD_PAR")
            .map(|v| parse_mode(&v))
            .unwrap_or(ParMode::Off)
    })
}

/// Process-wide override encoding: 0 = none, 1 = Off, 2 = Auto,
/// 3 + n = Fixed(n).
static OVERRIDE: AtomicU32 = AtomicU32::new(0);

/// Override `NBC_WORLD_PAR` for the whole process (tests, benchmark
/// drivers); `None` restores environment resolution. A per-world
/// [`World::set_par_mode`](crate::World::set_par_mode) still wins.
pub fn set_override(mode: Option<ParMode>) {
    let enc = match mode {
        None => 0,
        Some(ParMode::Off) => 1,
        Some(ParMode::Auto) => 2,
        Some(ParMode::Fixed(n)) => 3 + (n as u32).min(u32::MAX - 3),
    };
    OVERRIDE.store(enc, Ordering::Relaxed);
}

fn override_mode() -> Option<ParMode> {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        1 => Some(ParMode::Off),
        2 => Some(ParMode::Auto),
        n => Some(ParMode::Fixed((n - 3) as usize)),
    }
}

/// The mode that worlds without a per-world override would resolve to,
/// encoded as a cache-key discriminant for the world-reuse pool (worlds
/// cached under one mode must not be reused under another without a
/// reset — partition diagnostics and engine configuration differ even
/// though results do not).
pub fn mode_key() -> u32 {
    match override_mode().unwrap_or_else(env_mode) {
        ParMode::Off => 1,
        ParMode::Auto => 2,
        ParMode::Fixed(n) => 3u32.saturating_add(n as u32),
    }
}

/// A concrete partitioning decision for one run.
pub(crate) struct ParPlan {
    /// Number of partitions (always ≥ 2).
    pub(crate) nparts: usize,
    /// `owner[rank]` = partition index driving that rank. Node-aligned.
    pub(crate) owner: Vec<u32>,
    /// Conservative window width: the minimum wire latency between ranks
    /// of different partitions.
    pub(crate) lookahead: SimTime,
}

/// Diagnostics of the last partitioned run, surfaced by
/// [`World::par_info`](crate::World::par_info) and the `--profile`
/// benchmark report.
#[derive(Debug, Clone)]
pub struct ParRunInfo {
    /// Partitions used.
    pub nparts: usize,
    /// Conservative window width used.
    pub lookahead: SimTime,
    /// Synchronization windows executed.
    pub windows: u64,
    /// Events dispatched per partition (imbalance diagnostic).
    pub per_part_events: Vec<u64>,
    /// Peak event-queue depth per partition.
    pub per_part_max_depth: Vec<u64>,
}

/// Decide the partitioning for one `run` of `world`. `None` means run
/// serial. Resolution order: the world's own override, then the process
/// override, then `NBC_WORLD_PAR`.
pub(crate) fn plan(world: &World) -> Option<ParPlan> {
    let mode = world
        .par_mode()
        .or_else(override_mode)
        .unwrap_or_else(env_mode);
    let nranks = world.nranks();
    if nranks == 0 {
        return None;
    }
    let topo = world.network().topology();
    // Per-node rank counts over the nodes actually occupied.
    let last_node = (0..nranks).map(|r| topo.node_of(r)).max().unwrap_or(0);
    let mut counts = vec![0u64; last_node + 1];
    for r in 0..nranks {
        counts[topo.node_of(r)] += 1;
    }
    let nodes_used = counts.iter().filter(|&&c| c > 0).count();
    let nparts = match mode {
        ParMode::Off => return None,
        ParMode::Auto => {
            // Inside a sweep worker the machine is already saturated with
            // world-level parallelism; nesting threads would oversubscribe.
            if simcore::par::in_pool_worker() {
                return None;
            }
            let hw = simcore::par::hardware_parallelism();
            if hw < 2 || nranks < AUTO_MIN_RANKS {
                return None;
            }
            hw.min(AUTO_MAX_PARTS).min(nodes_used)
        }
        ParMode::Fixed(n) => n.min(nodes_used),
    };
    if nparts < 2 {
        return None;
    }
    let owner = assign_nodes(&counts, nranks, nparts, topo);
    // Lookahead: minimum wire latency over cross-partition node pairs. A
    // degenerate platform (zero latency) cannot be conservatively
    // parallelized — fall back to serial rather than risk the contract.
    let lookahead = world.network().lookahead(&owner)?;
    if lookahead == SimTime::ZERO {
        return None;
    }
    Some(ParPlan {
        nparts,
        owner,
        lookahead,
    })
}

/// The node-aligned partition assignment the engine would use for a world
/// of this shape at `nparts` partitions, computed without building a
/// `World` — for offline analysis (`trace_inspect --parts`) that wants to
/// attribute per-rank trace data to the engine's real partitions. Returns
/// `owner[rank] = partition` or `None` when the shape cannot be
/// partitioned (fewer occupied nodes than 2, or `nparts < 2`). This is
/// the same `assign_nodes` policy [`plan`] uses; the lookahead
/// profitability check is deliberately not applied — an analyzer wants
/// the mapping even for shapes the engine would run serially.
pub fn partition_owners(
    platform: &netmodel::Platform,
    nranks: usize,
    placement: netmodel::Placement,
    nparts: usize,
) -> Option<Vec<u32>> {
    if nranks == 0 || nparts < 2 {
        return None;
    }
    let topo = netmodel::Topology::new(
        platform.nodes,
        platform.cores_per_node,
        nranks,
        placement,
        platform.torus,
    );
    let last_node = (0..nranks).map(|r| topo.node_of(r)).max().unwrap_or(0);
    let mut counts = vec![0u64; last_node + 1];
    for r in 0..nranks {
        counts[topo.node_of(r)] += 1;
    }
    let nodes_used = counts.iter().filter(|&&c| c > 0).count();
    let nparts = nparts.min(nodes_used);
    if nparts < 2 {
        return None;
    }
    Some(assign_nodes(&counts, nranks, nparts, &topo))
}

/// Greedy node-aligned assignment balancing *rank count* per partition:
/// walk nodes in order, advancing to the next partition when the running
/// total crosses the ideal boundary. Every partition is guaranteed at
/// least one occupied node.
fn assign_nodes(
    counts: &[u64],
    nranks: usize,
    nparts: usize,
    topo: &netmodel::Topology,
) -> Vec<u32> {
    let total: u64 = nranks as u64;
    let occupied: Vec<usize> = (0..counts.len()).filter(|&n| counts[n] > 0).collect();
    let mut node_part = vec![0u32; counts.len()];
    let mut p = 0usize;
    let mut cum = 0u64;
    for (i, &node) in occupied.iter().enumerate() {
        node_part[node] = p as u32;
        cum += counts[node];
        let nodes_left = occupied.len() - i - 1;
        let parts_left = nparts - p - 1;
        if parts_left > 0
            && (cum * nparts as u64 >= total * (p as u64 + 1) || nodes_left == parts_left)
        {
            p += 1;
        }
    }
    (0..nranks).map(|r| node_part[topo.node_of(r)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NoiseConfig;
    use netmodel::{Placement, Platform};

    #[test]
    fn mode_parsing() {
        assert_eq!(parse_mode(""), ParMode::Off);
        assert_eq!(parse_mode("off"), ParMode::Off);
        assert_eq!(parse_mode("OFF"), ParMode::Off);
        assert_eq!(parse_mode("serial"), ParMode::Off);
        assert_eq!(parse_mode("0"), ParMode::Off);
        assert_eq!(parse_mode("1"), ParMode::Off);
        assert_eq!(parse_mode("auto"), ParMode::Auto);
        assert_eq!(parse_mode(" 4 "), ParMode::Fixed(4));
        assert_eq!(parse_mode("nonsense"), ParMode::Off);
    }

    #[test]
    fn override_roundtrip() {
        set_override(Some(ParMode::Fixed(3)));
        assert_eq!(override_mode(), Some(ParMode::Fixed(3)));
        assert_eq!(mode_key(), 6);
        set_override(Some(ParMode::Auto));
        assert_eq!(override_mode(), Some(ParMode::Auto));
        set_override(None);
        assert_eq!(override_mode(), None);
    }

    #[test]
    fn fixed_plan_is_node_aligned_and_balanced() {
        // whale: 64 nodes x 8 cores; 32 ranks round-robin -> 32 nodes.
        let mut w = World::new(
            Platform::whale(),
            32,
            Placement::RoundRobin,
            NoiseConfig::none(),
        );
        w.set_par_mode(Some(ParMode::Fixed(4)));
        let plan = plan(&w).expect("plan");
        assert_eq!(plan.nparts, 4);
        assert!(plan.lookahead > SimTime::ZERO);
        let topo = w.network().topology();
        // Node-aligned: all ranks of one node in one partition.
        let mut node_part = std::collections::BTreeMap::new();
        for r in 0..32 {
            let prev = node_part.insert(topo.node_of(r), plan.owner[r]);
            if let Some(prev) = prev {
                assert_eq!(prev, plan.owner[r]);
            }
        }
        // Balanced: every partition owns ranks, max/min ratio bounded.
        let mut per = [0u64; 4];
        for r in 0..32 {
            per[plan.owner[r] as usize] += 1;
        }
        assert!(per.iter().all(|&c| c > 0), "empty partition: {per:?}");
        assert_eq!(per.iter().sum::<u64>(), 32);
    }

    #[test]
    fn fixed_clamps_to_node_count() {
        // 4 ranks block-placed on whale (8 cores/node) occupy one node:
        // no cross-node pair, so partitioning is impossible.
        let mut w = World::new(Platform::whale(), 4, Placement::Block, NoiseConfig::none());
        w.set_par_mode(Some(ParMode::Fixed(4)));
        assert!(plan(&w).is_none());
    }

    #[test]
    fn partition_owners_matches_engine_plan() {
        let mut w = World::new(
            Platform::whale(),
            32,
            Placement::RoundRobin,
            NoiseConfig::none(),
        );
        w.set_par_mode(Some(ParMode::Fixed(4)));
        let engine = plan(&w).expect("plan");
        let offline = partition_owners(&Platform::whale(), 32, Placement::RoundRobin, 4)
            .expect("offline owners");
        assert_eq!(engine.owner, offline);
        // Unpartitionable shapes report None, same as the engine.
        assert!(partition_owners(&Platform::whale(), 4, Placement::Block, 4).is_none());
        assert!(partition_owners(&Platform::whale(), 8, Placement::RoundRobin, 1).is_none());
    }

    #[test]
    fn off_means_serial() {
        let mut w = World::new(
            Platform::whale(),
            16,
            Placement::RoundRobin,
            NoiseConfig::none(),
        );
        w.set_par_mode(Some(ParMode::Off));
        assert!(plan(&w).is_none());
    }
}
