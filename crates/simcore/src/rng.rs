//! Small deterministic PRNGs for the simulator.
//!
//! The simulation needs *seedable, splittable, allocation-free* randomness:
//! every rank gets its own stream (for compute-noise injection) derived from
//! a master seed, and identical seeds must reproduce identical simulated
//! timelines bit-for-bit. We use SplitMix64 — a tiny, well-studied generator
//! that is more than adequate for noise modelling (we are not doing
//! cryptography or high-dimensional Monte Carlo here).
//!
//! This module (plus [`crate::check`] for test-input generation) is the
//! only source of randomness in the workspace — there are no external RNG
//! dependencies, which keeps builds hermetic and timelines reproducible.

/// SplitMix64 PRNG (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent stream for substream `idx` (e.g. one per rank).
    pub fn split(seed: u64, idx: u64) -> Self {
        let mut base = SplitMix64::new(seed ^ idx.wrapping_mul(0x9E3779B97F4A7C15));
        // Burn a few outputs so adjacent idx values decorrelate quickly.
        base.next_u64();
        base.next_u64();
        base
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        // Multiply-shift method (Lemire); slight bias is irrelevant here.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Approximately normal deviate with mean 0, stddev 1 (sum of 12
    /// uniforms; fine for noise injection).
    pub fn next_gauss(&mut self) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.next_f64();
        }
        acc - 6.0
    }
}

/// A per-rank compute-noise model: multiplies compute durations by
/// `1 + gauss()*jitter`, and occasionally (probability `spike_prob`) injects
/// a large OS-noise spike of relative magnitude `spike_scale`.
///
/// This reproduces the measurement outliers that the paper reports as the
/// cause of ADCL's occasional wrong decision, and exercises the statistical
/// filter in the selection logic.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    rng: SplitMix64,
    /// Relative stddev of the multiplicative jitter (e.g. 0.01 = 1%).
    pub jitter: f64,
    /// Probability that a compute phase suffers an OS-noise spike.
    pub spike_prob: f64,
    /// Relative magnitude of a spike (e.g. 2.0 = 3x normal duration).
    pub spike_scale: f64,
}

impl NoiseModel {
    /// A noiseless model (factor always exactly 1).
    pub fn none() -> Self {
        NoiseModel {
            rng: SplitMix64::new(0),
            jitter: 0.0,
            spike_prob: 0.0,
            spike_scale: 0.0,
        }
    }

    /// Noise stream for one rank derived from a master seed.
    pub fn for_rank(
        seed: u64,
        rank: usize,
        jitter: f64,
        spike_prob: f64,
        spike_scale: f64,
    ) -> Self {
        NoiseModel {
            rng: SplitMix64::split(seed, rank as u64),
            jitter,
            spike_prob,
            spike_scale,
        }
    }

    /// True if this model never perturbs durations.
    pub fn is_none(&self) -> bool {
        self.jitter == 0.0 && self.spike_prob == 0.0
    }

    /// Sample a multiplicative factor (>= 0.5) for one compute phase.
    pub fn factor(&mut self) -> f64 {
        if self.is_none() {
            return 1.0;
        }
        let mut f = 1.0 + self.rng.next_gauss() * self.jitter;
        if self.spike_prob > 0.0 && self.rng.next_f64() < self.spike_prob {
            f += self.spike_scale * (0.5 + self.rng.next_f64());
        }
        f.max(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent() {
        let mut a = SplitMix64::split(7, 0);
        let mut b = SplitMix64::split(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.next_below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gauss_roughly_standard() {
        let mut r = SplitMix64::new(13);
        let xs: Vec<f64> = (0..20_000).map(|_| r.next_gauss()).collect();
        let m = crate::stats::mean(&xs);
        let s = crate::stats::stddev(&xs);
        assert!(m.abs() < 0.05, "mean={m}");
        assert!((s - 1.0).abs() < 0.05, "stddev={s}");
    }

    #[test]
    fn noise_none_is_identity() {
        let mut n = NoiseModel::none();
        for _ in 0..10 {
            assert_eq!(n.factor(), 1.0);
        }
    }

    #[test]
    fn noise_factor_centered_near_one() {
        let mut n = NoiseModel::for_rank(3, 0, 0.01, 0.0, 0.0);
        let xs: Vec<f64> = (0..10_000).map(|_| n.factor()).collect();
        let m = crate::stats::mean(&xs);
        assert!((m - 1.0).abs() < 0.01, "mean factor {m}");
    }

    #[test]
    fn spikes_occur_at_configured_rate() {
        let mut n = NoiseModel::for_rank(5, 1, 0.0, 0.1, 2.0);
        let spikes = (0..10_000).filter(|_| n.factor() > 1.5).count();
        // ~10% +- slack
        assert!((700..1300).contains(&spikes), "spikes={spikes}");
    }
}
