//! Process-wide registry of named counters, gauges and histograms.
//!
//! Every subsystem that wants a counter registers it here by name instead of
//! declaring its own `static AtomicU64` (the pattern `PAYLOAD_ALLOCS` in
//! [`crate::stats`] used before this module existed). The registry gives one
//! place to snapshot, reset and report *all* engine metrics — the perf
//! trajectory harness dumps it into `BENCH_engine.json` (schema v3) and
//! `perf_trajectory` prints it at the end of a session.
//!
//! Naming convention: `crate.subsystem.metric`, lowercase, dot-separated —
//! e.g. `mpisim.rdv_stalls`, `nbc.cache.hits`, `simcore.payload_allocs`.
//!
//! Design notes:
//!
//! * Handles are `&'static` references to leaked allocations; a metric, once
//!   registered, lives for the life of the process. Call sites cache the
//!   handle in a `OnceLock` so the registry lock is taken once per site, not
//!   per increment.
//! * All updates are relaxed atomics: metrics never participate in event
//!   ordering and must never perturb simulated timing.
//! * Hot per-event counters in the simulator accumulate in plain fields and
//!   flush here once per `World::run`, so parallel sweeps don't contend on a
//!   shared cache line millions of times per run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-or-max value (queue depths, high-water marks).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Keep the larger of the current and observed value (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two buckets a [`Histogram`] keeps: bucket `i` counts
/// observations `v` with `floor(log2(max(v,1))) == i`, i.e. `[2^i, 2^(i+1))`.
pub const HIST_BUCKETS: usize = 64;

/// A log2-bucketed histogram of u64 observations (e.g. stall nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = 63 - v.max(1).leading_zeros() as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean observation (0.0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Count in log2 bucket `i` (`[2^i, 2^(i+1))`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Drain a [`LocalHistogram`] into this shared histogram. The local
    /// accumulator is zeroed, so repeated flushes never double-count.
    pub fn absorb(&self, local: &mut LocalHistogram) {
        if local.count == 0 {
            return;
        }
        for (i, b) in local.buckets.iter_mut().enumerate() {
            if *b > 0 {
                self.buckets[i].fetch_add(*b, Ordering::Relaxed);
                *b = 0;
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum.fetch_add(local.sum, Ordering::Relaxed);
        self.max.fetch_max(local.max, Ordering::Relaxed);
        local.count = 0;
        local.sum = 0;
        local.max = 0;
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// An unsynchronized histogram for hot-path accumulation: the same log2
/// bucketing as [`Histogram`] but plain `u64` fields, so recording costs no
/// atomic RMW and shares no cache line with other workers. Owners (one per
/// `World`) record locally and [`Histogram::absorb`] the contents into the
/// shared registry histogram once per run — the merge is a commutative sum,
/// so the flushed registry totals are identical for every interleaving of
/// workers (and therefore for every `jobs` value).
#[derive(Debug)]
pub struct LocalHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LocalHistogram {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation (no atomics).
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = 63 - v.max(1).leading_zeros() as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of observations accumulated since the last flush.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations accumulated since the last flush.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold another local accumulator into this one (no atomics). The
    /// partitioned world engine gives every partition its own accumulator
    /// and merges them at the join point; addition is commutative, so the
    /// merged totals are independent of partition count.
    pub fn merge(&mut self, other: &LocalHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> std::sync::MutexGuard<'static, HashMap<&'static str, Metric>> {
    static REG: OnceLock<Mutex<HashMap<&'static str, Metric>>> = OnceLock::new();
    // Tolerate poisoning: a kind-mismatch panic under the lock leaves the
    // map itself consistent (the entry insert completed first).
    REG.get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Look up (registering on first use) the counter named `name`.
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry();
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Counter(Box::leak(Box::default())))
    {
        Metric::Counter(c) => c,
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Look up (registering on first use) the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry();
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Gauge(Box::leak(Box::default())))
    {
        Metric::Gauge(g) => g,
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Look up (registering on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry();
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Histogram(Box::leak(Box::default())))
    {
        Metric::Histogram(h) => h,
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Reading {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram summary: observation count, sum, max.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Largest observation.
        max: u64,
    },
}

impl Reading {
    /// The scalar most useful for reporting: the value for counters and
    /// gauges, the observation count for histograms.
    pub fn value(&self) -> u64 {
        match *self {
            Reading::Counter(v) | Reading::Gauge(v) => v,
            Reading::Histogram { count, .. } => count,
        }
    }
}

/// Snapshot every registered metric, sorted by name (deterministic output).
pub fn snapshot() -> Vec<(&'static str, Reading)> {
    let reg = registry();
    let mut out: Vec<(&'static str, Reading)> = reg
        .iter()
        .map(|(&name, m)| {
            let r = match m {
                Metric::Counter(c) => Reading::Counter(c.get()),
                Metric::Gauge(g) => Reading::Gauge(g.get()),
                Metric::Histogram(h) => Reading::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    max: h.max(),
                },
            };
            (name, r)
        })
        .collect();
    out.sort_by_key(|&(name, _)| name);
    out
}

/// Reset every registered metric to zero (for per-session reporting).
pub fn reset_all() {
    let reg = registry();
    for m in reg.values() {
        match m {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

/// A scoped view over the registry: captures a baseline at construction and
/// reports per-scope deltas, so one `World` (or one measurement) can account
/// its own share of the process-wide totals.
pub struct Scope {
    base: Vec<(&'static str, Reading)>,
}

impl Scope {
    /// Capture the current registry state as the baseline.
    pub fn begin() -> Scope {
        Scope { base: snapshot() }
    }

    /// Metrics that changed since the baseline, as `(name, delta)` pairs
    /// sorted by name. Counter/histogram deltas are differences; gauges
    /// report their current value (a level, not a flow). Metrics registered
    /// after the baseline appear with their full value.
    pub fn delta(&self) -> Vec<(&'static str, u64)> {
        let now = snapshot();
        let mut out = Vec::new();
        for (name, reading) in now {
            let base = self
                .base
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, r)| r.value());
            let v = match reading {
                Reading::Gauge(g) => g,
                r => r.value().saturating_sub(base),
            };
            if v > 0 {
                out.push((name, v));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registers_and_counts() {
        let c = counter("test.metrics.counter_a");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        // Same name returns the same handle.
        assert_eq!(counter("test.metrics.counter_a").get(), before + 5);
    }

    #[test]
    fn gauge_max_and_set() {
        let g = gauge("test.metrics.gauge_a");
        g.set(3);
        g.record_max(10);
        g.record_max(7);
        assert_eq!(g.get(), 10);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_log2() {
        let h = histogram("test.metrics.hist_a");
        h.record(0); // bucket 0 (clamped to 1)
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(1023); // bucket 9
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1026);
        assert_eq!(h.max(), 1023);
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(9), 1);
        assert!((h.mean() - 1026.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn local_histogram_absorbs_without_double_count() {
        let h = histogram("test.metrics.hist_local");
        let mut l = LocalHistogram::new();
        l.record(1);
        l.record(2);
        l.record(1023);
        assert_eq!(l.count(), 3);
        assert_eq!(l.sum(), 1026);
        h.absorb(&mut l);
        assert!(l.is_empty());
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1026);
        assert_eq!(h.max(), 1023);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(9), 1);
        // Flushing an already-drained local is a no-op.
        h.absorb(&mut l);
        assert_eq!(h.count(), 3);
        // A second fill/flush accumulates.
        l.record(4);
        h.absorb(&mut l);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1030);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        counter("test.metrics.kind_clash");
        gauge("test.metrics.kind_clash");
    }

    #[test]
    fn snapshot_is_sorted_and_scope_deltas() {
        let c = counter("test.metrics.scope_c");
        let scope = Scope::begin();
        c.add(7);
        let d = scope.delta();
        assert!(d.contains(&("test.metrics.scope_c", 7)));
        let snap = snapshot();
        let names: Vec<_> = snap.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
