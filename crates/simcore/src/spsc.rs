//! Bounded single-producer / single-consumer channels for the partitioned
//! world engine.
//!
//! Each ordered partition pair gets one `Spsc` ring: the owning partition of
//! a message's *source* rank pushes cross-partition wire events, the
//! partition owning the *destination* rank drains them. The conservative
//! window protocol makes access strictly phase-disjoint — producers only
//! push while processing events (between barrier A and barrier B of a
//! window) and consumers only drain at the top of the next window (between
//! barrier B and the following barrier A) — so the ring never sees a
//! concurrent push/pop race on the same slot generation. The atomics still
//! carry the cross-thread happens-before edges (barriers alone order the
//! threads; `Acquire`/`Release` on head/tail publish the slot writes).
//!
//! The ring must never block: a producer that parks mid-window while the
//! consumer waits at a barrier is a deadlock. Overflow past the fixed
//! capacity therefore spills into a `Mutex<Vec>` side channel — unbounded,
//! but only touched on the rare window where a burst exceeds `CAP`, and the
//! phase discipline means the mutex is never contended for long.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Ring capacity per channel. Windows rarely move more than a few hundred
/// cross-partition events; 2048 keeps the common case allocation-free
/// without making a `nparts²` channel matrix heavy at 8 partitions.
const CAP: usize = 2048;

/// A bounded SPSC ring with a mutex-guarded overflow spill.
///
/// `push` never blocks and never fails; `drain_into` removes everything the
/// producer published before the synchronization point, ring first then
/// spill, preserving push order.
pub struct Spsc<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer will read. Only advanced by the consumer.
    head: AtomicUsize,
    /// Next slot the producer will write. Only advanced by the producer.
    tail: AtomicUsize,
    spill: Mutex<Vec<T>>,
}

// SAFETY: the ring hands each `T` from exactly one thread to exactly one
// other thread; slots are plain storage. `T: Send` is all that is required.
unsafe impl<T: Send> Sync for Spsc<T> {}
unsafe impl<T: Send> Send for Spsc<T> {}

impl<T> Default for Spsc<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Spsc<T> {
    pub fn new() -> Self {
        let mut v = Vec::with_capacity(CAP);
        for _ in 0..CAP {
            v.push(UnsafeCell::new(MaybeUninit::uninit()));
        }
        Spsc {
            slots: v.into_boxed_slice(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            spill: Mutex::new(Vec::new()),
        }
    }

    /// Producer side: enqueue `item`. Never blocks; overflow goes to the
    /// spill vector. Must only be called from the single producer thread.
    pub fn push(&self, item: T) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) < CAP {
            // SAFETY: single producer; the slot at `tail` is outside the
            // consumer's visible [head, tail) range, so nobody else touches
            // it until the Release store below publishes it.
            unsafe {
                (*self.slots[tail % CAP].get()).write(item);
            }
            self.tail.store(tail.wrapping_add(1), Ordering::Release);
        } else {
            self.spill.lock().unwrap().push(item);
        }
    }

    /// Consumer side: move every published item into `out` in push order.
    /// Must only be called from the single consumer thread, and (per the
    /// window protocol) only after synchronizing with the producer's last
    /// `push` of the phase.
    pub fn drain_into(&self, out: &mut Vec<T>) {
        let tail = self.tail.load(Ordering::Acquire);
        let mut head = self.head.load(Ordering::Relaxed);
        while head != tail {
            // SAFETY: single consumer; slots in [head, tail) were published
            // by the Acquire load of `tail` and the producer will not reuse
            // them until head advances past them (Release below).
            let item = unsafe { (*self.slots[head % CAP].get()).assume_init_read() };
            out.push(item);
            head = head.wrapping_add(1);
        }
        self.head.store(head, Ordering::Release);
        let mut spill = self.spill.lock().unwrap();
        if !spill.is_empty() {
            out.append(&mut *spill);
        }
    }

    /// True if nothing is pending (consumer-side view).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Relaxed) == self.tail.load(Ordering::Acquire)
            && self.spill.lock().unwrap().is_empty()
    }
}

impl<T> Drop for Spsc<T> {
    fn drop(&mut self) {
        // Drop any undrained items (e.g. a run aborted by an error).
        let tail = *self.tail.get_mut();
        let mut head = *self.head.get_mut();
        while head != tail {
            unsafe {
                (*self.slots[head % CAP].get()).assume_init_drop();
            }
            head = head.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_then_drain_preserves_order() {
        let ch: Spsc<u32> = Spsc::new();
        for i in 0..100 {
            ch.push(i);
        }
        let mut out = Vec::new();
        ch.drain_into(&mut out);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert!(ch.is_empty());
    }

    #[test]
    fn overflow_spills_without_blocking_and_keeps_order() {
        let ch: Spsc<usize> = Spsc::new();
        let n = CAP + 500;
        for i in 0..n {
            ch.push(i);
        }
        let mut out = Vec::new();
        ch.drain_into(&mut out);
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_phases_reuse_ring() {
        let ch: Spsc<usize> = Spsc::new();
        let mut next = 0usize;
        let mut out = Vec::new();
        // Many small phases wrap the ring indices several times.
        for _ in 0..50 {
            for _ in 0..CAP / 3 {
                ch.push(next);
                next += 1;
            }
            ch.drain_into(&mut out);
        }
        assert_eq!(out, (0..next).collect::<Vec<_>>());
    }

    #[test]
    fn cross_thread_handoff_in_phases() {
        // Mimic the window protocol: producer fills, both sides meet at a
        // barrier, consumer drains. Repeat.
        let ch = Arc::new(Spsc::<u64>::new());
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let phases = 20u64;
        let per_phase = 700u64; // below CAP: pure ring path
        let prod = {
            let ch = Arc::clone(&ch);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut v = 0u64;
                for _ in 0..phases {
                    for _ in 0..per_phase {
                        ch.push(v);
                        v += 1;
                    }
                    barrier.wait(); // end of producing phase
                    barrier.wait(); // consumer finished draining
                }
            })
        };
        let mut out = Vec::new();
        for _ in 0..phases {
            barrier.wait();
            ch.drain_into(&mut out);
            barrier.wait();
        }
        prod.join().unwrap();
        assert_eq!(out, (0..phases * per_phase).collect::<Vec<_>>());
    }

    #[test]
    fn drop_releases_undrained_items() {
        let ch: Spsc<Arc<()>> = Spsc::new();
        let token = Arc::new(());
        for _ in 0..10 {
            ch.push(Arc::clone(&token));
        }
        ch.push(Arc::clone(&token)); // plus one via assorted paths
        drop(ch);
        assert_eq!(Arc::strong_count(&token), 1);
    }
}
