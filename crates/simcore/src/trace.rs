//! Deterministic span/instant event recorder for the simulation engine.
//!
//! When enabled (`NBC_TRACE` or [`set_enabled`]), the simulator and the NBC
//! executor record spans (named intervals) and instant events stamped with
//! **simulated** time plus rank attribution, buffered per rank inside each
//! `World` and published to a process-wide collector when the run finishes.
//! The collected timeline renders as Chrome `trace_event` JSON (the format
//! Perfetto and `chrome://tracing` open directly): each simulation run
//! becomes one "process" (pid) and each rank one "thread" (tid).
//!
//! Determinism and zero overhead when off are the two hard guarantees:
//!
//! * Events carry only simulated time — recording them never advances the
//!   clock, takes no locks on the hot path (buffers are world-local), and
//!   figure outputs are byte-identical with tracing on or off.
//! * With `NBC_TRACE` unset every instrumentation site reduces to one load
//!   of a cached boolean (`Option::is_none` on the world's buffer); the
//!   environment is read once per process.
//!
//! Volume control: a single microbenchmark at `num_progress = 1000` emits
//! millions of library-call spans, so each world truncates its buffers at
//! [`world_event_cap`] events split evenly across ranks (dropping each
//! rank's tail, counting the drops) and the global collector stops
//! accepting whole runs past a fixed budget — better a truncated trace
//! than an OOM on a 512-rank sweep. The cap is enforced *per rank* rather
//! than per world so the keep/drop decision for an event depends only on
//! that rank's own history: the partitioned engine records each rank's
//! events on whichever thread owns it, and a world-global cap would make
//! truncation depend on cross-rank interleaving.

use crate::time::SimTime;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Env var controlling tracing: unset/`""`/`"0"`/`"off"`/`"false"` disable;
/// `"1"`/`"on"`/`"true"` enable without choosing an output path; any other
/// value enables *and* names the output file.
pub const ENV_VAR: &str = "NBC_TRACE";

/// Env var overriding the per-world event cap (default [`DEFAULT_WORLD_CAP`]).
pub const CAP_ENV_VAR: &str = "NBC_TRACE_CAP";

/// Default cap on events buffered by one world (across all ranks).
pub const DEFAULT_WORLD_CAP: usize = 1_000_000;

/// Cap on events held by the global collector; runs arriving after the
/// budget is spent are dropped whole (and counted).
pub const GLOBAL_EVENT_CAP: u64 = 8_000_000;

// 0 = follow the environment, 1 = forced off, 2 = forced on.
static ENABLED_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static ENABLED_ENV: OnceLock<bool> = OnceLock::new();
static ENV_PATH: OnceLock<Option<String>> = OnceLock::new();

fn env_value() -> Option<String> {
    std::env::var(ENV_VAR).ok().filter(|v| !v.is_empty())
}

fn env_enabled() -> bool {
    *ENABLED_ENV
        .get_or_init(|| env_value().is_some_and(|v| !matches!(v.as_str(), "0" | "off" | "false")))
}

fn env_path() -> Option<&'static str> {
    ENV_PATH
        .get_or_init(|| {
            env_value()
                .filter(|v| !matches!(v.as_str(), "0" | "off" | "false" | "1" | "on" | "true"))
        })
        .as_deref()
}

/// Is tracing enabled? One relaxed atomic load plus (after first use) one
/// `OnceLock` read — the only cost instrumentation pays when off.
#[inline]
pub fn enabled() -> bool {
    match ENABLED_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_enabled(),
    }
}

/// Force tracing on or off, overriding `NBC_TRACE` (tests, `--trace-out`).
pub fn set_enabled(on: bool) {
    ENABLED_OVERRIDE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Drop the [`set_enabled`] override and follow the environment again.
pub fn clear_enabled_override() {
    ENABLED_OVERRIDE.store(0, Ordering::Relaxed);
}

fn out_path_override() -> &'static Mutex<Option<String>> {
    static P: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    P.get_or_init(|| Mutex::new(None))
}

/// Set the trace output path programmatically (the `--trace-out` flag) and
/// enable tracing. Takes precedence over a path given via `NBC_TRACE`.
pub fn set_out_path(path: &str) {
    *out_path_override().lock().unwrap() = Some(path.to_string());
    set_enabled(true);
}

/// Where to write the combined trace, if anywhere: the [`set_out_path`]
/// override, else a path-valued `NBC_TRACE`.
pub fn out_path() -> Option<String> {
    if let Some(p) = out_path_override().lock().unwrap().clone() {
        return Some(p);
    }
    env_path().map(str::to_string)
}

/// Per-world event cap (`NBC_TRACE_CAP`, default [`DEFAULT_WORLD_CAP`]).
pub fn world_event_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var(CAP_ENV_VAR)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_WORLD_CAP)
    })
}

/// One recorded event. Spans have a duration; instants don't. The two arg
/// slots hold small numeric attributes (an empty key marks an unused slot);
/// names and keys are `&'static str` so recording never allocates per event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Event name (e.g. `"compute"`, `"rdv_stall"`).
    pub name: &'static str,
    /// Category, used by trace viewers to group/filter (e.g. `"msg"`).
    pub cat: &'static str,
    /// Start time (spans) or the instant itself.
    pub ts: SimTime,
    /// Span duration; `None` makes this an instant event.
    pub dur: Option<SimTime>,
    /// Up to two numeric attributes; an empty key means the slot is unused.
    pub args: [(&'static str, u64); 2],
}

/// No attributes, for the common case.
pub const NO_ARGS: [(&str, u64); 2] = [("", 0), ("", 0)];

/// The timeline of one simulation run: per-rank event buffers plus a label
/// naming the run (platform/op/config) for the trace viewer.
#[derive(Debug)]
pub struct WorldTrace {
    /// Human-readable run label, shown as the Perfetto process name.
    pub label: String,
    /// Events per rank, in recording order.
    pub ranks: Vec<Vec<Event>>,
    /// Events dropped after a rank's share of the cap was hit.
    pub dropped: u64,
    events: usize,
    rank_cap: usize,
}

/// Snapshot of a [`WorldTrace`]'s high-water marks, taken with
/// [`WorldTrace::mark`] so an errored run can be rolled back with
/// [`WorldTrace::truncate_to`].
#[derive(Debug, Clone)]
pub struct TraceMark {
    lens: Vec<usize>,
    dropped: u64,
    events: usize,
}

impl WorldTrace {
    /// Fresh empty trace for `nranks` ranks. The per-world event budget
    /// ([`world_event_cap`]) is divided evenly into per-rank caps.
    pub fn new(nranks: usize) -> WorldTrace {
        WorldTrace {
            label: String::new(),
            ranks: vec![Vec::new(); nranks],
            dropped: 0,
            events: 0,
            rank_cap: (world_event_cap() / nranks.max(1)).max(1),
        }
    }

    /// Record a span `[start, end)` on `rank`. `end < start` is clamped to
    /// a zero-length span at `start`.
    ///
    /// Kept out of line (like [`WorldTrace::instant`]) so the simulator's
    /// hot functions, whose instrumentation sites are dead branches when
    /// tracing is off, don't grow by the inlined recording body.
    #[inline(never)]
    pub fn span(
        &mut self,
        rank: usize,
        name: &'static str,
        cat: &'static str,
        start: SimTime,
        end: SimTime,
        args: [(&'static str, u64); 2],
    ) {
        self.push(
            rank,
            Event {
                name,
                cat,
                ts: start,
                dur: Some(end.saturating_sub(start)),
                args,
            },
        );
    }

    /// Record an instant event on `rank` at `ts`.
    #[inline(never)]
    pub fn instant(
        &mut self,
        rank: usize,
        name: &'static str,
        cat: &'static str,
        ts: SimTime,
        args: [(&'static str, u64); 2],
    ) {
        self.push(
            rank,
            Event {
                name,
                cat,
                ts,
                dur: None,
                args,
            },
        );
    }

    #[inline]
    fn push(&mut self, rank: usize, ev: Event) {
        if self.ranks[rank].len() >= self.rank_cap {
            self.dropped += 1;
            return;
        }
        self.events += 1;
        self.ranks[rank].push(ev);
    }

    /// Total events recorded (across ranks).
    pub fn len(&self) -> usize {
        self.events
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Snapshot current per-rank lengths and drop counters, so a run that
    /// later fails can be erased with [`WorldTrace::truncate_to`].
    pub fn mark(&self) -> TraceMark {
        TraceMark {
            lens: self.ranks.iter().map(Vec::len).collect(),
            dropped: self.dropped,
            events: self.events,
        }
    }

    /// Discard everything recorded after `mark` was taken. Used on the
    /// `Err` path of a run: an errored run's trace contents are not part of
    /// the determinism contract, so the world rolls its buffers back to the
    /// run-start mark rather than publishing a partial timeline.
    pub fn truncate_to(&mut self, mark: &TraceMark) {
        debug_assert_eq!(mark.lens.len(), self.ranks.len());
        for (r, &len) in self.ranks.iter_mut().zip(mark.lens.iter()) {
            r.truncate(len);
        }
        self.dropped = mark.dropped;
        self.events = mark.events;
    }

    /// Append another trace's per-rank buffers onto this one. The
    /// partitioned engine gives each shard its own `WorldTrace` (full rank
    /// fan-out, only owned ranks populated) and absorbs them back after the
    /// run; per-rank caps make the keep/drop decisions rank-local, so the
    /// merged buffers are identical to a serial recording.
    pub fn absorb(&mut self, other: WorldTrace) {
        debug_assert_eq!(self.ranks.len(), other.ranks.len());
        for (mine, theirs) in self.ranks.iter_mut().zip(other.ranks) {
            self.events += theirs.len();
            if mine.is_empty() {
                *mine = theirs;
            } else {
                mine.extend(theirs);
            }
        }
        self.dropped += other.dropped;
    }
}

static COLLECTED_EVENTS: AtomicU64 = AtomicU64::new(0);
static DROPPED_RUNS: AtomicU64 = AtomicU64::new(0);

fn collector() -> &'static Mutex<Vec<WorldTrace>> {
    static C: OnceLock<Mutex<Vec<WorldTrace>>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(Vec::new()))
}

/// Publish a finished world's trace to the global collector. Runs arriving
/// after [`GLOBAL_EVENT_CAP`] total events are dropped whole (and counted)
/// to bound memory on huge sweeps. Publish order — and therefore pid
/// assignment in the export — follows run *completion* order, which is
/// deterministic for serial runs; under `--jobs N` the per-run content is
/// still deterministic but the pid numbering may vary.
pub fn publish(trace: WorldTrace) {
    if trace.is_empty() {
        return;
    }
    let n = trace.len() as u64;
    if COLLECTED_EVENTS.fetch_add(n, Ordering::Relaxed) + n > GLOBAL_EVENT_CAP {
        COLLECTED_EVENTS.fetch_sub(n, Ordering::Relaxed);
        DROPPED_RUNS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    collector().lock().unwrap().push(trace);
}

/// Remove and return everything collected so far (the writer calls this
/// once at exit; tests use it for isolation).
pub fn take_all() -> Vec<WorldTrace> {
    COLLECTED_EVENTS.store(0, Ordering::Relaxed);
    std::mem::take(&mut *collector().lock().unwrap())
}

/// Number of runs dropped whole because the collector was full.
pub fn dropped_runs() -> u64 {
    DROPPED_RUNS.load(Ordering::Relaxed)
}

/// Number of published (collected) runs currently held.
pub fn collected_runs() -> usize {
    collector().lock().unwrap().len()
}

fn push_ts(out: &mut String, t: SimTime) {
    // Chrome trace timestamps are microseconds; keep nanosecond precision
    // with three decimals. Integer formatting keeps this exact.
    let ns = t.as_nanos();
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

fn push_event_json(out: &mut String, pid: usize, tid: usize, ev: &Event) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":",
        ev.name, ev.cat, pid, tid
    ));
    push_ts(out, ev.ts);
    match ev.dur {
        Some(d) => {
            out.push_str(",\"ph\":\"X\",\"dur\":");
            push_ts(out, d);
        }
        None => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
    }
    let args: Vec<String> = ev
        .args
        .iter()
        .filter(|(k, _)| !k.is_empty())
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect();
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        out.push_str(&args.join(","));
        out.push('}');
    }
    out.push('}');
}

/// Escape `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters). Shared by every hand-written JSON
/// emitter in the workspace that deals with dynamic strings.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render collected traces as the *contents* of a Chrome `traceEvents`
/// array (one event object per line, comma-separated). Each trace becomes
/// one pid (1-based, in `traces` order) with a `process_name` metadata
/// record carrying its label; each rank is a tid.
pub fn render_trace_events(traces: &[WorldTrace]) -> String {
    let mut out = String::new();
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
    };
    for (i, t) in traces.iter().enumerate() {
        let pid = i + 1;
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            pid,
            escape(if t.label.is_empty() { "run" } else { &t.label })
        ));
        for (tid, evs) in t.ranks.iter().enumerate() {
            for ev in evs {
                sep(&mut out);
                push_event_json(&mut out, pid, tid, ev);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_without_env() {
        // The test runner may set NBC_TRACE; exercise the override paths.
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        clear_enabled_override();
    }

    #[test]
    fn world_trace_caps_and_counts() {
        let mut t = WorldTrace::new(2);
        t.rank_cap = 2;
        // Ranks receive 3 (rank 0) and 2 (rank 1) events; rank 0's third is
        // dropped by its per-rank cap, independent of rank 1's history.
        for i in 0..5u64 {
            t.instant(
                (i % 2) as usize,
                "tick",
                "test",
                SimTime::from_nanos(i),
                NO_ARGS,
            );
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped, 1);
        assert_eq!(t.ranks[0].len(), 2);
        assert_eq!(t.ranks[1].len(), 2);
    }

    #[test]
    fn mark_and_truncate_roll_back() {
        let mut t = WorldTrace::new(2);
        t.rank_cap = 2;
        t.instant(0, "keep", "test", SimTime::ZERO, NO_ARGS);
        let m = t.mark();
        t.instant(0, "rollback", "test", SimTime::from_nanos(1), NO_ARGS);
        t.instant(0, "dropped", "test", SimTime::from_nanos(2), NO_ARGS); // over cap
        t.instant(1, "rollback", "test", SimTime::from_nanos(3), NO_ARGS);
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped, 1);
        t.truncate_to(&m);
        assert_eq!(t.len(), 1);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.ranks[0].len(), 1);
        assert!(t.ranks[1].is_empty());
        assert_eq!(t.ranks[0][0].name, "keep");
    }

    #[test]
    fn absorb_merges_rank_major() {
        let mut a = WorldTrace::new(2);
        let mut b = WorldTrace::new(2);
        a.instant(0, "a0", "test", SimTime::ZERO, NO_ARGS);
        b.instant(1, "b1", "test", SimTime::from_nanos(5), NO_ARGS);
        b.dropped = 3;
        a.absorb(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.dropped, 3);
        assert_eq!(a.ranks[0][0].name, "a0");
        assert_eq!(a.ranks[1][0].name, "b1");
    }

    #[test]
    fn render_emits_spans_and_instants() {
        let mut t = WorldTrace::new(1);
        t.label = "unit \"test\"".to_string();
        t.span(
            0,
            "compute",
            "rank",
            SimTime::from_nanos(1500),
            SimTime::from_micros(3),
            [("bytes", 64), ("", 0)],
        );
        t.instant(0, "poll", "prog", SimTime::from_nanos(10), NO_ARGS);
        let s = render_trace_events(&[t]);
        assert!(s.contains("\"ph\":\"M\""));
        assert!(s.contains("unit \\\"test\\\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ts\":1.500"));
        assert!(s.contains("\"dur\":1.500"));
        assert!(s.contains("\"bytes\":64"));
        assert!(s.contains("\"ph\":\"i\""));
    }

    #[test]
    fn span_clamps_negative_duration() {
        let mut t = WorldTrace::new(1);
        t.span(
            0,
            "x",
            "test",
            SimTime::from_nanos(10),
            SimTime::from_nanos(5),
            NO_ARGS,
        );
        assert_eq!(t.ranks[0][0].dur, Some(SimTime::ZERO));
    }
}
