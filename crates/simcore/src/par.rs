//! Dependency-free parallel sweep engine.
//!
//! The experiment surface of this repo is thousands of *independent*
//! deterministic simulations (every figure binary, the §IV-A verification
//! sweep, the §IV-B FFT sweep). Each simulation owns its `World` and derives
//! its own seed from the scenario parameters, so they can run on any number
//! of OS threads as long as results are merged back in input order — which
//! is exactly what [`par_map`] guarantees. There is no rayon here (the
//! build environment is offline): workers are `std::thread::scope` threads
//! pulling chunks off a shared atomic cursor.
//!
//! Determinism contract: `par_map(jobs, items, f)` returns bit-identical
//! output for every `jobs` value, including 1, provided `f(i, &items[i])`
//! itself is deterministic and does not depend on global mutable state.
//! Simulations satisfy this by construction (integer-nanosecond virtual
//! time, per-simulation seeds from [`derive_seed`]).

use crate::rng::SplitMix64;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// Resolve a requested worker count to an actual one.
///
/// Priority: an explicit positive request (e.g. `--jobs N`), then the
/// `NBC_JOBS` environment variable, then `std::thread::available_parallelism`.
/// `Some(0)` and `None` both mean "auto".
pub fn effective_jobs(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        if n > 0 {
            return n;
        }
    }
    if let Ok(v) = std::env::var("NBC_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derive an independent simulation seed for work item `idx` from a master
/// seed. Two levels of SplitMix64 mixing keep adjacent indices decorrelated
/// and make the result independent of how the sweep is partitioned across
/// threads.
pub fn derive_seed(master: u64, idx: u64) -> u64 {
    SplitMix64::split(master, idx).next_u64()
}

/// Map `f` over `items` on `jobs` worker threads, returning results in
/// input order.
///
/// Work is distributed through a chunked atomic cursor: each worker claims
/// a contiguous run of indices at a time (chunk size scales with
/// `len / (jobs * 4)`, floor 1) so cheap items amortize the cursor traffic
/// while the tail still load-balances. Results travel back over a channel
/// tagged with their index and are reassembled into input order, so the
/// output is invariant under `jobs`.
///
/// `jobs <= 1` (or a single item) short-circuits to a plain serial loop on
/// the calling thread — no threads are spawned, which keeps `--jobs 1` a
/// true serial baseline for the perf harness.
///
/// A panic in `f` propagates to the caller (via scope join) rather than
/// deadlocking the collector.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let chunk = (n / (jobs * 4)).max(1);
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    thread::scope(|s| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            s.spawn(move || loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for (i, item) in items.iter().enumerate().take(end).skip(start) {
                    // A closed channel means the collector is gone (caller
                    // panicked); just stop working.
                    if tx.send((i, f(i, item))).is_err() {
                        return;
                    }
                }
            });
        }
    });
    drop(tx);

    // All workers have joined (and any panic has propagated), so the
    // channel now holds exactly one result per index.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx {
        debug_assert!(slots[i].is_none(), "duplicate result for index {i}");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, o)| o.unwrap_or_else(|| panic!("missing result for index {i}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_for_any_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(1, &items, |i, &x| x * 3 + i as u64);
        for jobs in [2, 3, 8, 64, 1000] {
            let par = par_map(jobs, &items, |i, &x| x * 3 + i as u64);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[41], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn preserves_input_order_not_completion_order() {
        // Make early items slow so later items finish first.
        let items: Vec<usize> = (0..16).collect();
        let out = par_map(4, &items, |_, &x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..8).collect();
        par_map(4, &items, |_, &x| {
            if x == 5 {
                panic!("worker failure");
            }
            x
        });
    }

    #[test]
    fn derive_seed_decorrelates_indices() {
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(7, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
        // And is independent of any other master seed's stream.
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn effective_jobs_resolution() {
        assert_eq!(effective_jobs(Some(5)), 5);
        std::env::set_var("NBC_JOBS", "3");
        assert_eq!(effective_jobs(None), 3);
        assert_eq!(effective_jobs(Some(0)), 3);
        std::env::set_var("NBC_JOBS", "not a number");
        assert!(effective_jobs(None) >= 1);
        std::env::remove_var("NBC_JOBS");
        assert!(effective_jobs(None) >= 1);
    }
}
