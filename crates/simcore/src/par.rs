//! Dependency-free parallel sweep engine.
//!
//! The experiment surface of this repo is thousands of *independent*
//! deterministic simulations (every figure binary, the §IV-A verification
//! sweep, the §IV-B FFT sweep). Each simulation owns its `World` and derives
//! its own seed from the scenario parameters, so they can run on any number
//! of OS threads as long as results are merged back in input order — which
//! is exactly what [`par_map`] guarantees. There is no rayon here (the
//! build environment is offline): workers are persistent pool threads
//! pulling chunks off a shared atomic cursor.
//!
//! The pool is lazily spawned on the first parallel call and reused for the
//! rest of the process, so a figure binary that issues hundreds of sweeps
//! pays thread-creation cost once instead of once per sweep. Results are
//! written directly into their input-order output slot (each index is
//! claimed by exactly one worker), so there is no per-item channel send and
//! no reassembly pass.
//!
//! Determinism contract: `par_map(jobs, items, f)` returns bit-identical
//! output for every `jobs` value, including 1, provided `f(i, &items[i])`
//! itself is deterministic and does not depend on global mutable state.
//! Simulations satisfy this by construction (integer-nanosecond virtual
//! time, per-simulation seeds from [`derive_seed`]).

use crate::rng::SplitMix64;
use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

/// Resolve a requested worker count to an actual one.
///
/// Priority: an explicit positive request (e.g. `--jobs N`), then the
/// `NBC_JOBS` environment variable, then `std::thread::available_parallelism`.
/// `Some(0)` and `None` both mean "auto".
pub fn effective_jobs(requested: Option<usize>) -> usize {
    effective_jobs_from(requested, |key| std::env::var(key).ok())
}

/// [`effective_jobs`] with an injected environment lookup, so the resolution
/// order is testable without mutating the process environment (which races
/// against every other test in the same binary).
pub fn effective_jobs_from(
    requested: Option<usize>,
    env: impl Fn(&str) -> Option<String>,
) -> usize {
    if let Some(n) = requested {
        if n > 0 {
            return n;
        }
    }
    if let Some(v) = env("NBC_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derive an independent simulation seed for work item `idx` from a master
/// seed. Two levels of SplitMix64 mixing keep adjacent indices decorrelated
/// and make the result independent of how the sweep is partitioned across
/// threads.
pub fn derive_seed(master: u64, idx: u64) -> u64 {
    SplitMix64::split(master, idx).next_u64()
}

/// Test/bench override for [`hardware_parallelism`]: 0 = use detection.
static ASSUMED_PARALLELISM: AtomicUsize = AtomicUsize::new(0);

/// Force [`hardware_parallelism`] to report `n` (for tests and A/B
/// comparisons of the serial-cutoff heuristic); `None` restores detection.
pub fn set_assumed_parallelism(n: Option<usize>) {
    ASSUMED_PARALLELISM.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Best estimate of the host's real hardware parallelism.
///
/// `std::thread::available_parallelism` honors the process's CPU affinity
/// mask and cgroup quota — which is what sweeps should respect — but it can
/// error out, and on some containers it underreports relative to the
/// physical topology. The detector takes the affinity-aware value when
/// available and falls back to counting `processor` lines in
/// `/proc/cpuinfo`, flooring at 1. The result is detected once and cached;
/// [`set_assumed_parallelism`] overrides it.
pub fn hardware_parallelism() -> usize {
    let forced = ASSUMED_PARALLELISM.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        if let Ok(n) = thread::available_parallelism() {
            return n.get();
        }
        // Fallback: physical topology (affinity information unavailable).
        std::fs::read_to_string("/proc/cpuinfo")
            .map(|s| {
                s.lines()
                    .filter(|l| l.starts_with("processor"))
                    .count()
                    .max(1)
            })
            .unwrap_or(1)
    })
}

/// Default estimated pool-handoff cost per participating worker, in
/// nanoseconds: one condvar wake plus one barrier ack on a warm pool.
/// `NBC_PAR_CUTOFF_NS` overrides it (0 disables the cost-based cutoff).
const DEFAULT_HANDOFF_NANOS: u64 = 120_000;

/// Per-item cost marker for [`par_map`]: "unknown, assume the work is
/// heavy enough to parallelize". Only the hardware clamp applies.
pub const COST_UNKNOWN: u64 = u64::MAX;

/// The pool-handoff cost estimate the serial cutoff weighs parallel
/// savings against (`NBC_PAR_CUTOFF_NS` override, else the default).
pub fn handoff_floor_nanos() -> u64 {
    static FLOOR: OnceLock<u64> = OnceLock::new();
    *FLOOR.get_or_init(|| {
        std::env::var("NBC_PAR_CUTOFF_NS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_HANDOFF_NANOS)
    })
}

/// The serial-cutoff decision, exposed pure for testing: how many
/// participants (caller included) should a sweep of `n` items use, given
/// the requested `jobs`, the host's usable parallelism `hw`, an estimated
/// per-item cost (`COST_UNKNOWN` = assume heavy) and the estimated
/// per-worker pool-handoff cost?
///
/// Returns 1 (run serially) when:
/// * `jobs`, `n` or `hw` is ≤ 1 — extra threads cannot help, and on a
///   single-CPU host they *cost*: oversubscribed workers serialize on the
///   one core and pay the handoff on top (the measured
///   `fft_windowtiled_pair` 0.54× regression);
/// * the estimated parallel saving, `total * (p-1)/p`, does not clear the
///   estimated handoff cost `p * handoff` — tiny sweeps finish faster on
///   the calling thread than the pool can even wake up.
pub fn plan_participants(
    jobs: usize,
    n: usize,
    hw: usize,
    est_nanos_per_item: u64,
    handoff_nanos: u64,
) -> usize {
    let p = jobs.min(n).min(hw.max(1));
    if p <= 1 {
        return 1;
    }
    if est_nanos_per_item != COST_UNKNOWN && handoff_nanos > 0 {
        let total = est_nanos_per_item.saturating_mul(n as u64);
        let saving = total / p as u64 * (p as u64 - 1);
        if saving < handoff_nanos.saturating_mul(p as u64) {
            return 1;
        }
    }
    p
}

/// Hard ceiling on persistent pool threads. Sweeps routinely request
/// `jobs` values far above the host's core count (the determinism tests go
/// to 1000); capping the pool keeps that from pinning a thousand idle OS
/// threads for the life of the process.
const MAX_POOL_THREADS: usize = 32;

/// One input-order output cell. Each index is claimed by exactly one worker
/// (via the chunked cursor), written once, and only read by the caller after
/// the completion barrier — so unsynchronized interior mutability is sound.
struct Slot<R>(UnsafeCell<Option<R>>);

// SAFETY: see the `Slot` doc comment — disjoint writes, then a barrier,
// then reads. The pool's mutex hand-off provides the happens-before edge.
unsafe impl<R: Send> Sync for Slot<R> {}

thread_local! {
    /// Set for the lifetime of every pool worker thread. A `par_map` issued
    /// from inside a worker (nested parallelism) must not wait on the pool —
    /// the pool is busy running *us* — so it degrades to the serial path.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

struct PoolState {
    /// Bumped once per submitted job; workers idle until it changes.
    generation: u64,
    /// The type-erased job body for the current generation.
    job: Option<&'static (dyn Fn() + Sync)>,
    /// How many workers may run the current job (jobs - 1; the caller is
    /// the remaining participant).
    run_limit: usize,
    /// Workers that claimed a run slot this generation.
    started: usize,
    /// Workers that finished with this generation (ran or declined).
    acked: usize,
    /// Pool threads spawned so far.
    threads: usize,
    /// First panic payload captured from a worker this generation.
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers wait here for a new generation.
    work_cv: Condvar,
    /// The submitter waits here for all workers to ack the generation.
    done_cv: Condvar,
    /// Single-submitter guard: only one `par_map` drives the pool at a
    /// time; concurrent calls fall back to running serially on their own
    /// thread (still correct — the cursor/slot protocol does not care how
    /// many threads participate).
    busy: AtomicBool,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            generation: 0,
            job: None,
            run_limit: 0,
            started: 0,
            acked: 0,
            threads: 0,
            panic: None,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        busy: AtomicBool::new(false),
    })
}

/// Number of persistent pool worker threads spawned so far (0 before the
/// first parallel sweep). Reported as `pool_threads` in BENCH_engine.json.
pub fn pool_size() -> usize {
    lock_state(pool()).threads
}

/// True when the calling thread is a persistent pool worker. Nested
/// parallelism (a sweep item that would itself fan out — e.g. the
/// partitioned world engine in `auto` mode) uses this to degrade to its
/// serial path instead of oversubscribing a machine the pool already
/// saturates.
pub fn in_pool_worker() -> bool {
    IN_POOL_WORKER.with(|w| w.get())
}

/// Sweep-barrier flush hooks.
///
/// Hot-path caches (`nbc::cache`, `adcl::simmemo`) keep per-thread state —
/// front caches and hit tallies — so steady-state reads touch no shared
/// memory at all. That local state must still become globally visible at
/// deterministic points, or totals would depend on which threads happened
/// to run which items. The contract: every registered hook runs on every
/// participant (workers *and* the caller) after it finishes its share of a
/// sweep, before the completion barrier releases the caller. Totals
/// observed after `par_map` returns are therefore exact and independent of
/// `jobs`.
///
/// Hooks are plain `fn()` so registration is idempotent and duplicate
/// registrations are dropped.
static FLUSH_HOOKS: Mutex<Vec<fn()>> = Mutex::new(Vec::new());
/// Lock-free fast path: sweeps skip the hook mutex entirely until the
/// first hook is registered.
static FLUSH_HOOK_COUNT: AtomicU64 = AtomicU64::new(0);

/// Register `hook` to run on every sweep participant at sweep barriers.
pub fn register_sweep_flush(hook: fn()) {
    let mut hooks = FLUSH_HOOKS.lock().unwrap_or_else(|e| e.into_inner());
    if !hooks.iter().any(|h| std::ptr::fn_addr_eq(*h, hook)) {
        hooks.push(hook);
        FLUSH_HOOK_COUNT.store(hooks.len() as u64, Ordering::Release);
    }
}

/// Run every registered sweep-flush hook on the calling thread.
pub fn run_sweep_flush_hooks() {
    if FLUSH_HOOK_COUNT.load(Ordering::Acquire) == 0 {
        return;
    }
    let hooks: Vec<fn()> = FLUSH_HOOKS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    for h in hooks {
        h();
    }
}

/// Lock the pool state, tolerating poison: the state machine is left
/// consistent at every await point, and worker panics are routed through
/// `PoolState::panic`, never through an unwind while holding the lock.
fn lock_state(p: &'static Pool) -> MutexGuard<'static, PoolState> {
    p.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Body of every persistent worker thread: wait for a generation bump,
/// claim a run slot if any remain, run the job (capturing panics), ack.
fn worker_loop(p: &'static Pool) {
    IN_POOL_WORKER.with(|f| f.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut s = lock_state(p);
            while s.generation == seen {
                s = p.work_cv.wait(s).unwrap_or_else(|e| e.into_inner());
            }
            seen = s.generation;
            if s.started < s.run_limit {
                s.started += 1;
                Some(s.job.expect("job must be set while generation is live"))
            } else {
                s.acked += 1;
                if s.acked == s.threads {
                    p.done_cv.notify_all();
                }
                None
            }
        };
        if let Some(body) = job {
            let result = catch_unwind(AssertUnwindSafe(body));
            let mut s = lock_state(p);
            if let Err(payload) = result {
                if s.panic.is_none() {
                    s.panic = Some(payload);
                }
            }
            s.acked += 1;
            if s.acked == s.threads {
                p.done_cv.notify_all();
            }
        }
    }
}

/// Run `body` on up to `extra` pool workers plus the calling thread.
/// Returns `false` without running anything if the pool could not be used
/// (busy with another submitter, or no worker thread could be spawned);
/// the caller then runs the whole job serially itself.
fn run_on_pool(body: &(dyn Fn() + Sync), extra: usize) -> bool {
    let p = pool();
    if p.busy
        .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
        .is_err()
    {
        return false;
    }

    // SAFETY: the job reference is only dereferenced by pool workers between
    // the generation bump below and the `acked == threads` barrier, and this
    // function does not return until that barrier is reached — so the
    // erased borrow never outlives `body`.
    let job: &'static (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body) };

    {
        let mut s = lock_state(p);
        let want = extra.min(MAX_POOL_THREADS);
        while s.threads < want {
            let spawned = thread::Builder::new()
                .name(format!("nbc-sweep-{}", s.threads))
                .spawn(|| worker_loop(pool()));
            match spawned {
                Ok(_) => s.threads += 1,
                Err(_) => break,
            }
        }
        if s.threads == 0 {
            drop(s);
            p.busy.store(false, Ordering::Release);
            return false;
        }
        s.generation += 1;
        s.job = Some(job);
        s.run_limit = extra.min(s.threads);
        s.started = 0;
        s.acked = 0;
        s.panic = None;
        p.work_cv.notify_all();
    }

    // The caller participates instead of idling: it is `jobs`-th worker.
    let caller_result = catch_unwind(AssertUnwindSafe(body));

    let worker_panic = {
        let mut s = lock_state(p);
        while s.acked < s.threads {
            s = p.done_cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.job = None;
        s.panic.take()
    };
    p.busy.store(false, Ordering::Release);

    if let Err(payload) = caller_result {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
    true
}

/// Map `f` over `items` on up to `jobs` threads, returning results in
/// input order. Equivalent to [`par_map_costed`] with [`COST_UNKNOWN`]:
/// only the hardware clamp and the tiny-sweep floor can serialize it.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_costed(jobs, items, COST_UNKNOWN, f)
}

/// Map `f` over `items` on up to `jobs` threads, returning results in
/// input order, with a serial cutoff informed by `est_nanos_per_item`.
///
/// Work is distributed through a coarsely chunked atomic cursor: each
/// participant claims a contiguous block of about `n / (participants * 2)`
/// indices at a time — at most ~2 claims per worker per sweep. Coarse
/// blocks matter beyond cursor traffic: consecutive sweep points usually
/// share a `World` shape, so a worker that runs a long contiguous run of
/// configs serves them all from one reset world (`mpisim::worldpool`)
/// instead of bouncing shapes between threads. Each result is written
/// directly into its input-order slot — no channels, no reassembly pass.
///
/// The participant count is planned by [`plan_participants`]: `jobs` is
/// clamped to the item count *and the host's usable parallelism* (threads
/// beyond physical cores only add handoff and contention — the cause of
/// the historical jobs=2 regressions on 1-CPU hosts), and sweeps whose
/// estimated total work cannot pay for the pool handoff run serially on
/// the calling thread. Pass [`COST_UNKNOWN`] when no estimate exists.
///
/// Threads come from a lazily-spawned persistent pool shared by the whole
/// process (capped at 32), so back-to-back sweeps reuse warm workers
/// instead of paying `thread::spawn` per call. The calling thread always
/// participates as one of the planned workers. If the pool is already
/// driven by another thread — or this call is issued from *inside* a pool
/// worker (nested parallelism) — the call degrades to the serial path,
/// which is always correct because output never depends on who runs which
/// index.
///
/// `jobs <= 1` (or a single item) short-circuits to a plain serial loop on
/// the calling thread, which keeps `--jobs 1` a true serial baseline for
/// the perf harness.
///
/// Every participant (including the caller, including the serial path)
/// runs the registered sweep-flush hooks after finishing its share, so
/// thread-local cache statistics are globally visible — and identical for
/// every `jobs` value — when this function returns.
///
/// A panic in `f` propagates to the caller after all participants have
/// quiesced (never deadlocks the pool).
pub fn par_map_costed<T, R, F>(jobs: usize, items: &[T], est_nanos_per_item: u64, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let participants = plan_participants(
        jobs,
        n,
        hardware_parallelism(),
        est_nanos_per_item,
        handoff_floor_nanos(),
    );
    if participants <= 1 || IN_POOL_WORKER.with(|w| w.get()) {
        let out = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        run_sweep_flush_hooks();
        return out;
    }

    let slots: Vec<Slot<R>> = (0..n).map(|_| Slot(UnsafeCell::new(None))).collect();
    let cursor = AtomicUsize::new(0);
    // Coarse per-worker blocks: ~half a fair share per claim, so every
    // participant claims at most about twice and a slow block still
    // load-balances across the rest.
    let chunk = n.div_ceil(participants * 2).max(1);

    let body = || {
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                let r = f(i, item);
                // SAFETY: index `i` is claimed by exactly this participant —
                // the cursor hands out each index once — and readers wait for
                // the completion barrier. See `Slot`.
                unsafe { *slots[i].0.get() = Some(r) };
            }
        }
        run_sweep_flush_hooks();
    };

    if !run_on_pool(&body, participants - 1) {
        // Pool unavailable: drain the same cursor serially on this thread.
        body();
    }

    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.0.into_inner()
                .unwrap_or_else(|| panic!("missing result for index {i}"))
        })
        .collect()
}

/// Run `f` once on up to `extra` pool workers *and* once on the calling
/// thread — the pre-warm primitive: per-thread state (cached worlds,
/// payload slabs, front caches) can be populated on every thread a
/// following sweep will use, outside that sweep's timed region.
///
/// Workers are spawned up to `extra` (within the pool cap) if they do not
/// exist yet. Degrades gracefully: if the pool is busy or unavailable, or
/// this is called from inside a pool worker, only the calling thread runs
/// `f`. Returns the number of pool workers that ran it.
pub fn on_all_workers(extra: usize, f: impl Fn() + Sync) -> usize {
    let ran = AtomicUsize::new(0);
    if extra > 0 && !IN_POOL_WORKER.with(|w| w.get()) {
        // Each woken worker claims one run slot and runs `f` exactly once.
        // The caller also executes `body` inside `run_on_pool`, but the
        // worker-flag check makes that a no-op — its own warm-up is the
        // unconditional call below, so pool-busy fallback warms it too.
        let body = || {
            if IN_POOL_WORKER.with(|w| w.get()) {
                f();
                ran.fetch_add(1, Ordering::Relaxed);
            }
        };
        run_on_pool(&body, extra);
    }
    f();
    ran.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pool-behavior tests must actually reach the pool, which the
    /// hardware clamp prevents on a 1-CPU host. This guard forces a fake
    /// hardware width for the test's duration (serialized so concurrent
    /// tests don't fight over the global override) and restores detection
    /// on drop.
    struct ForcedHw(#[allow(dead_code)] MutexGuard<'static, ()>);

    fn force_hw(n: usize) -> ForcedHw {
        static HW_LOCK: Mutex<()> = Mutex::new(());
        let g = HW_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_assumed_parallelism(Some(n));
        ForcedHw(g)
    }

    impl Drop for ForcedHw {
        fn drop(&mut self) {
            set_assumed_parallelism(None);
        }
    }

    #[test]
    fn plan_respects_hardware_clamp() {
        // jobs=8 on a 1-wide host must run serially: oversubscription only
        // adds handoff cost (the measured jobs=2 regression).
        assert_eq!(plan_participants(8, 64, 1, COST_UNKNOWN, 120_000), 1);
        assert_eq!(plan_participants(8, 64, 2, COST_UNKNOWN, 120_000), 2);
        assert_eq!(plan_participants(8, 64, 16, COST_UNKNOWN, 120_000), 8);
        // And never more participants than items.
        assert_eq!(plan_participants(8, 3, 16, COST_UNKNOWN, 120_000), 3);
        assert_eq!(plan_participants(1, 64, 16, COST_UNKNOWN, 120_000), 1);
        assert_eq!(plan_participants(8, 0, 16, COST_UNKNOWN, 120_000), 1);
        // hw=0 (detection failure) behaves like hw=1.
        assert_eq!(plan_participants(8, 64, 0, COST_UNKNOWN, 120_000), 1);
    }

    #[test]
    fn plan_serial_cutoff_weighs_cost_against_handoff() {
        // 2 items × 100µs each on 8-wide hw: parallel saves ~100µs but the
        // handoff costs 2×120µs — run serially (the fft_windowtiled_pair
        // case).
        assert_eq!(plan_participants(2, 2, 8, 100_000, 120_000), 1);
        // 2 items × 10ms each: saving (10ms) dwarfs handoff — parallelize.
        assert_eq!(plan_participants(2, 2, 8, 10_000_000, 120_000), 2);
        // Unknown cost: assume heavy, only the clamp applies.
        assert_eq!(plan_participants(2, 2, 8, COST_UNKNOWN, 120_000), 2);
        // Zero handoff estimate disables the cutoff entirely.
        assert_eq!(plan_participants(2, 2, 8, 1, 0), 2);
        // Huge per-item cost must not overflow the saving computation.
        assert_eq!(plan_participants(8, 64, 8, u64::MAX - 1, 120_000), 8);
    }

    #[test]
    fn costed_map_serial_cutoff_matches_parallel_results() {
        let _hw = force_hw(8);
        let items: Vec<u64> = (0..16).collect();
        // est=1ns: far below the handoff floor — runs serially.
        let cheap = par_map_costed(8, &items, 1, |i, &x| x * 5 + i as u64);
        // COST_UNKNOWN: parallelizes. Results must be identical.
        let heavy = par_map_costed(8, &items, COST_UNKNOWN, |i, &x| x * 5 + i as u64);
        assert_eq!(cheap, heavy);
    }

    #[test]
    fn matches_serial_for_any_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(1, &items, |i, &x| x * 3 + i as u64);
        for jobs in [2, 3, 8, 64, 1000] {
            let par = par_map(jobs, &items, |i, &x| x * 3 + i as u64);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[41], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn preserves_input_order_not_completion_order() {
        // Make early items slow so later items finish first.
        let items: Vec<usize> = (0..16).collect();
        let out = par_map(4, &items, |_, &x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn pool_reuse_across_many_sweeps() {
        // Hammer the pool with back-to-back sweeps; every one must merge
        // correctly on warm (reused) workers.
        let _hw = force_hw(8);
        let items: Vec<u64> = (0..64).collect();
        for round in 0..200u64 {
            let out = par_map(8, &items, |i, &x| x * 7 + round + i as u64);
            let expect: Vec<u64> = (0..64).map(|x| x * 7 + round + x).collect();
            assert_eq!(out, expect, "round={round}");
        }
    }

    #[test]
    fn nested_par_map_does_not_deadlock() {
        let _hw = force_hw(8);
        let outer: Vec<u64> = (0..16).collect();
        let out = par_map(4, &outer, |_, &x| {
            let inner: Vec<u64> = (0..8).collect();
            par_map(4, &inner, |_, &y| y + x).iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..16).map(|x| (0..8).map(|y| y + x).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn concurrent_submitters_do_not_deadlock() {
        // Several plain threads all driving par_map at once: at most one
        // gets the pool, the rest run serially — all must be correct.
        let _hw = force_hw(8);
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                thread::spawn(move || {
                    let items: Vec<u64> = (0..128).collect();
                    let out = par_map(8, &items, |_, &x| x * 2 + t);
                    let expect: Vec<u64> = (0..128).map(|x| x * 2 + t).collect();
                    assert_eq!(out, expect);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..8).collect();
        par_map(4, &items, |_, &x| {
            if x == 5 {
                panic!("worker failure");
            }
            x
        });
    }

    #[test]
    fn pool_survives_a_panicked_sweep() {
        // A sweep that panics must leave the pool reusable for later sweeps.
        let _hw = force_hw(8);
        let items: Vec<usize> = (0..32).collect();
        let poisoned = std::panic::catch_unwind(|| {
            par_map(4, &items, |_, &x| {
                if x == 7 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(poisoned.is_err());
        let out = par_map(4, &items, |_, &x| x + 1);
        let expect: Vec<usize> = (1..33).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn derive_seed_decorrelates_indices() {
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(7, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
        // And is independent of any other master seed's stream.
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn flush_hooks_run_on_every_path_and_participant() {
        use std::sync::atomic::AtomicUsize;
        // NOTE: hooks are process-global and permanent; this one only
        // touches its own counter, so other tests in this binary are
        // unaffected beyond a relaxed increment per sweep.
        static FLUSHES: AtomicUsize = AtomicUsize::new(0);
        fn tally() {
            FLUSHES.fetch_add(1, Ordering::Relaxed);
        }
        register_sweep_flush(tally);
        register_sweep_flush(tally); // duplicate registration is dropped

        let items: Vec<u64> = (0..8).collect();

        // Serial path: at least the caller's flush lands before return.
        // (Other tests in this binary sweep concurrently and bump the same
        // counter, so the lower bound is the race-safe assertion.)
        let before = FLUSHES.load(Ordering::Relaxed);
        par_map(1, &items, |_, &x| x);
        assert!(FLUSHES.load(Ordering::Relaxed) > before);

        // Parallel path: flushes land before par_map returns here too.
        let _hw = force_hw(4);
        let before = FLUSHES.load(Ordering::Relaxed);
        par_map(4, &items, |_, &x| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            x
        });
        assert!(FLUSHES.load(Ordering::Relaxed) > before);
    }

    #[test]
    fn on_all_workers_reaches_workers_and_caller() {
        let _hw = force_hw(8);
        use std::collections::HashSet;
        let ids: Mutex<HashSet<thread::ThreadId>> = Mutex::new(HashSet::new());
        let ran = on_all_workers(3, || {
            ids.lock().unwrap().insert(thread::current().id());
        });
        let ids = ids.into_inner().unwrap();
        // The caller always runs it; `ran` counts pool workers only.
        assert!(ids.contains(&thread::current().id()));
        assert_eq!(ids.len(), ran + 1);
        assert!(ran <= 3);
    }

    #[test]
    fn effective_jobs_resolution() {
        // Injected environment: no process-global set_var, so this cannot
        // race against other tests reading NBC_JOBS.
        let with = |val: Option<&str>| {
            let owned = val.map(str::to_string);
            move |key: &str| {
                assert_eq!(key, "NBC_JOBS");
                owned.clone()
            }
        };
        assert_eq!(effective_jobs_from(Some(5), with(Some("3"))), 5);
        assert_eq!(effective_jobs_from(None, with(Some("3"))), 3);
        assert_eq!(effective_jobs_from(Some(0), with(Some("3"))), 3);
        assert_eq!(effective_jobs_from(None, with(Some(" 12 "))), 12);
        assert!(effective_jobs_from(None, with(Some("not a number"))) >= 1);
        assert!(effective_jobs_from(None, with(Some("0"))) >= 1);
        assert!(effective_jobs_from(None, with(None)) >= 1);
        // The public wrapper resolves explicit requests without consulting
        // the environment at all.
        assert_eq!(effective_jobs(Some(9)), 9);
    }
}
