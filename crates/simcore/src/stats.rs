//! Robust statistics used by the ADCL measurement filter and by the
//! benchmark harness.
//!
//! ADCL measures the execution time of alternative implementations while the
//! application runs, and individual measurements are polluted by operating
//! system noise and process-arrival skew (Faraj et al.). The selection logic
//! therefore needs robust location estimates; this module provides medians,
//! interquartile-range (IQR) outlier rejection and trimmed means, mirroring
//! the statistical filtering described for ADCL (Benkert et al.).

use crate::metrics::{self, Counter};
use crate::time::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The `simcore.payload_allocs` counter: payload-buffer heap allocations —
/// every buffer-pool miss (a fresh slab had to be allocated) and every
/// unpooled per-message allocation. Lives on the [`metrics`] registry; the
/// three functions below are thin shims kept so call sites don't churn.
fn payload_alloc_counter() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("simcore.payload_allocs"))
}

/// Record one payload-buffer heap allocation (called at pool miss sites).
#[inline]
pub fn record_payload_alloc() {
    payload_alloc_counter().inc();
}

/// Total payload-buffer heap allocations since process start (or the last
/// [`reset_payload_allocs`]).
pub fn payload_allocs() -> u64 {
    payload_alloc_counter()
        .get()
        .saturating_sub(PAYLOAD_ALLOC_BASE.load(Ordering::Relaxed))
}

/// Reset the payload-allocation counter (for per-measurement deltas). The
/// registry counter stays monotone (registry counters are never rewound);
/// this shim subtracts a baseline instead.
pub fn reset_payload_allocs() {
    PAYLOAD_ALLOC_BASE.store(payload_alloc_counter().get(), Ordering::Relaxed);
}

static PAYLOAD_ALLOC_BASE: AtomicU64 = AtomicU64::new(0);

/// Arithmetic mean of a sample (0 for an empty sample).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (unbiased, n-1 denominator); 0 for fewer than 2 samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Quantile via linear interpolation on the sorted sample, `q` in `[0, 1]`.
/// Returns 0 for an empty sample.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median of a sample.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Remove outliers using Tukey's fences: keep values in
/// `[Q1 - k*IQR, Q3 + k*IQR]`. The conventional `k` is 1.5.
///
/// Returns the retained values (order preserved). If the filter would remove
/// everything (degenerate input), the input is returned unchanged.
pub fn iqr_filter(xs: &[f64], k: f64) -> Vec<f64> {
    if xs.len() < 4 {
        return xs.to_vec();
    }
    let q1 = quantile(xs, 0.25);
    let q3 = quantile(xs, 0.75);
    let iqr = q3 - q1;
    let lo = q1 - k * iqr;
    let hi = q3 + k * iqr;
    let kept: Vec<f64> = xs.iter().copied().filter(|&x| x >= lo && x <= hi).collect();
    if kept.is_empty() {
        xs.to_vec()
    } else {
        kept
    }
}

/// Trimmed mean: drop the `trim` fraction of smallest and largest samples
/// (each side) before averaging. `trim` in `[0, 0.5)`; aggressive fractions
/// are clamped so at least one sample always survives (an over-trim on a
/// tiny sample set must degrade to the median, never panic or return NaN).
pub fn trimmed_mean(xs: &[f64], trim: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let drop = (((sorted.len() as f64) * trim).floor() as usize).min((sorted.len() - 1) / 2);
    let keep = &sorted[drop..sorted.len() - drop];
    if keep.is_empty() {
        median(&sorted)
    } else {
        mean(keep)
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used where keeping every sample would be wasteful, e.g. per-message
/// latency statistics across millions of simulated messages.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

/// Convert a slice of [`SimTime`] durations to seconds for statistics.
pub fn times_to_secs(ts: &[SimTime]) -> Vec<f64> {
    ts.iter().map(|t| t.as_secs_f64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn iqr_rejects_spikes() {
        // 19 well-behaved samples plus one huge OS-noise spike.
        let mut xs: Vec<f64> = (0..19).map(|i| 100.0 + i as f64).collect();
        xs.push(10_000.0);
        let kept = iqr_filter(&xs, 1.5);
        assert_eq!(kept.len(), 19);
        assert!(kept.iter().all(|&x| x < 1000.0));
    }

    #[test]
    fn iqr_keeps_clean_data() {
        let xs: Vec<f64> = (0..50).map(|i| 10.0 + (i % 5) as f64).collect();
        assert_eq!(iqr_filter(&xs, 1.5).len(), 50);
    }

    #[test]
    fn iqr_degenerate_returns_input() {
        let xs = [1.0, 1.0];
        assert_eq!(iqr_filter(&xs, 1.5), vec![1.0, 1.0]);
    }

    #[test]
    fn trimmed_mean_robust() {
        let mut xs: Vec<f64> = vec![10.0; 18];
        xs.push(0.0);
        xs.push(1000.0);
        let tm = trimmed_mean(&xs, 0.1);
        assert!((tm - 10.0).abs() < 1e-9, "tm={tm}");
    }

    #[test]
    fn trimmed_mean_overtrim_never_panics() {
        // trim=0.7 on 3 samples asks to drop 2 per tail; the clamp keeps
        // the middle sample (the median) instead of slicing out of range.
        assert_eq!(trimmed_mean(&[1.0, 2.0, 30.0], 0.7), 2.0);
        assert_eq!(trimmed_mean(&[5.0], 0.49), 5.0);
        assert_eq!(trimmed_mean(&[1.0, 3.0], 0.5), 2.0);
        assert!(trimmed_mean(&[], 0.3).is_finite());
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [1.5, 2.5, 3.5, 10.0, -4.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.variance() - variance(&xs)).abs() < 1e-9);
        assert_eq!(w.min(), Some(-4.0));
        assert_eq!(w.max(), Some(10.0));
        assert_eq!(w.count(), 5);
    }

    #[test]
    fn welford_empty() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.min(), None);
    }

    #[test]
    fn payload_alloc_counter_accumulates() {
        // Other tests in the process may also record allocations, so only
        // assert on the delta produced here.
        let before = payload_allocs();
        record_payload_alloc();
        record_payload_alloc();
        assert!(payload_allocs() >= before + 2);
    }
}
