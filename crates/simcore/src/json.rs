//! Minimal JSON parser (recursive descent, no dependencies).
//!
//! The workspace is dependency-free by design, yet the observability layer
//! both writes JSON (hand-rendered) and needs to *read* it back: the
//! `trace_inspect` bin summarizes exported Chrome traces and the trace
//! integration tests assert the export is well-formed. This parser covers
//! the full JSON grammar at the fidelity those consumers need (numbers are
//! held as `f64`; no surrogate-pair decoding beyond the BMP escape form).

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered map for deterministic iteration).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64 (truncating), if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// Build an object from key/value pairs (keys sort, duplicates last-win).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build a number value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// Serialize to compact JSON text.
    ///
    /// Deterministic: objects render in key order (they are `BTreeMap`s)
    /// and numbers use Rust's shortest-round-trip `f64` formatting, so
    /// `parse(render(v)) == v` bit-exactly for finite numbers. Non-finite
    /// numbers become `null` (JSON has no representation for them).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&crate::trace::escape(s));
                out.push('"');
            }
            Json::Arr(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    e.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&crate::trace::escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, nothing
/// else after the top-level value).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after top-level value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8: it
                    // came from a &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"traceEvents":[{"ts":1.500,"ph":"X"},{"ph":"i"}],"n":3}"#).unwrap();
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(evs[1].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    // The guideline + audit exporters render JSON by hand with
    // `trace::escape` and parse it back here (trace_inspect, the
    // integration tests); the tests below pin that round-trip on the
    // document shapes those exporters actually produce.

    #[test]
    fn parses_deeply_nested_arrays_and_objects() {
        // 64 levels of alternating array/object nesting around one leaf.
        let depth = 64;
        let mut doc = String::from("7");
        for i in 0..depth {
            doc = if i % 2 == 0 {
                format!("[{doc}]")
            } else {
                format!("{{\"k\":{doc}}}")
            };
        }
        let mut v = &parse(&doc).unwrap();
        for i in (0..depth).rev() {
            v = if i % 2 == 0 {
                let arr = v.as_arr().expect("array level");
                assert_eq!(arr.len(), 1);
                &arr[0]
            } else {
                v.get("k").expect("object level")
            };
        }
        assert_eq!(v.as_f64(), Some(7.0));
    }

    #[test]
    fn parses_heterogeneous_nesting() {
        let v = parse(
            r#"{"a":[[1,[2,{"b":[{"c":null},[],{}]}]],[]],"d":{"e":{"f":[true,false,"x"]}}}"#,
        )
        .unwrap();
        let b = v.get("a").unwrap().as_arr().unwrap()[0].as_arr().unwrap()[1]
            .as_arr()
            .unwrap()[1]
            .get("b")
            .unwrap()
            .as_arr()
            .unwrap()
            .to_vec();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].get("c"), Some(&Json::Null));
        assert_eq!(b[1].as_arr().map(|a| a.len()), Some(0));
        let f = v
            .get("d")
            .and_then(|d| d.get("e"))
            .and_then(|e| e.get("f"))
            .and_then(|f| f.as_arr())
            .unwrap();
        assert_eq!(f[2].as_str(), Some("x"));
    }

    #[test]
    fn escaped_strings_roundtrip_through_escape_then_parse() {
        // Every shape the exporters can emit: quotes, backslashes,
        // control characters, unicode, and strings that look like JSON.
        let cases = [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "control\tchars\nnewline\rreturn",
            "null bytes \u{0} and bells \u{7}",
            "unicode héllo → ∞ ≤ 日本",
            "{\"looks\": [\"like\", \"json\"]}",
            "trailing backslash \\",
            "",
        ];
        for case in cases {
            let doc = format!("{{\"s\": \"{}\"}}", crate::trace::escape(case));
            let v = parse(&doc).unwrap_or_else(|e| panic!("case {case:?}: {e}"));
            assert_eq!(v.get("s").and_then(|s| s.as_str()), Some(case), "{case:?}");
        }
    }

    #[test]
    fn escaped_keys_and_nested_escapes_roundtrip() {
        let key = "weird \"key\"\n\\";
        let val = "x\ty";
        let doc = format!(
            "{{\"{}\": [{{\"{}\": \"{}\"}}]}}",
            crate::trace::escape(key),
            crate::trace::escape(key),
            crate::trace::escape(val),
        );
        let v = parse(&doc).unwrap();
        let inner = &v.get(key).unwrap().as_arr().unwrap()[0];
        assert_eq!(inner.get(key).and_then(|s| s.as_str()), Some(val));
    }

    #[test]
    fn render_roundtrips_bit_exactly() {
        let v = Json::obj([
            ("pi", Json::num(std::f64::consts::PI)),
            ("neg", Json::num(-1.5e-300)),
            ("int", Json::num(42.0)),
            ("s", Json::str("quote \" tab \t nl \n unicode é")),
            (
                "arr",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::num(0.1)]),
            ),
            ("empty", Json::Obj(Default::default())),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v, "parse(render(v)) != v");
        // Rendering is canonical: a second round-trip is byte-identical.
        assert_eq!(parse(&text).unwrap().render(), text);
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let v = Json::obj([("b", Json::num(2.0)), ("a", Json::num(1.0))]);
        assert_eq!(v.render(), r#"{"a":1,"b":2}"#);
        assert_eq!(v.to_string(), v.render());
    }

    #[test]
    fn render_maps_nonfinite_to_null() {
        assert_eq!(Json::num(f64::INFINITY).render(), "null");
        assert_eq!(Json::num(f64::NAN).render(), "null");
    }
}
