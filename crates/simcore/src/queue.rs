//! Event queue with deterministic ordering.
//!
//! A thin wrapper around [`std::collections::BinaryHeap`] that orders events
//! by `(time, sequence)`, where `sequence` is a monotonically increasing
//! insertion counter. Ties in simulated time are therefore broken in FIFO
//! order, which makes the whole simulation deterministic regardless of how
//! the heap internally arranges equal keys.
//!
//! This queue is the innermost loop of every simulation, so the `(time,
//! seq)` pair is packed into a single `u128` key: one integer comparison
//! per sift step instead of a two-field lexicographic compare, and a
//! smaller `Entry` to move during sifts. `SimTime` is u64 nanoseconds and
//! `seq` is a u64 counter, so `(time << 64) | seq` orders identically to
//! the tuple.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry; ordered as a *min*-heap on the packed
/// `(time << 64) | seq` key.
struct Entry<E> {
    key: u128,
    event: E,
}

#[inline]
fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.as_nanos() as u128) << 64) | seq as u128
}

#[inline]
fn unpack_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the earliest event first.
        other.key.cmp(&self.key)
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// Events popped from the queue are guaranteed to be non-decreasing in time;
/// popping an event also advances [`EventQueue::now`].
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
    max_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            max_len: 0,
        }
    }

    /// Create an empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            max_len: 0,
        }
    }

    /// Total number of events popped over the queue's lifetime (survives
    /// [`EventQueue::reset`]). Used by the perf harness as a measure of
    /// simulation work done.
    #[inline]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// High-water mark of pending events over the queue's lifetime
    /// (survives [`EventQueue::reset`], like [`EventQueue::popped`]). Feeds
    /// the per-partition queue-depth imbalance stats in the perf harness.
    #[inline]
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// The time of the most recently popped event (the current simulation
    /// clock).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the current clock — scheduling into
    /// the past indicates a causality bug in the caller — or if `time` is
    /// [`SimTime::MAX`]: that value is the saturation sentinel produced by
    /// overflowing time arithmetic ("infinitely far in the future"), so an
    /// event carrying it can never legitimately fire. The monotonicity
    /// assert alone would not catch this — `SimTime::MAX` is always ahead of
    /// the pop watermark — yet it occupies the top of the packed
    /// `(time << 64) | seq` key space, where the key no longer encodes a
    /// real schedule point.
    pub fn push(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: t={time} < now={now}",
            time = time,
            now = self.now
        );
        assert!(
            time < SimTime::MAX,
            "event scheduled at the overflow sentinel SimTime::MAX: \
             an upstream time computation saturated"
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: pack(time, seq),
            event,
        });
        if self.heap.len() > self.max_len {
            self.max_len = self.heap.len();
        }
    }

    /// Schedule `event` at `time` under a caller-supplied tie-break key
    /// instead of the insertion counter.
    ///
    /// The partitioned world engine orders same-timestamp events by a
    /// *content-derived* subkey (acting rank + per-rank counter) so that the
    /// global `(time, subkey)` order is identical no matter how events are
    /// distributed over per-partition queues — an insertion counter cannot
    /// provide that, because insertion order differs between one queue and
    /// many. Same monotonicity/sentinel panics as [`EventQueue::push`].
    /// Callers must not mix `push` and `push_at` on one queue: the insertion
    /// counter and explicit subkeys occupy the same tie-break space.
    pub fn push_at(&mut self, time: SimTime, subkey: u64, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: t={time} < now={now}",
            time = time,
            now = self.now
        );
        assert!(
            time < SimTime::MAX,
            "event scheduled at the overflow sentinel SimTime::MAX: \
             an upstream time computation saturated"
        );
        self.heap.push(Entry {
            key: pack(time, subkey),
            event,
        });
        if self.heap.len() > self.max_len {
            self.max_len = self.heap.len();
        }
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| unpack_time(e.key))
    }

    /// Full packed `(time << 64) | subkey` key of the next pending event, if
    /// any — the partitioned engine compares heads across queues with it.
    pub fn peek_key(&self) -> Option<u128> {
        self.heap.peek().map(|e| e.key)
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        let time = unpack_time(entry.key);
        debug_assert!(time >= self.now, "heap returned out-of-order event");
        self.now = time;
        self.popped += 1;
        Some((time, entry.event))
    }

    /// Pop the earliest event together with its tie-break subkey (the low 64
    /// bits of the packed key). Companion to [`EventQueue::push_at`].
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        let entry = self.heap.pop()?;
        let time = unpack_time(entry.key);
        debug_assert!(time >= self.now, "heap returned out-of-order event");
        self.now = time;
        self.popped += 1;
        Some((time, entry.key as u64, entry.event))
    }

    /// Credit `n` externally popped events to this queue's lifetime counter.
    /// Used when a run is executed on per-partition queues: the partitions'
    /// pop counts are merged back so `popped()` reports the same total a
    /// serial run would.
    pub fn add_popped(&mut self, n: u64) {
        self.popped += n;
    }

    /// Remove all pending events and reset the clock to zero.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.now = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime::from_nanos(7), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
        // Scheduling at the current time is allowed.
        q.push(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.pop();
        q.push(SimTime::from_nanos(5), ());
    }

    #[test]
    #[should_panic(expected = "overflow sentinel")]
    fn rejects_saturated_time() {
        // Saturating arithmetic past the end of representable time yields
        // SimTime::MAX; scheduling an event there must be rejected even
        // though it trivially satisfies the monotonicity check.
        let mut q = EventQueue::new();
        let t = SimTime::MAX.checked_add(SimTime::from_nanos(1)).is_none();
        assert!(t, "MAX + 1 must not be representable");
        q.push(SimTime::MAX, ());
    }

    #[test]
    fn accepts_times_just_below_sentinel() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(u64::MAX - 1), 7);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(u64::MAX - 1), 7)));
    }

    #[test]
    fn popped_counter_survives_reset() {
        let mut q = EventQueue::with_capacity(8);
        for i in 0..5u64 {
            q.push(SimTime::from_nanos(i), i);
        }
        assert_eq!(q.max_len(), 5);
        while q.pop().is_some() {}
        assert_eq!(q.popped(), 5);
        q.reset();
        assert_eq!(q.popped(), 5);
        assert_eq!(q.max_len(), 5);
        q.push(SimTime::ZERO, 0);
        q.pop();
        assert_eq!(q.popped(), 6);
    }

    #[test]
    fn reset_clears_state() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1);
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime::ZERO, 2); // no longer "in the past"
        assert_eq!(q.len(), 1);
    }
}
