//! `simcore` — deterministic discrete-event simulation substrate.
//!
//! This crate provides the low-level building blocks used by the simulated
//! cluster in which the ADCL auto-tuning runtime is evaluated:
//!
//! * [`SimTime`] — integer-nanosecond virtual time (exact, reproducible),
//! * [`EventQueue`] — a monotone priority queue with stable FIFO tie-breaking,
//! * [`FifoResource`] — a serializing resource (NIC link, memory bus) with
//!   backlog accounting, used for contention/incast modelling,
//! * [`stats`] — robust statistics (median, IQR outlier filtering, trimmed
//!   means) used by the ADCL measurement filter,
//! * [`rng`] — small deterministic PRNGs for noise injection and workload
//!   generation,
//! * [`par`] — a dependency-free parallel sweep engine (`std::thread::scope`
//!   with a chunked work queue) that runs independent simulations on many
//!   cores while keeping output bit-identical to a serial run,
//! * [`spsc`] — bounded never-blocking single-producer/single-consumer
//!   rings carrying cross-partition events in the parallel world engine,
//! * [`check`] — a tiny deterministic property-test harness so the test
//!   suite needs no external crates,
//! * [`metrics`] — a process-wide registry of named counters/gauges/
//!   histograms feeding `BENCH_engine.json` and `perf_trajectory`,
//! * [`trace`] — a zero-overhead-when-off span/instant recorder stamped
//!   with simulated time, exportable as Chrome `trace_event` JSON,
//! * [`json`] — a minimal JSON parser so trace consumers need no deps.
//!
//! Nothing in this crate knows about MPI, networks or collectives; it is the
//! bottom layer of the stack described in `DESIGN.md`.

pub mod check;
pub mod json;
pub mod metrics;
pub mod par;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod spsc;
pub mod stats;
pub mod time;
pub mod trace;

pub use queue::EventQueue;
pub use resource::FifoResource;
pub use time::SimTime;
