//! Virtual time represented as integer nanoseconds.
//!
//! Using an integer representation (rather than `f64` seconds) keeps the
//! simulation exactly reproducible: event ordering never depends on
//! floating-point rounding, and times compare with total order.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, in nanoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic operators implement the usual timestamp/duration algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero timestamp (simulation epoch).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative and NaN inputs saturate to zero (durations cannot be
    /// negative, and a NaN duration must not silently poison event times).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        // Explicit NaN check: the usual `s <= 0.0` guard lets NaN through.
        if s.is_nan() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round() as u64)
    }

    /// Construct from fractional microseconds.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us * 1e-6)
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting only; never used in event
    /// ordering).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Time as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Saturating subtraction: `max(self - rhs, 0)`.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Multiply a duration by a dimensionless `f64` factor (e.g. a noise
    /// multiplier), rounding to the nearest nanosecond and saturating at
    /// zero. Negative and NaN factors yield zero.
    #[inline]
    pub fn scale(self, factor: f64) -> SimTime {
        if factor.is_nan() || factor <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// True if this is the zero time.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_nanos(1_000_000_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
        assert_eq!(SimTime::from_micros_f64(1.5), SimTime::from_nanos(1_500));
    }

    #[test]
    fn float_conversions_reject_nan_and_negative() {
        // A poisoned float (NaN from 0/0, or a negative from a mis-derived
        // delta) must clamp to ZERO, not wrap or poison the clock.
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
        let t = SimTime::from_micros(10);
        assert_eq!(t.scale(f64::NAN), SimTime::ZERO);
        assert_eq!(t.scale(-2.0), SimTime::ZERO);
        assert_eq!(t.scale(0.5), SimTime::from_micros(5));
    }

    #[test]
    fn negative_secs_saturate() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!(a + b, SimTime::from_micros(14));
        assert_eq!(a - b, SimTime::from_micros(6));
        assert_eq!(a * 3, SimTime::from_micros(30));
        assert_eq!(a / 2, SimTime::from_micros(5));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn scaling() {
        let t = SimTime::from_micros(100);
        assert_eq!(t.scale(1.5), SimTime::from_micros(150));
        assert_eq!(t.scale(0.0), SimTime::ZERO);
        assert_eq!(t.scale(-2.0), SimTime::ZERO);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_iterator() {
        let total: SimTime = (1..=4u64).map(SimTime::from_nanos).sum();
        assert_eq!(total, SimTime::from_nanos(10));
    }
}
