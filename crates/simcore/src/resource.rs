//! Serializing FIFO resources for contention modelling.
//!
//! A [`FifoResource`] models a device that can service one job at a time at a
//! fixed rate — a NIC transmit engine, a network link, or a memory bus. Jobs
//! submitted while the device is busy queue up in FIFO order; the resource
//! reports both when a job *starts* service and when it *drains*.
//!
//! The resource additionally tracks how many previously submitted jobs are
//! still queued or in service at submission time (the *backlog*), which the
//! network layer uses to apply congestion/incast penalties (e.g. TCP incast
//! collapse when many flows converge on one receive NIC).

use crate::time::SimTime;
use std::collections::VecDeque;

/// A single-server FIFO queueing resource.
#[derive(Debug, Clone)]
pub struct FifoResource {
    /// Time at which the server becomes idle.
    next_free: SimTime,
    /// Drain times of jobs still in the system, used for backlog accounting.
    /// Oldest first; entries with `drain <= now` are lazily removed.
    in_flight: VecDeque<SimTime>,
    /// Total busy time accumulated (for utilization statistics).
    busy: SimTime,
    /// Total number of jobs served.
    jobs: u64,
}

/// Outcome of submitting a job to a [`FifoResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When the job begins service (>= submission time).
    pub start: SimTime,
    /// When the job finishes service.
    pub drain: SimTime,
    /// Number of other jobs queued or in service at submission time
    /// (not counting this one).
    pub backlog: usize,
}

impl Default for FifoResource {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoResource {
    /// Create an idle resource.
    pub fn new() -> Self {
        FifoResource {
            next_free: SimTime::ZERO,
            in_flight: VecDeque::new(),
            busy: SimTime::ZERO,
            jobs: 0,
        }
    }

    /// Submit a job arriving at `now` that needs `service` time on the
    /// device. Returns when the job starts and drains, plus the backlog seen.
    pub fn submit(&mut self, now: SimTime, service: SimTime) -> Grant {
        // Lazily expire finished jobs from the backlog window.
        while let Some(&front) = self.in_flight.front() {
            if front <= now {
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
        let backlog = self.in_flight.len();
        let start = self.next_free.max(now);
        let drain = start + service;
        self.next_free = drain;
        self.in_flight.push_back(drain);
        self.busy += service;
        self.jobs += 1;
        Grant {
            start,
            drain,
            backlog,
        }
    }

    /// Time at which the resource becomes idle given no further submissions.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Number of jobs still queued or in service at `now`.
    pub fn backlog_at(&self, now: SimTime) -> usize {
        self.in_flight.iter().filter(|&&d| d > now).count()
    }

    /// Total service time accumulated.
    pub fn total_busy(&self) -> SimTime {
        self.busy
    }

    /// Total number of jobs submitted.
    pub fn total_jobs(&self) -> u64 {
        self.jobs
    }

    /// Reset to the idle state (between experiment repetitions).
    pub fn reset(&mut self) {
        self.next_free = SimTime::ZERO;
        self.in_flight.clear();
        self.busy = SimTime::ZERO;
        self.jobs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(x: u64) -> SimTime {
        SimTime::from_nanos(x)
    }

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = FifoResource::new();
        let g = r.submit(ns(100), ns(50));
        assert_eq!(g.start, ns(100));
        assert_eq!(g.drain, ns(150));
        assert_eq!(g.backlog, 0);
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let mut r = FifoResource::new();
        let g1 = r.submit(ns(0), ns(100));
        let g2 = r.submit(ns(10), ns(100));
        let g3 = r.submit(ns(20), ns(100));
        assert_eq!(g1.drain, ns(100));
        assert_eq!(g2.start, ns(100));
        assert_eq!(g2.drain, ns(200));
        assert_eq!(g2.backlog, 1);
        assert_eq!(g3.start, ns(200));
        assert_eq!(g3.backlog, 2);
    }

    #[test]
    fn backlog_expires() {
        let mut r = FifoResource::new();
        r.submit(ns(0), ns(100));
        r.submit(ns(0), ns(100));
        // Both jobs drained by t=200; a job at t=250 sees no backlog.
        let g = r.submit(ns(250), ns(10));
        assert_eq!(g.backlog, 0);
        assert_eq!(g.start, ns(250));
    }

    #[test]
    fn backlog_at_counts_pending() {
        let mut r = FifoResource::new();
        r.submit(ns(0), ns(100));
        r.submit(ns(0), ns(100));
        assert_eq!(r.backlog_at(ns(50)), 2);
        assert_eq!(r.backlog_at(ns(150)), 1);
        assert_eq!(r.backlog_at(ns(500)), 0);
    }

    #[test]
    fn utilization_accounting() {
        let mut r = FifoResource::new();
        r.submit(ns(0), ns(30));
        r.submit(ns(0), ns(70));
        assert_eq!(r.total_busy(), ns(100));
        assert_eq!(r.total_jobs(), 2);
        r.reset();
        assert_eq!(r.total_busy(), SimTime::ZERO);
        assert_eq!(r.next_free(), SimTime::ZERO);
    }

    #[test]
    fn gap_between_jobs_leaves_idle_time() {
        let mut r = FifoResource::new();
        let g1 = r.submit(ns(0), ns(10));
        let g2 = r.submit(ns(100), ns(10));
        assert_eq!(g1.drain, ns(10));
        assert_eq!(g2.start, ns(100));
        assert_eq!(g2.drain, ns(110));
    }
}
