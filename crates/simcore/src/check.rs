//! Minimal deterministic property-test harness.
//!
//! The repo must build and test with no network access, so instead of an
//! external property-testing crate this module provides the 10% we need:
//! a seedable value generator ([`Gen`]) over [`SplitMix64`](crate::rng::SplitMix64)
//! and a case runner ([`run_cases`]) that replays each property many times
//! with independent derived seeds and, on failure, reports the case index
//! and seed so the exact input can be replayed in isolation.
//!
//! There is no shrinking; cases are small by construction, and the printed
//! `(case, seed)` pair is enough to reproduce a failure deterministically.

use crate::rng::SplitMix64;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A deterministic generator of arbitrary test values.
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// Generator seeded directly (use [`run_cases`] in tests instead).
    pub fn new(seed: u64) -> Gen {
        Gen {
            rng: SplitMix64::new(seed),
        }
    }

    /// Raw 64-bit output.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "u64_in: empty range {lo}..{hi}");
        lo + self.rng.next_below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64() * (hi - lo)
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// Uniform pick from a non-empty slice.
    pub fn choose<T: Copy>(&mut self, xs: &[T]) -> T {
        assert!(!xs.is_empty(), "choose from empty slice");
        xs[self.usize_in(0, xs.len())]
    }

    /// A vector whose length is uniform in `[len_lo, len_hi)` with elements
    /// drawn from `f`.
    pub fn vec<T>(
        &mut self,
        len_lo: usize,
        len_hi: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len_lo, len_hi);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Run `cases` independent instances of a property.
///
/// Each case gets its own [`Gen`] seeded from `SplitMix64::split(master, case)`,
/// where the master seed is a stable hash of `name` — so every property has
/// its own reproducible stream and renaming a test (intentionally) reseeds
/// it. A panic inside `body` is augmented with the case index and seed
/// before being propagated, so `run_cases("p", 1, |g| ...)` with a
/// hand-seeded `Gen` can replay any reported failure.
pub fn run_cases(name: &str, cases: usize, mut body: impl FnMut(&mut Gen)) {
    let master = master_seed(name);
    for case in 0..cases {
        let mut g = Gen {
            rng: SplitMix64::split(master, case as u64),
        };
        let result = catch_unwind(AssertUnwindSafe(|| body(&mut g)));
        if let Err(payload) = result {
            eprintln!(
                "property `{name}` failed at case {case}/{cases} \
                 (master seed {master:#x}, replay with SplitMix64::split({master:#x}, {case}))"
            );
            resume_unwind(payload);
        }
    }
}

/// Stable FNV-1a hash of the property name, mixed with a fixed tag so the
/// stream differs from any other use of SplitMix64 in the codebase.
fn master_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ 0xadc1_0000_0000_0001
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_is_deterministic_per_case() {
        let mut first = Vec::new();
        run_cases("self_test", 5, |g| first.push(g.u64()));
        let mut second = Vec::new();
        run_cases("self_test", 5, |g| second.push(g.u64()));
        assert_eq!(first, second);
        // Cases are independent streams, not repeats of each other.
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn ranges_respected() {
        run_cases("ranges", 200, |g| {
            let u = g.u64_in(10, 20);
            assert!((10..20).contains(&u));
            let s = g.usize_in(0, 3);
            assert!(s < 3);
            let f = g.f64_in(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
            let v = g.vec(1, 5, |g| g.bool());
            assert!((1..5).contains(&v.len()));
            assert_eq!(g.choose(&[7]), 7);
        });
    }

    #[test]
    #[should_panic]
    fn failures_propagate() {
        run_cases("always_fails", 3, |_| panic!("boom"));
    }
}
