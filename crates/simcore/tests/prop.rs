//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use simcore::queue::EventQueue;
use simcore::resource::FifoResource;
use simcore::stats;
use simcore::time::SimTime;

proptest! {
    /// Events always pop in non-decreasing time order, regardless of the
    /// insertion order.
    #[test]
    fn event_queue_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Equal-time events pop in insertion (FIFO) order.
    #[test]
    fn event_queue_fifo_on_ties(n in 1usize..100, t in 0u64..1000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_nanos(t), i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop().unwrap().1, i);
        }
    }

    /// A FIFO resource never serves two jobs at once and never reorders.
    #[test]
    fn fifo_resource_serializes(
        jobs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)
    ) {
        let mut r = FifoResource::new();
        let mut arrivals: Vec<(u64, u64)> = jobs.clone();
        arrivals.sort_by_key(|&(a, _)| a);
        let mut prev_drain = SimTime::ZERO;
        let mut total = SimTime::ZERO;
        for (arrive, service) in arrivals {
            let g = r.submit(SimTime::from_nanos(arrive), SimTime::from_nanos(service));
            // starts only after the previous job drained and after arrival
            prop_assert!(g.start >= prev_drain.min(g.start));
            prop_assert!(g.start >= SimTime::from_nanos(arrive));
            prop_assert!(g.drain >= prev_drain, "FIFO order violated");
            prop_assert_eq!(g.drain, g.start + SimTime::from_nanos(service));
            prev_drain = g.drain;
            total += SimTime::from_nanos(service);
        }
        prop_assert_eq!(r.total_busy(), total);
    }

    /// IQR filtering returns a non-empty subset of the input.
    #[test]
    fn iqr_filter_subset(xs in prop::collection::vec(0.0f64..1e6, 1..100)) {
        let kept = stats::iqr_filter(&xs, 1.5);
        prop_assert!(!kept.is_empty());
        prop_assert!(kept.len() <= xs.len());
        for k in &kept {
            prop_assert!(xs.contains(k));
        }
    }

    /// The median always lies between the minimum and maximum.
    #[test]
    fn median_in_range(xs in prop::collection::vec(-1e9f64..1e9, 1..100)) {
        let m = stats::median(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
    }

    /// Quantiles are monotone in q.
    #[test]
    fn quantiles_monotone(xs in prop::collection::vec(0.0f64..1e6, 2..50), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(stats::quantile(&xs, lo) <= stats::quantile(&xs, hi) + 1e-9);
    }

    /// Welford matches batch statistics for arbitrary samples.
    #[test]
    fn welford_matches_batch(xs in prop::collection::vec(-1e3f64..1e3, 2..200)) {
        let mut w = stats::Welford::new();
        for &x in &xs {
            w.push(x);
        }
        prop_assert!((w.mean() - stats::mean(&xs)).abs() < 1e-6);
        prop_assert!((w.variance() - stats::variance(&xs)).abs() < 1e-4);
    }

    /// SimTime scaling by 1.0 is the identity (within rounding).
    #[test]
    fn scale_identity(ns in 0u64..u64::MAX / 2) {
        let t = SimTime::from_nanos(ns);
        let diff = t.scale(1.0).as_nanos().abs_diff(ns);
        // f64 has 53 bits of mantissa; large values round.
        prop_assert!(diff as f64 <= ns as f64 * 1e-9 + 1.0);
    }
}
