//! Property-based tests for the simulation substrate, on the in-tree
//! `simcore::check` harness (no external crates).

use simcore::check::run_cases;
use simcore::queue::EventQueue;
use simcore::resource::FifoResource;
use simcore::stats;
use simcore::time::SimTime;

/// Events always pop in non-decreasing time order, regardless of the
/// insertion order.
#[test]
fn event_queue_sorted() {
    run_cases("event_queue_sorted", 256, |g| {
        let times = g.vec(1, 200, |g| g.u64_in(0, 1_000_000));
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped += 1;
        }
        assert_eq!(popped, times.len());
    });
}

/// Equal-time events pop in insertion (FIFO) order.
#[test]
fn event_queue_fifo_on_ties() {
    run_cases("event_queue_fifo_on_ties", 256, |g| {
        let n = g.usize_in(1, 100);
        let t = g.u64_in(0, 1000);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_nanos(t), i);
        }
        for i in 0..n {
            assert_eq!(q.pop().unwrap().1, i);
        }
    });
}

/// A FIFO resource never serves two jobs at once and never reorders.
#[test]
fn fifo_resource_serializes() {
    run_cases("fifo_resource_serializes", 256, |g| {
        let jobs = g.vec(1, 100, |g| (g.u64_in(0, 10_000), g.u64_in(1, 500)));
        let mut r = FifoResource::new();
        let mut arrivals: Vec<(u64, u64)> = jobs.clone();
        arrivals.sort_by_key(|&(a, _)| a);
        let mut prev_drain = SimTime::ZERO;
        let mut total = SimTime::ZERO;
        for (arrive, service) in arrivals {
            let grant = r.submit(SimTime::from_nanos(arrive), SimTime::from_nanos(service));
            // starts only after the previous job drained and after arrival
            assert!(grant.start >= prev_drain.min(grant.start));
            assert!(grant.start >= SimTime::from_nanos(arrive));
            assert!(grant.drain >= prev_drain, "FIFO order violated");
            assert_eq!(grant.drain, grant.start + SimTime::from_nanos(service));
            prev_drain = grant.drain;
            total += SimTime::from_nanos(service);
        }
        assert_eq!(r.total_busy(), total);
    });
}

/// IQR filtering returns a non-empty subset of the input.
#[test]
fn iqr_filter_subset() {
    run_cases("iqr_filter_subset", 256, |g| {
        let xs = g.vec(1, 100, |g| g.f64_in(0.0, 1e6));
        let kept = stats::iqr_filter(&xs, 1.5);
        assert!(!kept.is_empty());
        assert!(kept.len() <= xs.len());
        for k in &kept {
            assert!(xs.contains(k));
        }
    });
}

/// The median always lies between the minimum and maximum.
#[test]
fn median_in_range() {
    run_cases("median_in_range", 256, |g| {
        let xs = g.vec(1, 100, |g| g.f64_in(-1e9, 1e9));
        let m = stats::median(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(m >= lo && m <= hi);
    });
}

/// Quantiles are monotone in q.
#[test]
fn quantiles_monotone() {
    run_cases("quantiles_monotone", 256, |g| {
        let xs = g.vec(2, 50, |g| g.f64_in(0.0, 1e6));
        let a = g.unit_f64();
        let b = g.unit_f64();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(stats::quantile(&xs, lo) <= stats::quantile(&xs, hi) + 1e-9);
    });
}

/// Welford matches batch statistics for arbitrary samples.
#[test]
fn welford_matches_batch() {
    run_cases("welford_matches_batch", 256, |g| {
        let xs = g.vec(2, 200, |g| g.f64_in(-1e3, 1e3));
        let mut w = stats::Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - stats::mean(&xs)).abs() < 1e-6);
        assert!((w.variance() - stats::variance(&xs)).abs() < 1e-4);
    });
}

/// SimTime scaling by 1.0 is the identity (within rounding).
#[test]
fn scale_identity() {
    run_cases("scale_identity", 256, |g| {
        let ns = g.u64_in(0, u64::MAX / 2);
        let t = SimTime::from_nanos(ns);
        let diff = t.scale(1.0).as_nanos().abs_diff(ns);
        // f64 has 53 bits of mantissa; large values round.
        assert!(diff as f64 <= ns as f64 * 1e-9 + 1.0);
    });
}
