//! Schedule execution against the simulated MPI world.
//!
//! [`ScheduleExec`] is the non-blocking state of one collective operation on
//! one rank: a cursor into the schedule's rounds plus the point-to-point
//! handles of the current round. Its round-advance rule encodes the
//! LibNBC/progress semantics the paper revolves around:
//!
//! * posting a round costs CPU (`o_send`/`o_recv` per message, memcpy time
//!   for pack/unpack actions) — this is the non-overlappable part,
//! * a round *completes* when all its sends have drained and all its
//!   receives have been delivered,
//! * the next round is posted **only when the progress engine is invoked**
//!   ([`ScheduleExec::try_progress`]) — between progress calls a completed
//!   round just sits there, which is why multi-round algorithms need
//!   frequent progress calls to overlap (paper §IV, Fig. 7).

use crate::schedule::{ActionKind, Schedule};
use mpisim::{PooledBuf, RankId, RecvHandle, SendHandle, Tag, World};
use simcore::SimTime;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;

/// How the executor stages message payloads alongside the timing model.
///
/// Payloads never influence simulated time — only `bytes` feeds the network
/// model — so all three modes produce byte-identical figure output. They
/// differ only in *host* cost, which is what the perf harness measures:
///
/// * [`PayloadMode::Off`] — no payload engine at all (PR1 behaviour).
/// * [`PayloadMode::Naive`] — a fresh heap buffer per send and a full copy
///   per delivery, modelling the per-hop `Vec<u8>` churn this PR removes.
/// * [`PayloadMode::Pooled`] — buffers come from the rank-local
///   [`mpisim::BufPool`]; delivery moves an `Arc` handle and completion
///   recycles the slab. Steady-state rounds allocate nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadMode {
    Off,
    Naive,
    Pooled,
}

impl PayloadMode {
    fn from_env_str(s: &str) -> Option<PayloadMode> {
        match s {
            "off" => Some(PayloadMode::Off),
            "naive" => Some(PayloadMode::Naive),
            "pooled" => Some(PayloadMode::Pooled),
            _ => None,
        }
    }

    fn code(self) -> u8 {
        match self {
            PayloadMode::Off => 1,
            PayloadMode::Naive => 2,
            PayloadMode::Pooled => 3,
        }
    }

    fn from_code(c: u8) -> Option<PayloadMode> {
        match c {
            1 => Some(PayloadMode::Off),
            2 => Some(PayloadMode::Naive),
            3 => Some(PayloadMode::Pooled),
            _ => None,
        }
    }
}

/// Process-wide override installed by [`set_default_payload_mode`];
/// 0 = unset (fall back to the environment).
static PAYLOAD_MODE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// The `NBC_PAYLOADS` environment setting, read once per process.
static PAYLOAD_MODE_ENV: OnceLock<PayloadMode> = OnceLock::new();

/// Programmatically override the default payload mode (takes precedence
/// over `NBC_PAYLOADS`). Tests use this because the environment is only
/// read once per process.
pub fn set_default_payload_mode(mode: PayloadMode) {
    PAYLOAD_MODE_OVERRIDE.store(mode.code(), Ordering::Relaxed);
}

/// Clear a [`set_default_payload_mode`] override, falling back to the
/// environment default.
pub fn clear_default_payload_mode() {
    PAYLOAD_MODE_OVERRIDE.store(0, Ordering::Relaxed);
}

/// The payload mode new [`ScheduleExec`]s start in: the programmatic
/// override if set, else `NBC_PAYLOADS` (`off` | `naive` | `pooled`),
/// else [`PayloadMode::Pooled`].
pub fn default_payload_mode() -> PayloadMode {
    if let Some(m) = PayloadMode::from_code(PAYLOAD_MODE_OVERRIDE.load(Ordering::Relaxed)) {
        return m;
    }
    *PAYLOAD_MODE_ENV.get_or_init(|| {
        std::env::var("NBC_PAYLOADS")
            .ok()
            .as_deref()
            .and_then(PayloadMode::from_env_str)
            .unwrap_or(PayloadMode::Pooled)
    })
}

/// Execution state of one collective operation instance on one rank.
#[derive(Debug)]
pub struct ScheduleExec {
    /// Global rank executing the schedule.
    rank: RankId,
    /// Communicator: maps the schedule's local peer indices to global
    /// ranks. `None` means the schedule already uses global ranks.
    comm: Option<std::rc::Rc<Vec<RankId>>>,
    tag: Tag,
    /// The schedule, shared: the same built schedule is reused across
    /// ranks, iterations and (via `nbc::cache`) whole sweeps without
    /// copying any rounds.
    sched: Arc<Schedule>,
    /// Index of the next round to post.
    next_round: usize,
    /// Send handles of the currently outstanding round.
    sends: Vec<SendHandle>,
    /// Receive handles of the currently outstanding round.
    recvs: Vec<RecvHandle>,
    started: bool,
    /// Payload staging strategy (see [`PayloadMode`]).
    payload_mode: PayloadMode,
    /// When the outstanding round was posted (start of its trace span).
    round_posted_at: SimTime,
    /// The outstanding round's completion span has been emitted (guards
    /// against duplicates when progress is invoked again after `done`).
    round_traced: bool,
}

impl ScheduleExec {
    /// Wrap a schedule for execution by `rank` using `tag`. Accepts either
    /// an owned `Schedule` or a shared `Arc<Schedule>` (e.g. from the
    /// schedule cache).
    pub fn new(rank: RankId, tag: Tag, sched: impl Into<Arc<Schedule>>) -> Self {
        ScheduleExec {
            rank,
            comm: None,
            tag,
            sched: sched.into(),
            next_round: 0,
            sends: Vec::new(),
            recvs: Vec::new(),
            started: false,
            payload_mode: default_payload_mode(),
            round_posted_at: SimTime::ZERO,
            round_traced: true,
        }
    }

    /// Wrap a schedule built against communicator-local ranks: the peers in
    /// the schedule index into `comm`, which maps them to global ranks.
    /// `rank` is the executing *global* rank and must appear in `comm`.
    pub fn new_on_comm(
        rank: RankId,
        tag: Tag,
        sched: impl Into<Arc<Schedule>>,
        comm: std::rc::Rc<Vec<RankId>>,
    ) -> Self {
        assert!(comm.contains(&rank), "rank {rank} not in communicator");
        ScheduleExec {
            rank,
            comm: Some(comm),
            tag,
            sched: sched.into(),
            next_round: 0,
            sends: Vec::new(),
            recvs: Vec::new(),
            started: false,
            payload_mode: default_payload_mode(),
            round_posted_at: SimTime::ZERO,
            round_traced: true,
        }
    }

    /// Override the payload staging mode for this instance.
    pub fn set_payload_mode(&mut self, mode: PayloadMode) {
        self.payload_mode = mode;
    }

    /// The payload staging mode in effect for this instance.
    pub fn payload_mode(&self) -> PayloadMode {
        self.payload_mode
    }

    /// Translate a schedule-local peer index to a global rank.
    fn global(&self, peer: RankId) -> RankId {
        match &self.comm {
            Some(c) => c[peer],
            None => peer,
        }
    }

    /// The rank executing this schedule.
    pub fn rank(&self) -> RankId {
        self.rank
    }

    /// The schedule being executed.
    pub fn schedule(&self) -> &Schedule {
        &self.sched
    }

    /// Number of outstanding point-to-point actions in the current round
    /// (drives the per-action progress-call overhead).
    pub fn outstanding_actions(&self) -> usize {
        self.sends.len() + self.recvs.len()
    }

    /// True once every round has been posted and completed.
    pub fn is_done(&self, w: &World, now: SimTime) -> bool {
        self.started && self.next_round >= self.sched.rounds.len() && self.round_complete(w, now)
    }

    /// True if `start` has been called.
    pub fn is_started(&self) -> bool {
        self.started
    }

    fn round_complete(&self, w: &World, now: SimTime) -> bool {
        self.sends.iter().all(|&h| w.send_done(h, now))
            && self.recvs.iter().all(|&h| w.recv_done(h, now))
    }

    /// Stage an outgoing payload for a `bytes`-byte send according to the
    /// payload mode. The header stamp models the sender touching its buffer;
    /// the handle itself never affects simulated time.
    fn stage_payload(&self, w: &mut World, bytes: usize) -> Option<mpisim::Payload> {
        let mut buf = match self.payload_mode {
            PayloadMode::Off => return None,
            PayloadMode::Naive => PooledBuf::unpooled(bytes),
            PayloadMode::Pooled => w.payload_pool().acquire(bytes),
        };
        let stamp = (((self.rank as u64) << 32) | self.next_round as u64).to_le_bytes();
        let n = buf.len().min(stamp.len());
        buf.as_mut_slice()[..n].copy_from_slice(&stamp[..n]);
        Some(buf.share())
    }

    /// Collect delivered payloads for the completed round. In `Naive` mode
    /// each delivery costs a fresh allocation plus a full copy (the per-hop
    /// churn the pool eliminates); in `Pooled` mode dropping the handle
    /// recycles the slab into its home pool.
    fn reap_payloads(&mut self, w: &mut World) {
        if self.payload_mode == PayloadMode::Off {
            return;
        }
        for &h in &self.recvs {
            if let Some(p) = w.take_recv_payload(h) {
                if self.payload_mode == PayloadMode::Naive {
                    let copied = p.as_slice().to_vec();
                    std::hint::black_box(&copied);
                    simcore::stats::record_payload_alloc();
                }
            }
        }
    }

    /// Post the actions of round `self.next_round`, charging CPU time for
    /// each. Returns the CPU time consumed; the caller must advance the
    /// rank clock by it (e.g. via `Step::Busy`).
    fn post_round(&mut self, w: &mut World, now: SimTime) -> SimTime {
        self.sends.clear();
        self.recvs.clear();
        self.round_posted_at = now;
        self.round_traced = false;
        // Clone the Arc (pointer bump), not the round: `self.sched` can't be
        // borrowed across the `self.sends`/`self.recvs` pushes below, but the
        // shared schedule itself is immutable.
        let sched = Arc::clone(&self.sched);
        let round = &sched.rounds[self.next_round];
        self.next_round += 1;
        let mut t = now;
        for a in &round.0 {
            match &a.kind {
                ActionKind::Send { peer, .. } => {
                    let peer = self.global(*peer);
                    t += w.o_send(self.rank, peer);
                    let payload = self.stage_payload(w, a.bytes);
                    if payload.is_some() && w.tracing() {
                        // Payload staged into the send buffer (pool slab or
                        // naive allocation) just before posting.
                        let args = [("bytes", a.bytes as u64), ("", 0)];
                        w.trace_instant(self.rank, "stage", "exec", t, args);
                    }
                    let h = w.isend_payload(self.rank, peer, self.tag, a.bytes, t, payload);
                    self.sends.push(h);
                }
                ActionKind::Recv { peer } => {
                    let peer = self.global(*peer);
                    t += w.o_recv(self.rank, peer);
                    let h = w.irecv(self.rank, peer, self.tag, a.bytes, t);
                    self.recvs.push(h);
                }
                ActionKind::Copy => {
                    t += w.platform().intra.serialize(a.bytes);
                }
                ActionKind::Calc => {
                    // Reduction arithmetic: modelled as two passes over the
                    // data (load + combine/store).
                    t += w.platform().intra.serialize(a.bytes).scale(2.0);
                }
            }
        }
        // Posting happens inside the library: flush protocol actions
        // (answer RTSs for receives just posted, act on pending CTSs).
        w.poll(self.rank, t);
        t - now
    }

    /// Initiate the operation: post round 0. Returns the CPU cost.
    ///
    /// # Panics
    /// Panics if called twice.
    pub fn start(&mut self, w: &mut World, now: SimTime) -> SimTime {
        assert!(!self.started, "schedule started twice");
        self.started = true;
        if self.sched.rounds.is_empty() {
            return SimTime::ZERO;
        }
        self.post_round(w, now)
    }

    /// Emit the completed round's span: from its posting to the latest
    /// send-drain / receive-delivery among its handles. No-op when tracing
    /// is off, the round had no point-to-point actions, or the span was
    /// already emitted.
    fn trace_round_end(&mut self, w: &mut World) {
        if self.round_traced || !w.tracing() || (self.sends.is_empty() && self.recvs.is_empty()) {
            return;
        }
        self.round_traced = true;
        let mut end = self.round_posted_at;
        for &h in &self.sends {
            if let Some(t) = w.send_complete_time(h) {
                end = end.max(t);
            }
        }
        for &h in &self.recvs {
            if let Some(t) = w.recv_complete_time(h) {
                end = end.max(t);
            }
        }
        let args = [
            ("round", (self.next_round - 1) as u64),
            ("actions", (self.sends.len() + self.recvs.len()) as u64),
        ];
        w.trace_span(self.rank, "round", "exec", self.round_posted_at, end, args);
    }

    /// One progress-engine visit at time `now`: run the rendezvous protocol
    /// engine, then post as many follow-up rounds as have become ready.
    /// Returns `(cpu_cost, done)`.
    pub fn try_progress(&mut self, w: &mut World, now: SimTime) -> (SimTime, bool) {
        assert!(self.started, "progress before start");
        let mut cost = SimTime::ZERO;
        w.poll(self.rank, now);
        loop {
            let t = now + cost;
            if !self.round_complete(w, t) {
                return (cost, false);
            }
            self.trace_round_end(w);
            self.reap_payloads(w);
            if self.next_round >= self.sched.rounds.len() {
                return (cost, true);
            }
            cost += self.post_round(w, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alltoall::{build_alltoall, AlltoallAlgo};
    use crate::barrier::build_barrier;
    use crate::bcast::{build_bcast, BcastAlgo};
    use crate::schedule::CollSpec;
    use mpisim::{NoiseConfig, RankBehavior, Step};
    use netmodel::{Placement, Platform};

    /// Behaviour that starts one collective per rank and waits for it.
    struct OneShot {
        execs: Vec<Option<ScheduleExec>>,
        started: Vec<bool>,
        finish: Vec<SimTime>,
    }

    impl OneShot {
        fn new(execs: Vec<ScheduleExec>) -> Self {
            let n = execs.len();
            OneShot {
                execs: execs.into_iter().map(Some).collect(),
                started: vec![false; n],
                finish: vec![SimTime::ZERO; n],
            }
        }
    }

    impl RankBehavior for OneShot {
        fn step(&mut self, w: &mut World, r: RankId) -> Step {
            let Some(exec) = self.execs[r].as_mut() else {
                return Step::Done;
            };
            let now = w.rank_now(r);
            if !self.started[r] {
                self.started[r] = true;
                let cost = exec.start(w, now);
                return Step::Busy(cost);
            }
            let (cost, done) = exec.try_progress(w, now);
            if done {
                self.finish[r] = w.rank_now(r) + cost;
                self.execs[r] = None;
                return Step::Done;
            }
            if cost > SimTime::ZERO {
                return Step::Busy(cost);
            }
            Step::Block
        }
    }

    fn run_collective(
        platform: Platform,
        nranks: usize,
        build: impl Fn(usize) -> Schedule,
    ) -> (SimTime, Vec<SimTime>) {
        let mut w = World::new(platform, nranks, Placement::Block, NoiseConfig::none());
        let tag = w.alloc_tag();
        let execs = (0..nranks)
            .map(|r| ScheduleExec::new(r, tag, build(r)))
            .collect();
        let mut b = OneShot::new(execs);
        let makespan = w.run(&mut b).expect("no deadlock");
        (makespan, b.finish)
    }

    #[test]
    fn barrier_runs_to_completion() {
        for p in [2usize, 5, 16, 64] {
            let spec = CollSpec::new(p, 0);
            let (makespan, _) = run_collective(Platform::whale(), p, |r| build_barrier(r, &spec));
            assert!(makespan > SimTime::ZERO, "p={p}");
        }
    }

    #[test]
    fn alltoall_all_algorithms_complete() {
        for p in [2usize, 7, 16] {
            for algo in AlltoallAlgo::all() {
                let spec = CollSpec::new(p, 1024);
                let (makespan, _) =
                    run_collective(Platform::whale(), p, |r| build_alltoall(algo, r, &spec));
                assert!(makespan > SimTime::ZERO, "{algo:?} p={p}");
            }
        }
    }

    #[test]
    fn alltoall_large_rendezvous_completes() {
        // 128 KiB per pair forces rendezvous on InfiniBand.
        let p = 8;
        let spec = CollSpec::new(p, 128 * 1024);
        for algo in AlltoallAlgo::all() {
            let (makespan, _) =
                run_collective(Platform::whale(), p, |r| build_alltoall(algo, r, &spec));
            let floor = Platform::whale().inter.serialize(128 * 1024);
            assert!(makespan > floor, "{algo:?}: {makespan} <= {floor}");
        }
    }

    #[test]
    fn bcast_all_fanouts_complete() {
        let p = 16;
        for algo in BcastAlgo::all() {
            for seg in [32 * 1024usize, 64 * 1024, 128 * 1024] {
                let spec = CollSpec::new(p, 256 * 1024);
                let (makespan, _) =
                    run_collective(Platform::whale(), p, |r| build_bcast(algo, seg, r, &spec));
                assert!(makespan > SimTime::ZERO, "{algo:?} seg={seg}");
            }
        }
    }

    #[test]
    fn binomial_beats_chain_for_small_messages() {
        // Latency-bound regime: binomial depth log2(p) vs chain depth p.
        let p = 32;
        let spec = CollSpec::new(p, 1024);
        let (chain, _) = run_collective(Platform::whale(), p, |r| {
            build_bcast(BcastAlgo::Chain, 32 * 1024, r, &spec)
        });
        let (binom, _) = run_collective(Platform::whale(), p, |r| {
            build_bcast(BcastAlgo::Binomial, 32 * 1024, r, &spec)
        });
        assert!(binom < chain, "binomial {binom} vs chain {chain}");
    }

    #[test]
    fn dissemination_beats_linear_small_messages_many_ranks() {
        // Latency-bound: log2(p) rounds vs p-1 per-message overheads.
        let p = 64;
        let spec = CollSpec::new(p, 64);
        let (lin, _) = run_collective(Platform::whale(), p, |r| {
            build_alltoall(AlltoallAlgo::Linear, r, &spec)
        });
        let (diss, _) = run_collective(Platform::whale(), p, |r| {
            build_alltoall(AlltoallAlgo::Dissemination, r, &spec)
        });
        assert!(diss < lin, "dissemination {diss} vs linear {lin}");
    }

    #[test]
    fn linear_beats_dissemination_large_messages() {
        // Bandwidth-bound: Bruck moves (p/2)*log2(p)*s bytes vs (p-1)*s.
        let p = 16;
        let spec = CollSpec::new(p, 128 * 1024);
        let (lin, _) = run_collective(Platform::crill(), p, |r| {
            build_alltoall(AlltoallAlgo::Linear, r, &spec)
        });
        let (diss, _) = run_collective(Platform::crill(), p, |r| {
            build_alltoall(AlltoallAlgo::Dissemination, r, &spec)
        });
        assert!(lin < diss, "linear {lin} vs dissemination {diss}");
    }

    fn run_collective_mode(
        platform: Platform,
        nranks: usize,
        mode: PayloadMode,
        build: impl Fn(usize) -> Schedule,
    ) -> (SimTime, mpisim::BufPoolStats) {
        let mut w = World::new(platform, nranks, Placement::Block, NoiseConfig::none());
        let tag = w.alloc_tag();
        let execs = (0..nranks)
            .map(|r| {
                let mut e = ScheduleExec::new(r, tag, build(r));
                e.set_payload_mode(mode);
                e
            })
            .collect();
        let mut b = OneShot::new(execs);
        let makespan = w.run(&mut b).expect("no deadlock");
        (makespan, w.payload_pool().stats())
    }

    #[test]
    fn payload_modes_are_timing_invariant() {
        // The whole point of the payload engine: host-side staging strategy
        // must be invisible to the simulated clock.
        let p = 16;
        let spec = CollSpec::new(p, 64 * 1024);
        let build = |r: usize| build_bcast(BcastAlgo::Binomial, 32 * 1024, r, &spec);
        let (off, _) = run_collective_mode(Platform::whale(), p, PayloadMode::Off, build);
        let (naive, _) = run_collective_mode(Platform::whale(), p, PayloadMode::Naive, build);
        let (pooled, stats) = run_collective_mode(Platform::whale(), p, PayloadMode::Pooled, build);
        assert_eq!(off, naive);
        assert_eq!(off, pooled);
        // Pooled mode actually exercised the pool.
        assert!(stats.acquires > 0, "{stats:?}");
    }

    #[test]
    fn pooled_mode_recycles_across_rounds() {
        // A multi-round segmented bcast in pooled mode must reuse slabs:
        // far fewer fresh allocations than acquisitions.
        let p = 8;
        let spec = CollSpec::new(p, 512 * 1024);
        let (_, stats) = run_collective_mode(Platform::whale(), p, PayloadMode::Pooled, |r| {
            build_bcast(BcastAlgo::Chain, 32 * 1024, r, &spec)
        });
        assert!(
            stats.acquires > stats.allocs,
            "expected slab reuse, got {stats:?}"
        );
        assert!(stats.reuses > 0, "{stats:?}");
        assert!(stats.recycles > 0, "{stats:?}");
    }

    #[test]
    fn naive_mode_counts_per_hop_allocations() {
        let before = simcore::stats::payload_allocs();
        let p = 8;
        let spec = CollSpec::new(p, 64 * 1024);
        run_collective_mode(Platform::whale(), p, PayloadMode::Naive, |r| {
            build_bcast(BcastAlgo::Binomial, 32 * 1024, r, &spec)
        });
        let delta = simcore::stats::payload_allocs() - before;
        // One alloc per staged send plus one per delivered copy.
        assert!(delta > 0, "naive mode should record allocations");
    }

    #[test]
    fn default_payload_mode_override_round_trips() {
        set_default_payload_mode(PayloadMode::Naive);
        assert_eq!(default_payload_mode(), PayloadMode::Naive);
        set_default_payload_mode(PayloadMode::Off);
        assert_eq!(default_payload_mode(), PayloadMode::Off);
        clear_default_payload_mode();
        // Back to the env/default path (cannot assert which, but it must be
        // a valid mode and stable across calls).
        assert_eq!(default_payload_mode(), default_payload_mode());
    }

    #[test]
    fn start_twice_panics() {
        let spec = CollSpec::new(2, 16);
        let mut w = World::new(Platform::whale(), 2, Placement::Block, NoiseConfig::none());
        let tag = w.alloc_tag();
        let mut e = ScheduleExec::new(0, tag, build_barrier(0, &spec));
        e.start(&mut w, SimTime::ZERO);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.start(&mut w, SimTime::ZERO)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn empty_schedule_done_immediately() {
        let mut w = World::new(Platform::whale(), 1, Placement::Block, NoiseConfig::none());
        let tag = w.alloc_tag();
        let mut e = ScheduleExec::new(0, tag, Schedule::new());
        let cost = e.start(&mut w, SimTime::ZERO);
        assert_eq!(cost, SimTime::ZERO);
        assert!(e.is_done(&w, SimTime::ZERO));
    }
}
