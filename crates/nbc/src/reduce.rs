//! Reduce schedule builders (binomial and chain trees).
//!
//! The paper converts `MPI_Reduce` to a LibNBC schedule alongside bcast,
//! allgather and alltoall. A reduce send carries the *set of contributions*
//! combined so far as its block annotation, which lets the semantic verifier
//! prove the root receives every rank's contribution exactly once.

use crate::bcast::{tree_links, BcastAlgo};
use crate::schedule::{Action, CollSpec, Round, Schedule};
use mpisim::RankId;

/// The reduce tree shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceAlgo {
    /// Binomial tree (logarithmic depth).
    Binomial,
    /// Chain (pipeline-friendly for very large payloads).
    Chain,
    /// Flat: every rank sends directly to the root, which combines them.
    Linear,
}

impl ReduceAlgo {
    /// All implementations.
    pub fn all() -> Vec<ReduceAlgo> {
        vec![ReduceAlgo::Binomial, ReduceAlgo::Chain, ReduceAlgo::Linear]
    }

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            ReduceAlgo::Binomial => "binomial",
            ReduceAlgo::Chain => "chain",
            ReduceAlgo::Linear => "linear",
        }
    }

    fn tree(self) -> BcastAlgo {
        match self {
            ReduceAlgo::Binomial => BcastAlgo::Binomial,
            ReduceAlgo::Chain => BcastAlgo::Chain,
            ReduceAlgo::Linear => BcastAlgo::Linear,
        }
    }
}

/// The set of ranks whose contributions flow through `rank`'s subtree
/// (including `rank` itself), in the reduce tree of `algo`.
pub fn subtree(algo: ReduceAlgo, rank: RankId, spec: &CollSpec) -> Vec<RankId> {
    let (_, children) = tree_links(algo.tree(), rank, spec);
    let mut acc = vec![rank];
    for c in children {
        acc.extend(subtree(algo, c, spec));
    }
    acc
}

/// Build the reduce schedule for `rank`: receive and combine each child's
/// partial result (in its own round — combining is sequential), then send
/// the combined payload to the parent.
pub fn build_reduce(algo: ReduceAlgo, rank: RankId, spec: &CollSpec) -> Schedule {
    let p = spec.nprocs;
    let bytes = spec.msg_bytes;
    let mut sched = Schedule::new();
    if p <= 1 || bytes == 0 {
        return sched;
    }
    let (parent, children) = tree_links(algo.tree(), rank, spec);
    // Children are combined in reverse order so the deepest subtree (posted
    // first in bcast order) is awaited first.
    for &c in children.iter().rev() {
        sched.push_round(Round(vec![Action::recv(c, bytes), Action::calc(bytes)]));
    }
    if let Some(par) = parent {
        let mut contrib: Vec<u32> = subtree(algo, rank, spec)
            .iter()
            .map(|&r| r as u32)
            .collect();
        contrib.sort_unstable();
        sched.push_round(Round(vec![Action::send(par, bytes, contrib)]));
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtree_partitions_ranks() {
        for p in [2usize, 5, 8, 13] {
            let spec = CollSpec::new(p, 64);
            for algo in ReduceAlgo::all() {
                let mut all = subtree(algo, 0, &spec);
                all.sort_unstable();
                assert_eq!(all, (0..p).collect::<Vec<_>>(), "{algo:?} p={p}");
            }
        }
    }

    #[test]
    fn leaf_sends_only_itself() {
        let spec = CollSpec::new(8, 100);
        let sched = build_reduce(ReduceAlgo::Binomial, 7, &spec);
        assert_eq!(sched.num_rounds(), 1);
        assert_eq!(sched.num_sends(), 1);
        assert_eq!(sched.num_recvs(), 0);
    }

    #[test]
    fn root_receives_without_sending() {
        let spec = CollSpec::new(8, 100);
        let sched = build_reduce(ReduceAlgo::Binomial, 0, &spec);
        assert_eq!(sched.num_sends(), 0);
        assert_eq!(sched.num_recvs(), 3); // binomial: 3 children for p=8
    }

    #[test]
    fn linear_root_collects_all() {
        let spec = CollSpec::new(6, 10);
        let sched = build_reduce(ReduceAlgo::Linear, 0, &spec);
        assert_eq!(sched.num_recvs(), 5);
        // Each recv combined in its own round.
        assert_eq!(sched.num_rounds(), 5);
    }

    #[test]
    fn validates() {
        for p in [2usize, 3, 9, 16] {
            let spec = CollSpec::new(p, 256);
            for algo in ReduceAlgo::all() {
                for r in 0..p {
                    build_reduce(algo, r, &spec)
                        .validate(r, None)
                        .unwrap_or_else(|e| panic!("{algo:?} p={p} r={r}: {e}"));
                }
            }
        }
    }
}
