//! Semantic verification of collective schedules.
//!
//! The timing simulator only cares about byte counts, so correctness of the
//! schedule builders is proven separately here: schedules for *all* ranks
//! are executed logically, moving block ids through FIFO channels under the
//! exact round-barrier semantics of the executor. The verifier checks that
//!
//! * the global execution is deadlock-free (every rank finishes),
//! * FIFO message sizes match between senders and receivers,
//! * a rank only ever sends blocks it actually holds,
//! * no message is left unconsumed,
//!
//! and collective-specific wrappers assert the operation's postcondition
//! (every non-root got every segment; every rank got every block addressed
//! to it; the root combined every contribution).

use crate::schedule::{ActionKind, Schedule};
use std::collections::{HashMap, HashSet, VecDeque};

/// Result of a logical execution: the set of blocks each rank received.
pub type ReceivedBlocks = Vec<HashSet<u32>>;

/// FIFO channels keyed by `(src, dst)`: queued `(bytes, blocks)` messages.
/// Block lists are borrowed straight out of the schedules — the verifier
/// moves references through the channels, never cloning a block vector, so
/// a full sweep over every algorithm allocates only the channel scaffolding.
type Channels<'s> = HashMap<(usize, usize), VecDeque<(usize, &'s [u32])>>;

/// Execute one schedule per rank logically. `initial[r]` is the set of
/// blocks rank `r` holds before the operation.
pub fn execute(scheds: &[Schedule], initial: &[HashSet<u32>]) -> Result<ReceivedBlocks, String> {
    let p = scheds.len();
    assert_eq!(initial.len(), p, "one initial block set per rank");
    // FIFO channel per (src, dst): queue of (bytes, blocks).
    let mut chans: Channels = HashMap::new();
    let mut held: Vec<HashSet<u32>> = initial.to_vec();
    let mut received: ReceivedBlocks = vec![HashSet::new(); p];
    let mut round: Vec<usize> = vec![0; p];
    let mut entered: Vec<bool> = vec![false; p];

    // Push the sends of rank r's current round (round entry).
    fn enter_round<'s>(
        r: usize,
        scheds: &'s [Schedule],
        round: &[usize],
        held: &[HashSet<u32>],
        chans: &mut Channels<'s>,
    ) -> Result<(), String> {
        let Some(rd) = scheds[r].rounds.get(round[r]) else {
            return Ok(());
        };
        for a in &rd.0 {
            if let ActionKind::Send { peer, blocks } = &a.kind {
                for b in blocks {
                    if !held[r].contains(b) {
                        return Err(format!(
                            "rank {r} round {}: sends block {b} it does not hold",
                            round[r]
                        ));
                    }
                }
                chans
                    .entry((r, *peer))
                    .or_default()
                    .push_back((a.bytes, blocks.as_slice()));
            }
        }
        Ok(())
    }

    loop {
        let mut progressed = false;
        for r in 0..p {
            loop {
                if round[r] >= scheds[r].rounds.len() {
                    break;
                }
                if !entered[r] {
                    enter_round(r, scheds, &round, &held, &mut chans)?;
                    entered[r] = true;
                    progressed = true;
                }
                // Can the current round's receives all be satisfied?
                let rd = &scheds[r].rounds[round[r]];
                let mut needed: HashMap<usize, usize> = HashMap::new();
                for a in &rd.0 {
                    if let ActionKind::Recv { peer } = &a.kind {
                        *needed.entry(*peer).or_default() += 1;
                    }
                }
                let ready = needed
                    .iter()
                    .all(|(&peer, &cnt)| chans.get(&(peer, r)).map_or(0, |q| q.len()) >= cnt);
                if !ready {
                    break;
                }
                // Pop the receives in action order, checking sizes.
                for a in &rd.0 {
                    if let ActionKind::Recv { peer } = &a.kind {
                        let q = chans.get_mut(&(*peer, r)).expect("checked above");
                        let (bytes, blocks) = q.pop_front().expect("checked above");
                        if bytes != a.bytes {
                            return Err(format!(
                                "rank {r} round {}: recv expects {} B from {peer}, got {bytes} B",
                                round[r], a.bytes
                            ));
                        }
                        for &b in blocks {
                            held[r].insert(b);
                            received[r].insert(b);
                        }
                    }
                }
                round[r] += 1;
                entered[r] = false;
                progressed = true;
            }
        }
        let all_done = (0..p).all(|r| round[r] >= scheds[r].rounds.len());
        if all_done {
            break;
        }
        if !progressed {
            let stuck: Vec<usize> = (0..p)
                .filter(|&r| round[r] < scheds[r].rounds.len())
                .collect();
            return Err(format!("logical deadlock; stuck ranks {stuck:?}"));
        }
    }
    for ((src, dst), q) in &chans {
        if !q.is_empty() {
            return Err(format!(
                "{} unconsumed message(s) from {src} to {dst}",
                q.len()
            ));
        }
    }
    Ok(received)
}

/// Verify a broadcast: every non-root rank must receive segments
/// `0..nseg`; the root receives nothing.
pub fn verify_bcast(scheds: &[Schedule], root: usize, nseg: usize) -> Result<(), String> {
    let p = scheds.len();
    let mut initial = vec![HashSet::new(); p];
    initial[root] = (0..nseg as u32).collect();
    let recv = execute(scheds, &initial)?;
    for (r, got) in recv.iter().enumerate() {
        if r == root {
            if !got.is_empty() {
                return Err(format!("root received {got:?}"));
            }
            continue;
        }
        for s in 0..nseg as u32 {
            if !got.contains(&s) {
                return Err(format!("rank {r} missing segment {s}"));
            }
        }
    }
    Ok(())
}

/// Verify an all-to-all with block ids `src * p + dst`: every rank `r`
/// must receive block `(src, r)` for every `src != r`.
pub fn verify_alltoall(scheds: &[Schedule]) -> Result<(), String> {
    let p = scheds.len();
    let initial: Vec<HashSet<u32>> = (0..p)
        .map(|r| (0..p).map(|d| (r * p + d) as u32).collect())
        .collect();
    let recv = execute(scheds, &initial)?;
    for (r, got) in recv.iter().enumerate() {
        for src in 0..p {
            if src == r {
                continue;
            }
            let b = (src * p + r) as u32;
            if !got.contains(&b) {
                return Err(format!("rank {r} missing block from {src}"));
            }
        }
    }
    Ok(())
}

/// Verify an all-gather with block id = owner rank: every rank must
/// receive every other rank's block.
pub fn verify_allgather(scheds: &[Schedule]) -> Result<(), String> {
    let p = scheds.len();
    let initial: Vec<HashSet<u32>> = (0..p).map(|r| [r as u32].into_iter().collect()).collect();
    let recv = execute(scheds, &initial)?;
    for (r, got) in recv.iter().enumerate() {
        for other in 0..p as u32 {
            if other as usize == r {
                continue;
            }
            if !got.contains(&other) {
                return Err(format!("rank {r} missing block of {other}"));
            }
        }
    }
    Ok(())
}

/// Verify a reduce with block id = contributing rank: the root must
/// receive every other rank's contribution.
pub fn verify_reduce(scheds: &[Schedule], root: usize) -> Result<(), String> {
    let p = scheds.len();
    let initial: Vec<HashSet<u32>> = (0..p).map(|r| [r as u32].into_iter().collect()).collect();
    let recv = execute(scheds, &initial)?;
    for r in 0..p as u32 {
        if r as usize == root {
            continue;
        }
        if !recv[root].contains(&r) {
            return Err(format!("root missing contribution of rank {r}"));
        }
    }
    Ok(())
}

/// Verify a barrier: only deadlock-freedom and channel consistency matter.
pub fn verify_barrier(scheds: &[Schedule]) -> Result<(), String> {
    let p = scheds.len();
    let initial = vec![HashSet::new(); p];
    execute(scheds, &initial).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allgather::{build_allgather, AllgatherAlgo};
    use crate::alltoall::{build_alltoall, AlltoallAlgo};
    use crate::barrier::build_barrier;
    use crate::bcast::{build_bcast, BcastAlgo};
    use crate::reduce::{build_reduce, ReduceAlgo};
    use crate::schedule::{Action, CollSpec, Round, Schedule};

    const SIZES: &[usize] = &[2, 3, 4, 5, 7, 8, 9, 16, 17, 32, 33, 64];

    #[test]
    fn all_bcast_variants_correct() {
        for &p in SIZES {
            for algo in BcastAlgo::all() {
                for (bytes, seg) in [
                    (100_000usize, 32 * 1024),
                    (1000, 64 * 1024),
                    (262_144, 65_536),
                ] {
                    let spec = CollSpec::new(p, bytes);
                    let scheds: Vec<Schedule> =
                        (0..p).map(|r| build_bcast(algo, seg, r, &spec)).collect();
                    let nseg = bytes.div_ceil(seg);
                    verify_bcast(&scheds, 0, nseg)
                        .unwrap_or_else(|e| panic!("{algo:?} p={p} bytes={bytes}: {e}"));
                }
            }
        }
    }

    #[test]
    fn bcast_nonzero_root_correct() {
        for &p in &[4usize, 9] {
            for algo in BcastAlgo::all() {
                let spec = CollSpec {
                    nprocs: p,
                    msg_bytes: 10_000,
                    root: p - 1,
                };
                let scheds: Vec<Schedule> =
                    (0..p).map(|r| build_bcast(algo, 4096, r, &spec)).collect();
                verify_bcast(&scheds, p - 1, 10_000usize.div_ceil(4096))
                    .unwrap_or_else(|e| panic!("{algo:?} p={p}: {e}"));
            }
        }
    }

    #[test]
    fn all_alltoall_variants_correct() {
        for &p in SIZES {
            for algo in AlltoallAlgo::all() {
                let spec = CollSpec::new(p, 128);
                let scheds: Vec<Schedule> =
                    (0..p).map(|r| build_alltoall(algo, r, &spec)).collect();
                verify_alltoall(&scheds).unwrap_or_else(|e| panic!("{algo:?} p={p}: {e}"));
            }
        }
    }

    #[test]
    fn all_allgather_variants_correct() {
        for &p in SIZES {
            for algo in AllgatherAlgo::all() {
                let spec = CollSpec::new(p, 64);
                let scheds: Vec<Schedule> =
                    (0..p).map(|r| build_allgather(algo, r, &spec)).collect();
                verify_allgather(&scheds).unwrap_or_else(|e| panic!("{algo:?} p={p}: {e}"));
            }
        }
    }

    #[test]
    fn all_reduce_variants_correct() {
        for &p in SIZES {
            for algo in ReduceAlgo::all() {
                let spec = CollSpec::new(p, 4096);
                let scheds: Vec<Schedule> = (0..p).map(|r| build_reduce(algo, r, &spec)).collect();
                verify_reduce(&scheds, 0).unwrap_or_else(|e| panic!("{algo:?} p={p}: {e}"));
            }
        }
    }

    #[test]
    fn barrier_deadlock_free() {
        for &p in SIZES {
            let spec = CollSpec::new(p, 0);
            let scheds: Vec<Schedule> = (0..p).map(|r| build_barrier(r, &spec)).collect();
            verify_barrier(&scheds).unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn detects_deadlock() {
        // Two ranks each waiting for the other before sending.
        let mk = |peer: usize| {
            let mut s = Schedule::new();
            s.push_round(Round(vec![Action::recv(peer, 8)]));
            s.push_round(Round(vec![Action::send(peer, 8, vec![])]));
            s
        };
        let err = execute(&[mk(1), mk(0)], &[HashSet::new(), HashSet::new()]).unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
    }

    #[test]
    fn detects_size_mismatch() {
        let mut s0 = Schedule::new();
        s0.push_round(Round(vec![Action::send(1, 100, vec![])]));
        let mut s1 = Schedule::new();
        s1.push_round(Round(vec![Action::recv(0, 99)]));
        let err = execute(&[s0, s1], &[HashSet::new(), HashSet::new()]).unwrap_err();
        assert!(err.contains("recv expects"), "{err}");
    }

    #[test]
    fn detects_phantom_block() {
        let mut s0 = Schedule::new();
        s0.push_round(Round(vec![Action::send(1, 8, vec![42])]));
        let mut s1 = Schedule::new();
        s1.push_round(Round(vec![Action::recv(0, 8)]));
        let err = execute(&[s0, s1], &[HashSet::new(), HashSet::new()]).unwrap_err();
        assert!(err.contains("does not hold"), "{err}");
    }

    #[test]
    fn detects_unconsumed_message() {
        let mut s0 = Schedule::new();
        s0.push_round(Round(vec![Action::send(1, 8, vec![])]));
        let s1 = Schedule::new();
        let err = execute(&[s0, s1], &[HashSet::new(), HashSet::new()]).unwrap_err();
        assert!(err.contains("unconsumed"), "{err}");
    }
}
