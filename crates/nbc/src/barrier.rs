//! Dissemination barrier schedule.
//!
//! `⌈log₂ p⌉` rounds; in round `k` each rank signals `(r + 2^k) mod p` and
//! waits for a signal from `(r − 2^k) mod p`. After the last round every
//! rank has (transitively) heard from every other rank.

use crate::schedule::{Action, CollSpec, Round, Schedule};
use mpisim::RankId;

/// Size of a barrier signal message.
pub const SIGNAL_BYTES: usize = 1;

/// Build the dissemination-barrier schedule for `rank`.
pub fn build_barrier(rank: RankId, spec: &CollSpec) -> Schedule {
    let p = spec.nprocs;
    let mut sched = Schedule::new();
    if p <= 1 {
        return sched;
    }
    let phases = usize::BITS - (p - 1).leading_zeros();
    for k in 0..phases {
        let bit = 1usize << k;
        let to = (rank + bit) % p;
        let from = (rank + p - bit) % p;
        sched.push_round(Round(vec![
            Action::send(to, SIGNAL_BYTES, Vec::new()),
            Action::recv(from, SIGNAL_BYTES),
        ]));
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_count_is_log2() {
        for (p, rounds) in [(2usize, 1usize), (3, 2), (4, 2), (8, 3), (9, 4), (1000, 10)] {
            let sched = build_barrier(0, &CollSpec::new(p, 0));
            assert_eq!(sched.num_rounds(), rounds, "p={p}");
        }
    }

    #[test]
    fn single_rank_noop() {
        assert_eq!(build_barrier(0, &CollSpec::new(1, 0)).num_rounds(), 0);
    }

    #[test]
    fn validates() {
        for p in [2usize, 7, 64] {
            for r in 0..p {
                build_barrier(r, &CollSpec::new(p, 0))
                    .validate(r, None)
                    .unwrap();
            }
        }
    }
}
