//! All-to-all schedule builders: linear, pairwise exchange, and
//! dissemination (Bruck).
//!
//! These are the three `Ialltoall` implementations of the paper's
//! function-set. Their cost profiles differ sharply, which is exactly what
//! the runtime tuner exploits:
//!
//! * **linear** — a single round posting all `p−1` sends and receives at
//!   once. Minimum rounds (one progress call suffices), maximum NIC
//!   contention (incast); great on InfiniBand with compute to overlap,
//!   terrible on TCP (Fig. 3).
//! * **pairwise** — `p−1` balanced rounds, one partner per round. Gentle on
//!   the network, needs many progress calls to stream (Fig. 7).
//! * **dissemination (Bruck)** — `⌈log₂ p⌉` rounds of aggregated blocks.
//!   Fewest messages (latency-optimal, best for small payloads) but moves
//!   `(p/2)·log₂ p` blocks in total (worst for large payloads, Fig. 4).
//!
//! Logical block ids encode `(src, dst)` pairs as `src * p + dst`; the
//! verifier checks every rank ends up with every block addressed to it.

use crate::schedule::{Action, CollSpec, Round, Schedule};
use mpisim::RankId;

/// The all-to-all algorithm (the paper's three implementations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlltoallAlgo {
    /// One round, all pairs at once.
    Linear,
    /// `p−1` rounds, one send/receive partner per round.
    Pairwise,
    /// Bruck's algorithm: `⌈log₂ p⌉` rounds of aggregated blocks.
    Dissemination,
}

impl AlltoallAlgo {
    /// All three implementations.
    pub fn all() -> Vec<AlltoallAlgo> {
        vec![
            AlltoallAlgo::Linear,
            AlltoallAlgo::Pairwise,
            AlltoallAlgo::Dissemination,
        ]
    }

    /// Report name (paper terminology).
    pub fn name(self) -> &'static str {
        match self {
            AlltoallAlgo::Linear => "linear",
            AlltoallAlgo::Pairwise => "pairwise",
            AlltoallAlgo::Dissemination => "dissemination",
        }
    }
}

/// Logical block id for the payload travelling `src → dst`.
pub fn block_id(src: RankId, dst: RankId, p: usize) -> u32 {
    (src * p + dst) as u32
}

/// Build the all-to-all schedule for `rank`. `spec.msg_bytes` is the
/// per-pair block size (the paper's "message length per process pair").
pub fn build_alltoall(algo: AlltoallAlgo, rank: RankId, spec: &CollSpec) -> Schedule {
    let p = spec.nprocs;
    let s = spec.msg_bytes;
    let mut sched = Schedule::new();
    if p <= 1 || s == 0 {
        return sched;
    }
    match algo {
        AlltoallAlgo::Linear => {
            let mut round = Round::new();
            // Self-block: plain memcpy.
            round.0.push(Action::copy(s));
            for off in 1..p {
                let peer = (rank + off) % p;
                round
                    .0
                    .push(Action::send(peer, s, vec![block_id(rank, peer, p)]));
                let from = (rank + p - off) % p;
                round.0.push(Action::recv(from, s));
            }
            sched.push_round(round);
        }
        AlltoallAlgo::Pairwise => {
            sched.push_round(Round(vec![Action::copy(s)]));
            for k in 1..p {
                let to = (rank + k) % p;
                let from = (rank + p - k) % p;
                sched.push_round(Round(vec![
                    Action::send(to, s, vec![block_id(rank, to, p)]),
                    Action::recv(from, s),
                ]));
            }
        }
        AlltoallAlgo::Dissemination => {
            build_bruck(rank, p, s, &mut sched);
        }
    }
    sched
}

/// Bruck's algorithm.
///
/// Position invariant (see the derivation in `DESIGN.md` / the module
/// tests): before phase `k`, position `i` of rank `r` holds the block with
/// `src = (r − (i mod 2^k)) mod p` and `dst = (r + i − (i mod 2^k)) mod p`.
/// Phase `k` ships every position with bit `k` set to rank `(r + 2^k) mod p`
/// and receives the same positions from `(r − 2^k) mod p`. After all phases
/// every position holds a block destined for `r`.
fn build_bruck(rank: RankId, p: usize, s: usize, sched: &mut Schedule) {
    // Phase 1: local rotation of the send buffer (p blocks).
    sched.push_round(Round(vec![Action::copy(p * s)]));
    let phases = usize::BITS - (p - 1).leading_zeros(); // ceil(log2 p)
    for k in 0..phases {
        let bit = 1usize << k;
        let to = (rank + bit) % p;
        let from = (rank + p - bit) % p;
        // Blocks at positions with bit k set, given the invariant above.
        let mut blocks = Vec::new();
        for i in 0..p {
            if i & bit != 0 {
                let low = i % bit; // i mod 2^k
                let src = (rank + p - low) % p;
                let dst = (rank + i - low) % p;
                blocks.push(block_id(src, dst, p));
            }
        }
        let cnt = blocks.len();
        debug_assert!(cnt > 0, "phase with nothing to send (p={p}, k={k})");
        // Pack, exchange, unpack.
        sched.push_round(Round(vec![
            Action::copy(cnt * s),
            Action::send(to, cnt * s, blocks),
            Action::recv(from, cnt * s),
        ]));
    }
    // Phase 3: final local inverse rotation.
    sched.push_round(Round(vec![Action::copy(p * s)]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ActionKind;

    #[test]
    fn linear_is_single_round() {
        let sched = build_alltoall(AlltoallAlgo::Linear, 2, &CollSpec::new(8, 100));
        assert_eq!(sched.num_rounds(), 1);
        assert_eq!(sched.num_sends(), 7);
        assert_eq!(sched.num_recvs(), 7);
        assert_eq!(sched.bytes_sent(), 700);
    }

    #[test]
    fn pairwise_round_structure() {
        let p = 6;
        let sched = build_alltoall(AlltoallAlgo::Pairwise, 1, &CollSpec::new(p, 10));
        // copy round + p-1 exchange rounds
        assert_eq!(sched.num_rounds(), p);
        // each exchange round: exactly one send and one recv
        for round in &sched.rounds[1..] {
            let sends = round
                .0
                .iter()
                .filter(|a| matches!(a.kind, ActionKind::Send { .. }))
                .count();
            let recvs = round
                .0
                .iter()
                .filter(|a| matches!(a.kind, ActionKind::Recv { .. }))
                .count();
            assert_eq!((sends, recvs), (1, 1));
        }
    }

    #[test]
    fn pairwise_partners_distinct_per_round() {
        let p = 5;
        let sched = build_alltoall(AlltoallAlgo::Pairwise, 3, &CollSpec::new(p, 10));
        let mut partners = Vec::new();
        for round in &sched.rounds[1..] {
            for a in &round.0 {
                if let ActionKind::Send { peer, .. } = &a.kind {
                    partners.push(*peer);
                }
            }
        }
        partners.sort_unstable();
        partners.dedup();
        assert_eq!(partners.len(), p - 1);
    }

    #[test]
    fn bruck_round_count_logarithmic() {
        for (p, phases) in [(2usize, 1usize), (4, 2), (5, 3), (8, 3), (16, 4), (33, 6)] {
            let sched = build_alltoall(AlltoallAlgo::Dissemination, 0, &CollSpec::new(p, 8));
            // rotation + phases + inverse rotation
            assert_eq!(sched.num_rounds(), phases + 2, "p={p}");
        }
    }

    #[test]
    fn bruck_total_volume_exceeds_linear() {
        // Bruck trades volume for message count: total bytes sent must be
        // >= the linear algorithm's (p-1)*s for p > 2.
        let p = 16;
        let s = 1000;
        let bruck = build_alltoall(AlltoallAlgo::Dissemination, 0, &CollSpec::new(p, s));
        let linear = build_alltoall(AlltoallAlgo::Linear, 0, &CollSpec::new(p, s));
        assert!(bruck.bytes_sent() > linear.bytes_sent());
        // and exactly (p/2) * log2(p) * s for power-of-two p
        assert_eq!(bruck.bytes_sent(), (p / 2) * 4 * s);
        // but far fewer messages
        assert!(bruck.num_sends() < linear.num_sends());
    }

    #[test]
    fn bruck_send_recv_volumes_balance() {
        for p in [2usize, 3, 7, 12, 16] {
            let specs = CollSpec::new(p, 64);
            for r in 0..p {
                let sched = build_alltoall(AlltoallAlgo::Dissemination, r, &specs);
                assert_eq!(sched.bytes_sent(), sched.bytes_received(), "p={p} r={r}");
            }
        }
    }

    #[test]
    fn degenerate_cases() {
        for algo in AlltoallAlgo::all() {
            assert_eq!(
                build_alltoall(algo, 0, &CollSpec::new(1, 100)).num_rounds(),
                0
            );
            assert_eq!(
                build_alltoall(algo, 0, &CollSpec::new(4, 0)).num_rounds(),
                0
            );
        }
    }

    #[test]
    fn schedules_validate_with_block_sizes() {
        for p in [2usize, 3, 8, 10] {
            let spec = CollSpec::new(p, 128);
            for algo in AlltoallAlgo::all() {
                for r in 0..p {
                    build_alltoall(algo, r, &spec)
                        .validate(r, Some(128))
                        .unwrap_or_else(|e| panic!("{algo:?} p={p} r={r}: {e}"));
                }
            }
        }
    }
}
