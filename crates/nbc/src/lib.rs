//! `nbc` — a LibNBC-style non-blocking collective engine.
//!
//! LibNBC (Hoefler, Lumsdaine & Rehm, SC'07) expresses every collective
//! operation as a per-rank **schedule**: an array of *rounds*, each round a
//! set of independent send/receive/copy/reduce actions, with the semantics
//! of a local barrier between rounds — round *r+1* may only start once every
//! action of round *r* has completed locally. The execution of a schedule is
//! non-blocking: its state is a cursor into the round array, advanced by the
//! progress engine.
//!
//! This crate provides:
//!
//! * the schedule representation ([`schedule`]),
//! * schedule builders for the collective algorithms evaluated in the paper
//!   ([`bcast`]: linear / chain / k-ary tree / binomial, each with 32, 64 or
//!   128 KiB segmentation; [`alltoall`]: linear / pairwise / dissemination
//!   (Bruck); plus [`allgather`], [`reduce`] and [`barrier`] used by the
//!   broader function-set library),
//! * a *semantic verifier* ([`verify`]) that executes schedules logically
//!   (block-id data flow, FIFO channels) to prove each builder implements
//!   its collective and is deadlock-free,
//! * the simulator executor ([`executor`]) that runs a schedule against a
//!   [`mpisim::World`], enforcing the round-barrier/progress semantics that
//!   make non-blocking collectives hard to overlap,
//! * a global schedule cache ([`cache`]) interning built schedules as
//!   `Arc<Schedule>` so identical shapes are constructed once and shared
//!   across ranks, iterations and sweep worker threads.

pub mod allgather;
pub mod allreduce;
pub mod alltoall;
pub mod barrier;
pub mod bcast;
pub mod cache;
pub mod executor;
pub mod gather;
pub mod neighbor;
pub mod reduce;
pub mod schedule;
pub mod verify;

pub use allgather::AllgatherAlgo;
pub use allreduce::AllreduceAlgo;
pub use alltoall::AlltoallAlgo;
pub use bcast::BcastAlgo;
pub use executor::{
    clear_default_payload_mode, default_payload_mode, set_default_payload_mode, PayloadMode,
    ScheduleExec,
};
pub use gather::GatherAlgo;
pub use neighbor::{Cart2d, NeighborAlgo};
pub use schedule::{Action, ActionKind, CollSpec, Round, Schedule};
