//! All-reduce schedule builders: recursive doubling, ring
//! (reduce-scatter + all-gather), and reduce + broadcast.
//!
//! ADCL's operation library includes `All-reduce` (§III-A); these are the
//! three classic implementations. Block id = contributing rank; the
//! verifier checks every rank ends up having (transitively) received every
//! other rank's contribution.

use crate::bcast::{build_bcast, tree_links, BcastAlgo};
use crate::schedule::{Action, CollSpec, Round, Schedule};
use mpisim::RankId;

/// The all-reduce algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllreduceAlgo {
    /// Recursive doubling / halving (log₂ p rounds of full-payload
    /// exchanges); the classic choice for small payloads.
    RecursiveDoubling,
    /// Ring reduce-scatter followed by a ring all-gather: `2(p−1)` rounds
    /// of `s/p`-sized messages; bandwidth-optimal for large payloads.
    Ring,
    /// Binomial reduce to rank 0 followed by a binomial broadcast.
    ReduceBcast,
}

impl AllreduceAlgo {
    /// All implementations.
    pub fn all() -> Vec<AllreduceAlgo> {
        vec![
            AllreduceAlgo::RecursiveDoubling,
            AllreduceAlgo::Ring,
            AllreduceAlgo::ReduceBcast,
        ]
    }

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            AllreduceAlgo::RecursiveDoubling => "recursive-doubling",
            AllreduceAlgo::Ring => "ring",
            AllreduceAlgo::ReduceBcast => "reduce-bcast",
        }
    }
}

/// Build the all-reduce schedule for `rank`. `spec.msg_bytes` is the full
/// reduction payload.
pub fn build_allreduce(algo: AllreduceAlgo, rank: RankId, spec: &CollSpec) -> Schedule {
    let p = spec.nprocs;
    let bytes = spec.msg_bytes;
    let mut sched = Schedule::new();
    if p <= 1 || bytes == 0 {
        return sched;
    }
    match algo {
        AllreduceAlgo::RecursiveDoubling => build_recursive_doubling(rank, p, bytes, &mut sched),
        AllreduceAlgo::Ring => build_ring(rank, p, bytes, &mut sched),
        AllreduceAlgo::ReduceBcast => build_reduce_bcast(rank, spec, &mut sched),
    }
    sched
}

/// Recursive doubling with the standard non-power-of-two pre/post phases:
/// extra ranks (`r >= 2^K`) first fold their contribution into `r − 2^K`,
/// the power-of-two core runs log₂ rounds of pairwise exchanges, and the
/// result is copied back out to the extras.
fn build_recursive_doubling(rank: RankId, p: usize, bytes: usize, sched: &mut Schedule) {
    let k = p.ilog2() as usize; // largest power of two <= p
    let core = 1usize << k;
    let rem = p - core;
    let all: Vec<u32> = (0..p as u32).collect();

    if rank >= core {
        // Extra rank: contribute, then receive the final result.
        let partner = rank - core;
        sched.push_round(Round(vec![Action::send(partner, bytes, vec![rank as u32])]));
        sched.push_round(Round(vec![Action::recv(partner, bytes)]));
        return;
    }
    // Fold in the extra rank's contribution, if any.
    let mut contrib: Vec<u32> = vec![rank as u32];
    if rank < rem {
        sched.push_round(Round(vec![
            Action::recv(rank + core, bytes),
            Action::calc(bytes),
        ]));
        contrib.push((rank + core) as u32);
    }
    // Doubling rounds: after round j, a rank holds contributions of every
    // core rank sharing its high bits, plus those ranks' folded extras.
    for j in 0..k {
        let peer = rank ^ (1 << j);
        sched.push_round(Round(vec![
            Action::send(peer, bytes, contrib.clone()),
            Action::recv(peer, bytes),
            Action::calc(bytes),
        ]));
        // After the exchange, our set unions the peer's; the peer group is
        // our group with bit j flipped (plus their extras).
        let mask = (1usize << (j + 1)) - 1;
        contrib = (0..core)
            .filter(|&c| c & !mask == rank & !mask)
            .flat_map(|c| {
                let mut v = vec![c as u32];
                if c < rem {
                    v.push((c + core) as u32);
                }
                v
            })
            .collect();
    }
    debug_assert_eq!(contrib.len(), p);
    // Push the result back to the extra rank.
    if rank < rem {
        sched.push_round(Round(vec![Action::send(rank + core, bytes, all)]));
    }
}

/// Ring all-reduce: `p−1` reduce-scatter rounds followed by `p−1`
/// all-gather rounds, all on `ceil(bytes/p)`-sized segments.
fn build_ring(rank: RankId, p: usize, bytes: usize, sched: &mut Schedule) {
    let seg = bytes.div_ceil(p);
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    // Reduce-scatter: in round k we forward segment (rank - k) carrying the
    // partial sums accumulated along the ring behind us.
    for k in 0..p - 1 {
        let contrib: Vec<u32> = (0..=k).map(|i| ((rank + p - k + i) % p) as u32).collect();
        sched.push_round(Round(vec![
            Action::send(next, seg, contrib),
            Action::recv(prev, seg),
            Action::calc(seg),
        ]));
    }
    // All-gather: circulate the fully reduced segments. The reductions are
    // complete, so these rounds move no *new* contributions (empty block
    // annotations); they distribute the reduced vector.
    for _k in 0..p - 1 {
        sched.push_round(Round(vec![
            Action::send(next, seg, Vec::new()),
            Action::recv(prev, seg),
            Action::copy(seg),
        ]));
    }
}

/// Binomial reduce to the root followed by a binomial broadcast, with the
/// broadcast's payload carrying every contribution.
fn build_reduce_bcast(rank: RankId, spec: &CollSpec, sched: &mut Schedule) {
    let p = spec.nprocs;
    let bytes = spec.msg_bytes;
    // Reduce phase (same construction as nbc::reduce, binomial).
    let (parent, children) = tree_links(BcastAlgo::Binomial, rank, spec);
    for &c in children.iter().rev() {
        sched.push_round(Round(vec![Action::recv(c, bytes), Action::calc(bytes)]));
    }
    if let Some(par) = parent {
        let contrib: Vec<u32> =
            crate::reduce::subtree(crate::reduce::ReduceAlgo::Binomial, rank, spec)
                .iter()
                .map(|&r| r as u32)
                .collect();
        sched.push_round(Round(vec![Action::send(par, bytes, contrib)]));
    }
    // Broadcast phase: root now holds everything. Annotate the broadcast
    // sends with the full contribution set so the verifier can track the
    // result reaching every rank. We reuse the bcast builder's structure
    // but re-annotate its (segment-id) blocks.
    let all: Vec<u32> = (0..p as u32).collect();
    let bc = build_bcast(BcastAlgo::Binomial, bytes.max(1), rank, spec);
    for round in bc.rounds {
        let mut r2 = Round::new();
        for a in round.0 {
            match a.kind {
                crate::schedule::ActionKind::Send { peer, .. } => {
                    r2.0.push(Action::send(peer, a.bytes, all.clone()));
                }
                _ => r2.0.push(a),
            }
        }
        sched.push_round(r2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use std::collections::HashSet;

    fn verify_allreduce(p: usize, bytes: usize, algo: AllreduceAlgo) -> Result<(), String> {
        let spec = CollSpec::new(p, bytes);
        let scheds: Vec<Schedule> = (0..p).map(|r| build_allreduce(algo, r, &spec)).collect();
        for (r, s) in scheds.iter().enumerate() {
            s.validate(r, None)?;
        }
        let initial: Vec<HashSet<u32>> = (0..p).map(|r| [r as u32].into_iter().collect()).collect();
        let recv = verify::execute(&scheds, &initial)?;
        for (r, got) in recv.iter().enumerate() {
            for c in 0..p as u32 {
                if c as usize != r && !got.contains(&c) {
                    return Err(format!("rank {r} missing contribution {c}"));
                }
            }
        }
        Ok(())
    }

    #[test]
    fn recursive_doubling_power_of_two() {
        for p in [2usize, 4, 8, 16, 32] {
            verify_allreduce(p, 4096, AllreduceAlgo::RecursiveDoubling)
                .unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn recursive_doubling_arbitrary_sizes() {
        for p in [3usize, 5, 6, 7, 11, 12, 24, 33] {
            verify_allreduce(p, 4096, AllreduceAlgo::RecursiveDoubling)
                .unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn ring_and_reduce_bcast() {
        for p in [2usize, 3, 8, 13] {
            verify_allreduce(p, 64 * 1024, AllreduceAlgo::Ring)
                .unwrap_or_else(|e| panic!("ring p={p}: {e}"));
            verify_allreduce(p, 64 * 1024, AllreduceAlgo::ReduceBcast)
                .unwrap_or_else(|e| panic!("reduce-bcast p={p}: {e}"));
        }
    }

    #[test]
    fn round_counts() {
        let spec = CollSpec::new(8, 8192);
        let rd = build_allreduce(AllreduceAlgo::RecursiveDoubling, 3, &spec);
        assert_eq!(rd.num_rounds(), 3); // log2(8)
        let ring = build_allreduce(AllreduceAlgo::Ring, 3, &spec);
        assert_eq!(ring.num_rounds(), 14); // 2*(p-1)
    }

    #[test]
    fn ring_message_sizes_are_segments() {
        let spec = CollSpec::new(8, 8000);
        let s = build_allreduce(AllreduceAlgo::Ring, 0, &spec);
        // every send is one 1000-byte segment
        for a in s.iter_actions() {
            if let crate::schedule::ActionKind::Send { .. } = a.kind {
                assert_eq!(a.bytes, 1000);
            }
        }
    }

    #[test]
    fn degenerate() {
        for algo in AllreduceAlgo::all() {
            assert_eq!(
                build_allreduce(algo, 0, &CollSpec::new(1, 64)).num_rounds(),
                0
            );
        }
    }
}
